// Side-by-side comparison of the four incentive protocols (the paper's
// evaluation cast) on the same workload, sweeping the free-rider fraction.
// This is Figure 7/9 in miniature, and the smallest example of driving the
// src/exp/ experiment runner directly: declare a Sweep, run it across all
// cores, read the deterministic records back.
//
// Usage: swarm_compare [--leechers N] [--file-mb M] [--seeds K]
//                      [--freerider-fracs 0,0.25] [--jobs N]
//                      [--trace[=PREFIX]] [--trace-csv[=PREFIX]]
//                      [--trace-limit N]
#include <iostream>
#include <sstream>

#include "src/exp/runner.h"
#include "src/protocols/registry.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

std::vector<double> parse_fracs(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const auto leechers = static_cast<std::size_t>(flags.get_int("leechers", 80));
  const auto file_mb = flags.get_int("file-mb", 4);
  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 2));
  const auto fracs = parse_fracs(flags.get_string("freerider-fracs", "0,0.25"));
  const auto protos = protocols::paper_protocols();

  bt::SwarmConfig base;
  base.leecher_count = leechers;
  base.file_bytes = file_mb * util::kMiB;
  base.max_sim_time = flags.get_double("max-time", 20'000.0);

  // protocols x fracs x seeds; Sweep::build() picks each protocol's piece
  // size, the runner fans the runs out over the worker pool.
  exp::Sweep sweep(base);
  sweep.protocols(protos)
      .seeds(seeds)
      .axis("freeriders", fracs, [](exp::RunSpec& s, double frac) {
        s.config.freerider_fraction = frac;
      });
  auto specs = sweep.build();
  exp::apply_trace_flags(specs, flags);
  exp::apply_check_flag(specs, flags);
  const auto records =
      exp::run_all(specs, exp::runner_options_from_flags(flags));
  if (flags.get_bool("check") &&
      exp::total_check_violations(records) > 0) {
    std::cerr << "[check] invariant violations detected\n";
    return 2;
  }

  util::AsciiTable t({"protocol", "free-riders", "compliant mean (s)",
                      "ci95", "freerider mean (s)", "freeriders done",
                      "uplink util (%)"});
  // Records are in sweep order: frac (axis) outermost, then protocol,
  // then seed. The table wants protocol-major rows, so index directly.
  for (std::size_t pi = 0; pi < protos.size(); ++pi) {
    for (std::size_t fi = 0; fi < fracs.size(); ++fi) {
      util::RunningStats compliant_mean, util_mean, fr_mean;
      std::size_t fr_done = 0, fr_total = 0;
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto& r =
            records.at((fi * protos.size() + pi) * seeds + s);
        if (!r.ok) continue;
        compliant_mean.add(r.result.compliant_mean);
        util_mean.add(r.result.uplink_utilization);
        if (r.result.freerider_mean >= 0) fr_mean.add(r.result.freerider_mean);
        fr_done += r.result.freerider_finished;
        fr_total +=
            r.result.freerider_finished + r.result.freerider_unfinished;
      }
      t.add_row({protos[pi], util::format_double(100 * fracs[fi], 0) + "%",
                 util::format_double(compliant_mean.mean(), 1),
                 "+-" + util::format_double(compliant_mean.ci95_half_width(), 1),
                 fr_mean.count() ? util::format_double(fr_mean.mean(), 1)
                                 : "never",
                 std::to_string(fr_done) + "/" + std::to_string(fr_total),
                 util::format_double(100 * util_mean.mean(), 1)});
    }
  }
  t.print(std::cout);
  return 0;
}
