// Side-by-side comparison of the four incentive protocols (the paper's
// evaluation cast) on the same workload, sweeping the free-rider fraction.
// This is Figure 7/9 in miniature.
//
// Usage: swarm_compare [--leechers N] [--file-mb M] [--seeds K]
//                      [--freerider-fracs 0,0.25]
#include <iostream>
#include <sstream>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/registry.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

std::vector<double> parse_fracs(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tc::util::Flags flags(argc, argv);
  const auto leechers = static_cast<std::size_t>(flags.get_int("leechers", 80));
  const auto file_mb = flags.get_int("file-mb", 4);
  const auto seeds = static_cast<std::uint64_t>(flags.get_int("seeds", 2));
  const auto fracs = parse_fracs(flags.get_string("freerider-fracs", "0,0.25"));

  tc::util::AsciiTable t({"protocol", "free-riders", "compliant mean (s)",
                          "ci95", "freerider mean (s)", "freeriders done",
                          "uplink util (%)"});

  for (const auto& name : tc::protocols::paper_protocols()) {
    for (double frac : fracs) {
      tc::util::RunningStats compliant_mean, util_mean, fr_mean;
      std::size_t fr_done = 0, fr_total = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        auto proto = tc::protocols::make_protocol(name);
        tc::bt::SwarmConfig cfg;
        cfg.leecher_count = leechers;
        cfg.file_bytes = file_mb * tc::util::kMiB;
        cfg.piece_bytes = proto->default_piece_bytes();
        cfg.freerider_fraction = frac;
        cfg.seed = s;
        cfg.max_sim_time = flags.get_double("max-time", 20'000.0);
        tc::bt::Swarm swarm(cfg, *proto);
        swarm.run();

        using F = tc::analysis::SwarmMetrics::PeerFilter;
        const auto& m = swarm.metrics();
        compliant_mean.add(m.completion_times(F::kCompliant).mean());
        util_mean.add(
            m.mean_uplink_utilization(F::kCompliant, swarm.end_time()));
        const auto fr = m.completion_times(F::kFreeRiders);
        if (fr.count() > 0) fr_mean.add(fr.mean());
        fr_done += fr.count();
        fr_total += fr.count() + m.unfinished_count(F::kFreeRiders);
      }
      t.add_row({name, tc::util::format_double(100 * frac, 0) + "%",
                 tc::util::format_double(compliant_mean.mean(), 1),
                 "+-" + tc::util::format_double(compliant_mean.ci95_half_width(), 1),
                 fr_mean.count() ? tc::util::format_double(fr_mean.mean(), 1) : "never",
                 std::to_string(fr_done) + "/" + std::to_string(fr_total),
                 tc::util::format_double(100 * util_mean.mean(), 1)});
    }
  }
  t.print(std::cout);
  return 0;
}
