// Live demonstration of one full T-Chain triangle (Figure 1(a)) over real
// TCP sockets on loopback, with real encryption:
//
//   1. donor A encrypts piece p1 under a fresh ChaCha20 key and sends
//      [ null | K[p1] | payee=C ] to requestor B;
//   2. B reciprocates by uploading an encrypted piece p2 to payee C
//      (here: the newcomer forward of §II-D1);
//   3. C sends the HMAC-authenticated reception report r_C = [B | p1] to A;
//   4. A releases the key; B decrypts and verifies the piece hash.
//
// Three threads play A, B and C as separate socket endpoints; every
// protocol byte crosses a real TCP connection. Receive timeouts
// (--timeout, default 10 s) make a wedged or dead peer a printed error
// and a nonzero exit instead of a hang or a SIGPIPE death.
#include <atomic>
#include <iostream>
#include <thread>

#include "src/core/exchange.h"
#include "src/net/tcp.h"
#include "src/util/flags.h"

namespace {

using namespace tc;

constexpr net::PeerId kA = 1, kB = 2, kC = 3;
constexpr net::TxId kTx1 = 100, kTx2 = 101;
constexpr net::PieceIndex kPiece1 = 7, kPiece2 = 7;  // B forwards p1's index

util::Bytes make_piece(std::size_t len, std::uint8_t tag) {
  util::Bytes b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::uint8_t>(tag ^ (i * 37));
  return b;
}

std::atomic<int> g_failures{0};

// Runs one endpoint's script; any socket error (timeout, peer gone,
// unexpected message) fails that endpoint cleanly instead of taking the
// process down.
template <typename Fn>
void endpoint(const char* who, Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    std::cerr << "[" << who << "] FAILED: " << e.what() << "\n";
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto piece_bytes =
      static_cast<std::size_t>(flags.get_int("piece-kb", 64)) * 1024;
  const double timeout = flags.get_double("timeout", 10.0);

  const auto cipher = crypto::make_cipher(crypto::CipherKind::kChaCha20);
  const auto piece1 = make_piece(piece_bytes, 0xA1);
  const auto piece1_hash = crypto::sha256(piece1);

  // B listens for A's upload; C listens for B's reciprocation; A listens
  // for C's receipt.
  net::Listener b_in(0), c_in(0), a_in(0);

  std::cout << "T-Chain TCP triangle on loopback (piece " << piece_bytes / 1024
            << " KiB)\n";

  // --- A: donor -------------------------------------------------------------
  std::thread thread_a([&] {
    endpoint("A", [&] {
      crypto::KeySource keys(0xA);
      core::DonorSession donor(kTx1, /*chain=*/1, kA, kB, kC, kPiece1,
                               net::kNoPeer, net::kNoPiece, piece1, *cipher,
                               keys);
      // 1) upload encrypted piece to B.
      auto to_b =
          net::FrameSocket::connect_to("127.0.0.1", b_in.port(), timeout);
      to_b.send_message(net::Message{donor.offer()});
      std::cout << "[A] sent K[p1] to B, payee = C\n";

      // 4) wait for C's receipt, verify, release key.
      auto from_c = a_in.accept();
      from_c.set_recv_timeout(timeout);
      const auto msg = from_c.recv_message();
      if (!msg) throw std::runtime_error("C hung up before sending a receipt");
      const auto& receipt = std::get<net::ReceiptMsg>(*msg);
      if (!donor.accept_receipt(receipt))
        throw std::runtime_error("receipt REJECTED (bad HMAC)");
      std::cout << "[A] receipt from C verified (HMAC ok), releasing key\n";
      to_b.send_message(net::Message{donor.key_release()});
    });
  });

  // --- B: requestor ------------------------------------------------------------
  std::thread thread_b([&] {
    endpoint("B", [&] {
      auto from_a = b_in.accept();
      from_a.set_recv_timeout(timeout);
      const auto offer_msg = from_a.recv_message();
      if (!offer_msg) throw std::runtime_error("A hung up before the offer");
      const auto& offer = std::get<net::EncryptedPieceMsg>(*offer_msg);
      core::RequestorSession requestor(offer);
      std::cout << "[B] got encrypted piece " << offer.piece
                << " (useless without key), must reciprocate to peer "
                << offer.payee << "\n";

      // 2) reciprocate: newcomer forward of the pending ciphertext,
      // re-encrypted under B's own key (§II-D1).
      crypto::KeySource keys(0xB);
      core::DonorSession b_donor(kTx2, /*chain=*/1, kB, kC, /*payee=*/kB,
                                 kPiece2, /*prev_donor=*/kA,
                                 /*prev_piece=*/kPiece1, requestor.ciphertext(),
                                 *cipher, keys);
      auto to_c =
          net::FrameSocket::connect_to("127.0.0.1", c_in.port(), timeout);
      to_c.send_message(net::Message{b_donor.offer()});
      std::cout << "[B] reciprocated: uploaded K'[p2] to C\n";

      // 4b) receive the key from A, decrypt, verify hash.
      const auto key_msg = from_a.recv_message();
      if (!key_msg)
        throw std::runtime_error("A hung up before releasing the key");
      const auto plain = requestor.complete(
          std::get<net::KeyReleaseMsg>(*key_msg), *cipher, piece1_hash);
      if (!plain) throw std::runtime_error("decryption FAILED");
      std::cout << "[B] key received; piece decrypted and hash VERIFIED ("
                << plain->size() << " bytes)\n";
    });
  });

  // --- C: payee ---------------------------------------------------------------
  std::thread thread_c([&] {
    endpoint("C", [&] {
      auto from_b = c_in.accept();
      from_b.set_recv_timeout(timeout);
      const auto msg = from_b.recv_message();
      if (!msg)
        throw std::runtime_error("B hung up before the reciprocation");
      const auto& reciprocation = std::get<net::EncryptedPieceMsg>(*msg);
      std::cout << "[C] received B's reciprocation (for tx of donor "
                << reciprocation.prev_donor << "), reporting to A\n";

      // 3) authenticated reception report to A.
      const auto receipt =
          core::PayeeSession::make_receipt(reciprocation, kA, kTx1);
      auto to_a =
          net::FrameSocket::connect_to("127.0.0.1", a_in.port(), timeout);
      to_a.send_message(net::Message{receipt});
    });
  });

  thread_a.join();
  thread_b.join();
  thread_c.join();
  if (g_failures.load() > 0) {
    std::cerr << "triangle INCOMPLETE: " << g_failures.load()
              << " endpoint(s) failed.\n";
    return 1;
  }
  std::cout << "triangle complete: almost-fair exchange settled.\n";
  return 0;
}
