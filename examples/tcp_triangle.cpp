// Live demonstration of T-Chain triangles (Figure 1(a)) over real TCP
// sockets on loopback, with real encryption — now driven by the src/rt
// deployment runtime instead of hand-scripted threads.
//
// A three-peer swarm (1 seeder, 2 leechers) runs on one reactor: donor
// transactions encrypt pieces under fresh ChaCha20 keys, requestors
// reciprocate toward designated payees (including the §II-D1 newcomer
// forward), payees return HMAC-authenticated reception reports, and keys
// are released on receipt. Every protocol byte crosses a real TCP
// connection, and the whole run is verified live against the protocol
// invariant catalogue (src/check).
//
//   tcp_triangle [--pieces N] [--piece-kb KB] [--seed S] [--deadline SEC]
//
// Exit: 0 = both leechers completed and the checker PASSed, 1 otherwise.
#include <exception>
#include <iostream>

#include "src/check/invariants.h"
#include "src/rt/swarm.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  const tc::util::Flags flags(argc, argv);

  tc::rt::SwarmOptions opts;
  opts.peers = 3;
  opts.piece_count = static_cast<std::uint32_t>(flags.get_int("pieces", 8));
  opts.piece_bytes =
      static_cast<std::uint32_t>(flags.get_int("piece-kb", 16) * 1024);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.deadline_seconds = flags.get_double("deadline", 20.0);

  std::cout << "tcp_triangle: 3 live peers (1 seeder), " << opts.piece_count
            << " pieces x " << opts.piece_bytes / 1024 << " KiB over "
            << "loopback TCP\n";

  tc::rt::SwarmResult res;
  try {
    res = tc::rt::run_local_swarm(opts);
  } catch (const std::exception& e) {
    std::cerr << "tcp_triangle: " << e.what() << "\n";
    return 1;
  }

  for (const tc::rt::PeerStat& p : res.peers) {
    std::cout << "  peer " << p.id << (p.seeder ? " (seeder)" : "") << ": ";
    if (p.seeder) {
      std::cout << "serving\n";
    } else if (p.complete) {
      std::cout << "complete at " << p.finish_seconds << " s\n";
    } else {
      std::cout << "INCOMPLETE\n";
    }
  }
  tc::check::write_report(std::cout, res.check);

  const bool ok = res.all_complete && res.check.clean();
  std::cout << (ok ? "triangle OK: exchange verified fair\n"
                   : "triangle FAILED\n");
  return ok ? 0 : 1;
}
