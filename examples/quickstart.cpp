// Quickstart: simulate one T-Chain swarm (flash crowd, no free-riders) and
// print the headline numbers — mean download completion time, uplink
// utilization, chain census, and exchange-protocol statistics.
//
// Usage: quickstart [--leechers N] [--file-mb M] [--seed S] [--freeriders F]
#include <iostream>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/tchain.h"
#include "src/util/flags.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  tc::util::Flags flags(argc, argv);

  tc::bt::SwarmConfig cfg;
  cfg.leecher_count = static_cast<std::size_t>(flags.get_int("leechers", 120));
  cfg.file_bytes = flags.get_int("file-mb", 8) * tc::util::kMiB;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.freerider_fraction = flags.get_double("freeriders", 0.0);
  cfg.max_sim_time = flags.get_double("max-time", 50'000.0);

  tc::protocols::TChainProtocol tchain;
  cfg.piece_bytes = tchain.default_piece_bytes();

  tc::bt::Swarm swarm(cfg, tchain);
  swarm.run();

  const auto& m = swarm.metrics();
  using F = tc::analysis::SwarmMetrics::PeerFilter;
  const auto compliant = m.completion_times(F::kCompliant);
  const auto freeriders = m.completion_times(F::kFreeRiders);

  std::cout << "T-Chain quickstart: " << cfg.leecher_count << " leechers, "
            << cfg.file_bytes / tc::util::kMiB << " MiB file, "
            << swarm.piece_count() << " pieces of "
            << cfg.piece_bytes / tc::util::kKiB << " KiB\n\n";

  tc::util::AsciiTable t({"metric", "value"});
  t.add_row({"simulated seconds", tc::util::format_double(swarm.end_time(), 1)});
  t.add_row({"compliant finished", std::to_string(compliant.count())});
  t.add_row({"compliant unfinished",
             std::to_string(m.unfinished_count(F::kCompliant))});
  t.add_row({"mean completion time (s)",
             tc::util::format_double(compliant.mean(), 1)});
  t.add_row({"median completion time (s)",
             compliant.empty() ? "-" : tc::util::format_double(compliant.median(), 1)});
  t.add_row({"mean uplink utilization (%)",
             tc::util::format_double(
                 100.0 * m.mean_uplink_utilization(F::kCompliant, swarm.end_time()),
                 1)});
  t.add_row({"free-riders finished", std::to_string(freeriders.count())});
  t.add_row({"free-riders unfinished",
             std::to_string(m.unfinished_count(F::kFreeRiders))});

  const auto& chains = tchain.chains();
  t.add_row({"chains created (seeder)", std::to_string(chains.created_by_seeder())});
  t.add_row({"chains created (leechers)",
             std::to_string(chains.created_by_leechers())});
  t.add_row({"mean chain length",
             tc::util::format_double(chains.mean_terminated_length(), 1)});

  const auto& st = tchain.stats();
  t.add_row({"encrypted uploads", std::to_string(st.encrypted_uploads)});
  t.add_row({"terminal (plain) uploads", std::to_string(st.terminal_uploads)});
  t.add_row({"keys released", std::to_string(st.keys_released)});
  t.add_row({"direct payees", std::to_string(st.direct_payees)});
  t.add_row({"indirect payees", std::to_string(st.indirect_payees)});
  t.add_row({"bootstrap forwards", std::to_string(st.bootstrap_forwards)});
  t.print(std::cout);
  return 0;
}
