// Streaming adaptation (paper §VI names streaming as future work for
// T-Chain): piece selection switches from pure Local-Rarest-First to
// rarest-within-a-playback-window, so pieces arrive nearly in order and
// playback can start long before the download completes — while the
// T-Chain exchange still enforces reciprocity underneath.
//
// This example runs the same T-Chain swarm under both policies and prints
// startup delay (time to the first `--startup-pieces` in-order pieces),
// in-order arrival fraction, and completion time for the traced slow/fast
// leechers.
//
// Usage: streaming [--leechers N] [--file-mb M] [--window W] [--seed S]
#include <algorithm>
#include <iostream>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/tchain.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace {

using namespace tc;

struct StreamStats {
  double startup_delay = -1;   // time to first K in-order pieces
  double inorder_fraction = 0; // arrivals that extended the playhead
  double completion = -1;
};

StreamStats analyze(const analysis::PieceTimeline* tl, double join,
                    std::size_t piece_count, std::size_t startup_pieces) {
  StreamStats s;
  if (tl == nullptr || tl->completed.empty()) return s;
  auto arrivals = tl->completed;  // (time, piece), already time-ordered
  std::vector<bool> have(piece_count, false);
  std::size_t playhead = 0;
  std::size_t inorder = 0;
  for (const auto& [t, piece] : arrivals) {
    if (piece == playhead) ++inorder;
    have[piece] = true;
    while (playhead < piece_count && have[playhead]) ++playhead;
    if (s.startup_delay < 0 && playhead >= startup_pieces)
      s.startup_delay = t - join;
  }
  s.inorder_fraction =
      static_cast<double>(inorder) / static_cast<double>(arrivals.size());
  s.completion = arrivals.back().first - join;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto leechers = static_cast<std::size_t>(flags.get_int("leechers", 120));
  const auto file_mb = flags.get_int("file-mb", 8);
  const auto window = static_cast<std::size_t>(flags.get_int("window", 16));
  const auto startup_pieces =
      static_cast<std::size_t>(flags.get_int("startup-pieces", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::cout << "T-Chain streaming adaptation: " << leechers << " leechers, "
            << file_mb << " MiB stream, window " << window << " pieces\n\n";

  util::AsciiTable t({"policy", "leecher", "startup delay (s)",
                      "in-order arrivals (%)", "completion (s)",
                      "swarm mean completion (s)"});

  for (bt::PiecePolicy policy :
       {bt::PiecePolicy::kRarestFirst, bt::PiecePolicy::kSequentialWindow}) {
    protocols::TChainProtocol proto;
    bt::SwarmConfig cfg;
    cfg.leecher_count = leechers;
    cfg.file_bytes = file_mb * util::kMiB;
    cfg.piece_bytes = proto.default_piece_bytes();
    cfg.piece_policy = policy;
    cfg.stream_window = window;
    cfg.seed = seed;
    bt::Swarm swarm(cfg, proto);
    swarm.set_trace_extremes(true);
    swarm.run();

    const char* policy_name =
        policy == bt::PiecePolicy::kRarestFirst ? "rarest-first" : "stream-window";
    const double swarm_mean =
        swarm.metrics()
            .completion_times(analysis::SwarmMetrics::PeerFilter::kCompliant)
            .mean();
    for (auto [id, label] : {std::pair{swarm.traced_slow_peer(), "400Kbps"},
                             {swarm.traced_fast_peer(), "1200Kbps"}}) {
      const auto* rec = swarm.metrics().find(id);
      const auto st = analyze(swarm.metrics().timeline(id),
                              rec != nullptr ? rec->join_time : 0.0,
                              swarm.piece_count(), startup_pieces);
      t.add_row({policy_name, label,
                 st.startup_delay >= 0 ? util::format_double(st.startup_delay, 1)
                                       : "-",
                 util::format_double(100 * st.inorder_fraction, 1),
                 st.completion >= 0 ? util::format_double(st.completion, 1) : "-",
                 util::format_double(swarm_mean, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected: the stream-window policy trades a little total "
               "completion time for much earlier in-order availability "
               "(startup) — reciprocity enforcement is unchanged.\n";
  return 0;
}
