// Attack lab: runs each §III-A manipulation strategy against T-Chain and
// reports what the attacker actually gained. A compact, runnable version
// of the paper's security discussion.
//
// Usage: attack_lab [--leechers N] [--file-mb M] [--seed S]
#include <iostream>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/tchain.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace {

using namespace tc;

struct Scenario {
  const char* name;
  const char* description;
  bool large_view;
  bool whitewash;
  bool collude;
};

constexpr Scenario kScenarios[] = {
    {"exploit-altruism", "zero upload, no identity games", false, false, false},
    {"large-view", "refresh neighbor list every round, accept all", true,
     false, false},
    {"whitewash", "new identity after every banked piece", false, true, false},
    {"sybil/collusion", "colluders send false receipts for each other", true,
     true, true},
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto leechers = static_cast<std::size_t>(flags.get_int("leechers", 80));
  const auto file_mb = flags.get_int("file-mb", 8);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  std::cout << "T-Chain attack lab: " << leechers << " leechers (25% attackers), "
            << file_mb << " MiB file\n\n";

  util::AsciiTable t({"attack", "attackers done", "pieces/attacker",
                      "bytes wasted on attackers (MiB)", "compliant mean (s)",
                      "attacker mean (s)"});

  for (const auto& sc : kScenarios) {
    protocols::TChainProtocol proto;
    bt::SwarmConfig cfg;
    cfg.leecher_count = leechers;
    cfg.file_bytes = file_mb * util::kMiB;
    cfg.piece_bytes = proto.default_piece_bytes();
    cfg.freerider_fraction = 0.25;
    cfg.freerider_large_view = sc.large_view;
    cfg.freerider_whitewash = sc.whitewash;
    cfg.freerider_collude = sc.collude;
    cfg.freerider_stall_timeout = 2000.0;
    cfg.seed = seed;
    bt::Swarm swarm(cfg, proto);
    swarm.run();

    using F = analysis::SwarmMetrics::PeerFilter;
    const auto& m = swarm.metrics();
    double bytes = 0;
    std::int64_t pieces = 0;
    std::size_t n = 0;
    for (const auto* rec : m.all()) {
      if (rec->seeder || !rec->freerider) continue;
      bytes += rec->bytes_downloaded;
      pieces += rec->pieces_downloaded;
      ++n;
    }
    const auto fr = m.completion_times(F::kFreeRiders);
    t.add_row(
        {sc.name,
         std::to_string(fr.count()) + "/" +
             std::to_string(fr.count() + m.unfinished_count(F::kFreeRiders)),
         util::format_double(n ? static_cast<double>(pieces) / static_cast<double>(n) : 0, 1),
         util::format_double(bytes / static_cast<double>(util::kMiB), 1),
         util::format_double(m.completion_times(F::kCompliant).mean(), 1),
         fr.count() ? util::format_double(fr.mean(), 1) : "never"});
    std::cout << "  [" << sc.name << "] " << sc.description << "\n";
  }
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nFile has " << (file_mb * util::kMiB) / (64 * util::kKiB)
            << " pieces; an attacker needs all of them to benefit.\n";
  return 0;
}
