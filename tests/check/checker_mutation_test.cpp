// Mutation-style coverage for the invariant checker: each test feeds a
// synthetic event stream that deliberately violates exactly one invariant
// class and asserts the checker flags it — and only it — with the correct
// class; the clean controls prove the legal version of each pattern passes.
#include "src/check/invariants.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/transaction.h"
#include "src/obs/trace.h"

namespace tc::check {
namespace {

using obs::ChainBreakCause;
using obs::EventKind;
using obs::TraceEvent;

constexpr std::uint8_t kAwaitKey =
    static_cast<std::uint8_t>(core::TxState::kAwaitKey);
constexpr std::uint8_t kCompleted =
    static_cast<std::uint8_t>(core::TxState::kCompleted);

// Builds a stream with ever-increasing timestamps so detection timestamps
// stay distinct and ordered.
class Stream {
 public:
  Stream& add(EventKind kind, net::PeerId a = net::kNoPeer,
              net::PeerId b = net::kNoPeer, net::PeerId c = net::kNoPeer,
              net::PieceIndex piece = net::kNoPiece, std::uint64_t ref = 0,
              std::uint64_t chain = 0, std::uint8_t aux = 0) {
    TraceEvent e;
    e.t = t_ += 1.0;
    e.kind = kind;
    e.a = a;
    e.b = b;
    e.c = c;
    e.piece = piece;
    e.ref = ref;
    e.chain = chain;
    e.aux = aux;
    events_.push_back(e);
    return *this;
  }

  Stream& join(net::PeerId p, std::uint8_t flags = 0) {
    return add(EventKind::kPeerJoin, p, net::kNoPeer, net::kNoPeer,
               net::kNoPiece, 0, 0, flags);
  }

  Stream& chain_start(std::uint64_t chain, net::PeerId initiator) {
    return add(EventKind::kChainStart, initiator, net::kNoPeer, net::kNoPeer,
               net::kNoPiece, 0, chain);
  }

  // Encrypted triangle transaction (donor -> requestor, payee designated),
  // immediately linked into its chain — the emission pattern of start_tx.
  Stream& tx_open(std::uint64_t ref, net::PeerId donor, net::PeerId requestor,
                  net::PeerId payee, net::PieceIndex piece,
                  std::uint64_t chain) {
    add(EventKind::kTxOpen, donor, requestor, payee, piece, ref, chain);
    return add(EventKind::kChainExtend, net::kNoPeer, net::kNoPeer,
               net::kNoPeer, net::kNoPiece, ref, chain);
  }

  Stream& deliver(net::PeerId from, net::PeerId to, net::PieceIndex piece,
                  std::uint64_t flow) {
    return add(EventKind::kPieceDelivered, from, to, net::kNoPeer, piece,
               flow);
  }

  Stream& key_delivered(std::uint64_t ref, net::PeerId donor,
                        net::PeerId requestor) {
    return add(EventKind::kKeyDelivered, donor, requestor, net::kNoPeer,
               net::kNoPiece, ref);
  }

  Stream& tx_close(std::uint64_t ref, std::uint8_t state) {
    return add(EventKind::kTxClose, net::kNoPeer, net::kNoPeer, net::kNoPeer,
               net::kNoPiece, ref, 0, state);
  }

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  util::SimTime t_ = 0.0;
  std::vector<TraceEvent> events_;
};

std::uint64_t class_count(const CheckReport& r, Invariant inv) {
  return r.by_class[static_cast<std::size_t>(inv)];
}

// The only finding in `r` is `n` violations of class `inv`.
void expect_only(const CheckReport& r, Invariant inv, std::uint64_t n = 1) {
  EXPECT_TRUE(r.sound);
  EXPECT_EQ(r.total_violations, n) << "verdict " << r.verdict();
  EXPECT_EQ(class_count(r, inv), n);
  EXPECT_STREQ(r.verdict(), "VIOLATIONS");
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings.front().invariant, inv);
}

// --- fair-exchange ---------------------------------------------------------

TEST(CheckerMutation, EarlyKeyReleaseFlagsFairExchange) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  // Key released with the chain alive and no reciprocation from peer 2.
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted);
  expect_only(check_events(s.events()), Invariant::kFairExchange);
}

TEST(CheckerMutation, ReciprocatedKeyReleasePasses) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.deliver(1, 2, 0, 100);
  // Peer 2 reciprocates inside chain 7 (its own transaction delivers)...
  s.tx_open(11, 2, 3, 1, 1, 7).deliver(2, 3, 1, 101);
  // ...so the key may settle.
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted);
  const CheckReport r = check_events(s.events());
  EXPECT_TRUE(r.clean()) << r.verdict();
  EXPECT_STREQ(r.verdict(), "PASS");
}

TEST(CheckerMutation, ColludingRequestorIsExempt) {
  Stream s;
  s.join(1).join(2, obs::kPeerFlagColluder).join(3);
  s.chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  // False-receipt collusion (§III-A4): sanctioned, modeled behavior.
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted);
  EXPECT_TRUE(check_events(s.events()).clean());
}

TEST(CheckerMutation, GratisSettlementOnBrokenChainIsExempt) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.add(EventKind::kChainBreak, net::kNoPeer, net::kNoPeer, net::kNoPeer,
        net::kNoPiece, 0, 7,
        static_cast<std::uint8_t>(ChainBreakCause::kNoPayee));
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted);
  EXPECT_TRUE(check_events(s.events()).clean());
}

// --- pending-bound ---------------------------------------------------------

TEST(CheckerMutation, PendingCapOvershootFlagsPendingBound) {
  Stream s;
  s.join(1).join(2).join(3);
  // Two chain heads toward peer 2 fill the k = 2 budget...
  s.chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.chain_start(8, 1).tx_open(11, 1, 2, 3, 1, 8);
  // ...a third head toward the same neighbor overshoots the cap.
  s.chain_start(9, 1).tx_open(12, 1, 2, 3, 2, 9);
  expect_only(check_events(s.events()), Invariant::kPendingBound);
}

TEST(CheckerMutation, PendingAtCapPasses) {
  Stream s;
  s.join(1).join(2).join(3);
  s.chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.chain_start(8, 1).tx_open(11, 1, 2, 3, 1, 8);
  EXPECT_TRUE(check_events(s.events()).clean());
}

TEST(CheckerMutation, GiftToNeighborWithPendingFlagsPendingBound) {
  Stream s;
  s.join(1).join(2).join(3);
  s.chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  // Terminal (unencrypted) gift to a neighbor that still owes reciprocation.
  s.add(EventKind::kTxOpen, 1, 2, net::kNoPeer, 5, 20, 0);
  expect_only(check_events(s.events()), Invariant::kPendingBound);
}

// --- chain-shape -----------------------------------------------------------

TEST(CheckerMutation, ForgedChainCycleFlagsChainShape) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  // The same transaction linked into the chain a second time: a cycle.
  s.add(EventKind::kChainExtend, net::kNoPeer, net::kNoPeer, net::kNoPeer,
        net::kNoPiece, 10, 7);
  expect_only(check_events(s.events()), Invariant::kChainShape);
}

TEST(CheckerMutation, BreakWithoutCauseFlagsChainShape) {
  Stream s;
  s.join(1).chain_start(7, 1);
  s.add(EventKind::kChainBreak, net::kNoPeer, net::kNoPeer, net::kNoPeer,
        net::kNoPiece, 0, 7,
        static_cast<std::uint8_t>(ChainBreakCause::kNone));
  expect_only(check_events(s.events()), Invariant::kChainShape);
}

TEST(CheckerMutation, DoubleChainStartFlagsChainShape) {
  Stream s;
  s.join(1).chain_start(7, 1).chain_start(7, 1);
  expect_only(check_events(s.events()), Invariant::kChainShape);
}

// --- escrow ----------------------------------------------------------------

TEST(CheckerMutation, DroppedEscrowRefundFlagsEscrow) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.deliver(1, 2, 0, 100);
  s.add(EventKind::kKeyEscrowed, 1, 2, 3, net::kNoPiece, 10, 7);
  // The escrowed key vanishes: close with neither delivery nor refund.
  s.tx_close(10, kAwaitKey);
  expect_only(check_events(s.events()), Invariant::kEscrow);
}

TEST(CheckerMutation, SwallowedCiphertextOfCompliantPeerFlagsEscrow) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.deliver(1, 2, 0, 100).tx_close(10, kAwaitKey);
  expect_only(check_events(s.events()), Invariant::kEscrow);
}

TEST(CheckerMutation, FreeriderSwallowIsSanctioned) {
  Stream s;
  s.join(1).join(2, obs::kPeerFlagFreerider).join(3);
  s.chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  // Withholding the key from a free-riding requestor is the §II-D2 sanction.
  s.deliver(1, 2, 0, 100).tx_close(10, kAwaitKey);
  EXPECT_TRUE(check_events(s.events()).clean());
}

TEST(CheckerMutation, EscrowOpenAtEndOfStreamIsOnlyAWarning) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.deliver(1, 2, 0, 100);
  s.add(EventKind::kKeyEscrowed, 1, 2, 3, net::kNoPiece, 10, 7);
  const CheckReport r = check_events(s.events());
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.warnings, 1u);
  EXPECT_STREQ(r.verdict(), "PASS");
}

// --- piece-conservation ----------------------------------------------------

TEST(CheckerMutation, DuplicateGrantFlagsPieceConservation) {
  Stream s;
  s.join(1).join(2).deliver(1, 2, 0, 100);
  s.add(EventKind::kPieceGranted, 2, 1, net::kNoPeer, 0);
  s.add(EventKind::kPieceGranted, 2, 1, net::kNoPeer, 0);
  expect_only(check_events(s.events()), Invariant::kPieceConservation);
}

TEST(CheckerMutation, GrantWithoutDeliveryFlagsPieceConservation) {
  Stream s;
  s.join(1).join(2);
  // Piece out of thin air: granted but never delivered on the (1, 2) edge.
  s.add(EventKind::kPieceGranted, 2, 1, net::kNoPeer, 0);
  expect_only(check_events(s.events()), Invariant::kPieceConservation);
}

// --- tx-lifecycle ----------------------------------------------------------

TEST(CheckerMutation, CompletedCloseWithoutKeyFlagsTxLifecycle) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.deliver(1, 2, 0, 100).tx_close(10, kCompleted);
  const CheckReport r = check_events(s.events());
  EXPECT_GE(class_count(r, Invariant::kTxLifecycle), 1u);
  EXPECT_FALSE(r.clean());
}

TEST(CheckerMutation, DoubleCloseFlagsTxLifecycle) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.deliver(1, 2, 0, 100);
  s.tx_open(11, 2, 3, 1, 1, 7).deliver(2, 3, 1, 101);
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted).tx_close(10, kCompleted);
  expect_only(check_events(s.events()), Invariant::kTxLifecycle);
}

// --- soundness contract ----------------------------------------------------

TEST(CheckerMutation, DropsDowngradeViolationsToPossible) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted);
  const CheckReport r = check_events(s.events(), /*dropped=*/3);
  EXPECT_FALSE(r.sound);
  EXPECT_STREQ(r.verdict(), "UNSOUND");
  EXPECT_EQ(r.total_violations, 0u);
  EXPECT_GE(r.possible_violations, 1u);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.dropped, 3u);
}

TEST(CheckerMutation, UnknownRefsOnLossyStreamAreOrphansNotViolations) {
  Stream s;
  s.join(1).join(2);
  // The tx-open was overwritten by the ring; only the tail survived.
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted);
  const CheckReport r = check_events(s.events(), /*dropped=*/5);
  EXPECT_EQ(r.total_violations, 0u);
  EXPECT_EQ(r.possible_violations, 0u);
  EXPECT_GE(r.orphans, 2u);
}

TEST(CheckerMutation, UnknownRefsOnCompleteStreamAreViolations) {
  Stream s;
  s.join(1).join(2).key_delivered(10, 1, 2);
  EXPECT_EQ(check_events(s.events()).total_violations, 1u);
}

TEST(CheckerMutation, FindingsAreCappedButCountersKeepCounting) {
  Stream s;
  s.join(1).join(2);
  // Every grant lacks a delivery, and every second one is a duplicate.
  for (int i = 0; i < 10; ++i) {
    s.add(EventKind::kPieceGranted, 2, 1, net::kNoPeer,
          static_cast<net::PieceIndex>(i));
    s.add(EventKind::kPieceGranted, 2, 1, net::kNoPeer,
          static_cast<net::PieceIndex>(i));
  }
  CheckerOptions opts;
  opts.max_findings = 4;
  const CheckReport r = check_events(s.events(), 0, opts);
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(r.total_violations, 20u);
}

TEST(CheckerMutation, OnlineSinkMatchesOneShot) {
  Stream s;
  s.join(1).join(2).join(3).chain_start(7, 1).tx_open(10, 1, 2, 3, 0, 7);
  s.key_delivered(10, 1, 2).tx_close(10, kCompleted);

  Checker online;
  for (const TraceEvent& e : s.events()) online.on_event(e);
  const CheckReport& a = online.finish();
  const CheckReport b = check_events(s.events());
  EXPECT_EQ(a.total_violations, b.total_violations);
  EXPECT_EQ(a.events, b.events);
  EXPECT_STREQ(a.verdict(), b.verdict());
}

}  // namespace
}  // namespace tc::check
