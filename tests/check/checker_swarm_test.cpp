// End-to-end checker runs against real swarms: representative T-Chain
// scenarios (fig7-style free-riders, collusion, faults + churn) must come
// back PASS with zero violations, the exp runner must snapshot the verdict
// into the record extras, and a deliberately lossy ring must downgrade the
// offline verdict to UNSOUND instead of inventing violations.
#include <gtest/gtest.h>

#include "src/bt/swarm.h"
#include "src/check/invariants.h"
#include "src/exp/runner.h"
#include "src/protocols/registry.h"

namespace tc::check {
namespace {

bt::SwarmConfig fig7_style_config() {
  bt::SwarmConfig cfg;
  cfg.leecher_count = 50;
  cfg.freerider_fraction = 0.2;
  cfg.file_bytes = util::ByteCount{2} * util::kMiB;
  cfg.max_sim_time = 50'000.0;
  return cfg;
}

// Runs `spec` through the exp runner with checking on and returns the
// record (asserting the run itself succeeded).
exp::RunRecord run_checked(exp::RunSpec spec) {
  spec.check = true;
  exp::RunRecord rec = exp::run_one(spec);
  EXPECT_TRUE(rec.ok) << rec.error;
  return rec;
}

void expect_clean(const exp::RunRecord& rec) {
  EXPECT_EQ(rec.extra_value("check.sound", 0.0), 1.0);
  EXPECT_EQ(rec.extra_value("check.violations", -1.0), 0.0);
  EXPECT_EQ(rec.extra_value("check.possible", -1.0), 0.0);
  EXPECT_GT(rec.extra_value("check.events", 0.0), 0.0);
}

TEST(CheckerSwarm, Fig7StyleFreeriderSwarmIsClean) {
  exp::RunSpec spec;
  spec.protocol = "tchain";
  spec.config = fig7_style_config();
  expect_clean(run_checked(spec));
}

TEST(CheckerSwarm, CollusionAttackRunIsClean) {
  exp::RunSpec spec;
  spec.protocol = "tchain";
  spec.config = fig7_style_config();
  spec.config.leecher_count = 30;
  spec.config.freerider_collude = true;
  expect_clean(run_checked(spec));
}

TEST(CheckerSwarm, FaultsAndChurnRunIsClean) {
  exp::RunSpec spec;
  spec.protocol = "tchain";
  spec.config = fig7_style_config();
  spec.config.leecher_count = 30;
  spec.config.faults.control_loss = 0.05;
  spec.config.faults.session_kind = sim::FaultPlan::SessionKind::kExponential;
  spec.config.faults.mean_session = 2'000.0;
  spec.config.faults.crash_fraction = 0.5;
  spec.config.tx_timeout = 60.0;
  expect_clean(run_checked(spec));
}

TEST(CheckerSwarm, BaselineProtocolIsVacuouslyClean) {
  exp::RunSpec spec;
  spec.protocol = "bittorrent";
  spec.config = fig7_style_config();
  spec.config.leecher_count = 12;
  expect_clean(run_checked(spec));
}

TEST(CheckerSwarm, CheckOffLeavesRecordExtrasUntouched) {
  exp::RunSpec spec;
  spec.protocol = "tchain";
  spec.config = fig7_style_config();
  spec.config.leecher_count = 10;
  const exp::RunRecord rec = exp::run_one(spec);
  ASSERT_TRUE(rec.ok) << rec.error;
  for (const auto& [key, value] : rec.extra) {
    (void)value;
    EXPECT_EQ(key.rfind("check.", 0), std::string::npos) << key;
  }
}

TEST(CheckerSwarm, ApplyCheckFlagSetsEverySpec) {
  std::vector<exp::RunSpec> specs(3);
  {
    const char* argv[] = {"prog", "--check"};
    const util::Flags flags(2, const_cast<char**>(argv));
    exp::apply_check_flag(specs, flags);
    for (const auto& s : specs) EXPECT_TRUE(s.check);
  }
  std::vector<exp::RunSpec> untouched(2);
  {
    const char* argv[] = {"prog"};
    const util::Flags flags(1, const_cast<char**>(argv));
    exp::apply_check_flag(untouched, flags);
    for (const auto& s : untouched) EXPECT_FALSE(s.check);
  }
}

TEST(CheckerSwarm, TotalCheckViolationsSumsRecords) {
  std::vector<exp::RunRecord> records(3);
  records[0].add_extra("check.sound", 1);
  records[0].add_extra("check.violations", 2);
  records[1].add_extra("check.sound", 0);
  records[1].add_extra("check.possible", 1);
  // records[2]: no check extras at all — counts zero.
  std::size_t unsound = 0;
  EXPECT_EQ(exp::total_check_violations(records, &unsound), 3u);
  EXPECT_EQ(unsound, 1u);
}

TEST(CheckerSwarm, LossyRingReplayIsUnsoundNotFalsePositive) {
  auto proto = protocols::make_protocol("tchain");
  bt::SwarmConfig cfg = fig7_style_config();
  cfg.leecher_count = 20;
  bt::Swarm swarm(cfg, *proto, {});
  obs::TraceConfig trace;
  trace.enabled = true;
  trace.ring_capacity = 64;  // far smaller than the run's event count
  swarm.enable_obs(trace);
  swarm.run();

  const obs::Trace* tr = swarm.obs();
  ASSERT_NE(tr, nullptr);
  ASSERT_GT(tr->ring().dropped(), 0u);
  const CheckReport r = check_events(tr->events(), tr->ring().dropped());
  EXPECT_FALSE(r.sound);
  EXPECT_STREQ(r.verdict(), "UNSOUND");
  // The whole point of the soundness contract: a truncated window must
  // never be reported as hard violations.
  EXPECT_EQ(r.total_violations, 0u);
}

TEST(CheckerSwarm, OnlineSinkMatchesOfflineReplayOnLosslessRing) {
  auto proto = protocols::make_protocol("tchain");
  bt::SwarmConfig cfg = fig7_style_config();
  cfg.leecher_count = 15;

  Checker online;
  {
    bt::Swarm swarm(cfg, *proto, {});
    obs::TraceConfig trace;
    trace.enabled = true;
    trace.ring_capacity = std::size_t{1} << 22;
    swarm.enable_obs(trace);
    swarm.obs()->set_sink(&online);
    swarm.run();
    const obs::Trace* tr = swarm.obs();
    ASSERT_EQ(tr->ring().dropped(), 0u);
    const CheckReport offline = check_events(tr->events());
    const CheckReport& live = online.finish();
    EXPECT_EQ(live.events, offline.events);
    EXPECT_EQ(live.total_violations, offline.total_violations);
    EXPECT_EQ(live.warnings, offline.warnings);
    EXPECT_STREQ(live.verdict(), offline.verdict());
    EXPECT_TRUE(live.clean());
  }
}

}  // namespace
}  // namespace tc::check
