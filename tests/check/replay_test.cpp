// CSV replay: read_event_csv must round-trip obs::write_event_csv exactly
// and reject malformed input with a line-numbered error.
#include "src/check/replay.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/obs/export.h"

namespace tc::check {
namespace {

using obs::EventKind;
using obs::TraceEvent;

TEST(Replay, RoundTripsEveryFieldAndSentinel) {
  std::vector<TraceEvent> events;
  {
    TraceEvent e;  // fully-populated triangle open
    e.t = 12.25;
    e.kind = EventKind::kTxOpen;
    e.a = 1;
    e.b = 2;
    e.c = 3;
    e.piece = 17;
    e.ref = 42;
    e.chain = 7;
    events.push_back(e);
  }
  {
    TraceEvent e;  // sentinel-heavy event: no peers, no piece
    e.t = 13.5;
    e.kind = EventKind::kCensusTick;
    events.push_back(e);
  }
  {
    TraceEvent e;  // aux payload (break cause)
    e.t = 14.0;
    e.kind = EventKind::kChainBreak;
    e.chain = 7;
    e.aux = 3;
    events.push_back(e);
  }

  std::stringstream io;
  obs::write_event_csv(io, events);
  const auto parsed = read_event_csv(io);

  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_DOUBLE_EQ(parsed[i].t, events[i].t);
    EXPECT_EQ(parsed[i].kind, events[i].kind);
    EXPECT_EQ(parsed[i].a, events[i].a);
    EXPECT_EQ(parsed[i].b, events[i].b);
    EXPECT_EQ(parsed[i].c, events[i].c);
    EXPECT_EQ(parsed[i].piece, events[i].piece);
    EXPECT_EQ(parsed[i].ref, events[i].ref);
    EXPECT_EQ(parsed[i].chain, events[i].chain);
    EXPECT_EQ(parsed[i].aux, events[i].aux);
  }
}

TEST(Replay, RoundTripsEveryEventKindName) {
  std::vector<TraceEvent> events;
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    TraceEvent e;
    e.t = static_cast<double>(k);
    e.kind = static_cast<EventKind>(k);
    events.push_back(e);
  }
  std::stringstream io;
  obs::write_event_csv(io, events);
  const auto parsed = read_event_csv(io);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(parsed[k].kind, events[k].kind);
  }
}

TEST(Replay, RejectsMissingHeader) {
  std::stringstream in("1.0,tx-open,1,2,3,0,42,7,0\n");
  EXPECT_THROW(read_event_csv(in), std::runtime_error);
}

TEST(Replay, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_THROW(read_event_csv(in), std::runtime_error);
}

TEST(Replay, RejectsUnknownKindWithLineNumber) {
  std::stringstream in("t,kind,a,b,c,piece,ref,chain,aux\n"
                       "1.0,not-a-kind,1,2,3,0,42,7,0\n");
  try {
    read_event_csv(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Replay, RejectsWrongFieldCount) {
  std::stringstream in("t,kind,a,b,c,piece,ref,chain,aux\n"
                       "1.0,tx-open,1,2,3\n");
  EXPECT_THROW(read_event_csv(in), std::runtime_error);
}

TEST(Replay, RejectsNonNumericField) {
  std::stringstream in("t,kind,a,b,c,piece,ref,chain,aux\n"
                       "1.0,tx-open,one,2,3,0,42,7,0\n");
  EXPECT_THROW(read_event_csv(in), std::runtime_error);
}

TEST(Replay, SkipsBlankLinesAndToleratesCrLf) {
  std::stringstream in("t,kind,a,b,c,piece,ref,chain,aux\r\n"
                       "\r\n"
                       "1.0,peer-join,4,,,,0,0,1\r\n");
  const auto parsed = read_event_csv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].kind, EventKind::kPeerJoin);
  EXPECT_EQ(parsed[0].a, 4u);
  EXPECT_EQ(parsed[0].b, net::kNoPeer);
  EXPECT_EQ(parsed[0].piece, net::kNoPiece);
  EXPECT_EQ(parsed[0].aux, 1u);
}

}  // namespace
}  // namespace tc::check
