#include "src/model/bootstrap_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tc::model {
namespace {

TEST(Omega, PrimeIsNearHalf) {
  EXPECT_NEAR(omega_prime_uniform(100), 0.5, 0.01);  // paper quotes 0.495
  EXPECT_NEAR(omega_prime_uniform(1000), 0.5, 0.001);
}

TEST(Omega, DoublePrimeApproxLogMOverM) {
  // Paper: omega'' ~ log(M)/M for large M, uniform piece counts.
  for (std::size_t M : {50u, 100u, 400u}) {
    const double w2 = omega_double_prime_uniform(M);
    const double approx = std::log(static_cast<double>(M)) / static_cast<double>(M);
    EXPECT_NEAR(w2, approx, 0.6 * approx) << M;
    EXPECT_GT(w2, 0.0);
    EXPECT_LT(w2, 1.0);
  }
}

TEST(Omega, DoublePrimeAtMostPrime) {
  // The paper assumes omega'' <= omega' throughout.
  for (std::size_t M : {10u, 100u, 300u}) {
    EXPECT_LE(omega_double_prime_uniform(M), omega_prime_uniform(M)) << M;
  }
}

TEST(Trajectory, BitTorrentMonotoneDecrease) {
  ModelParams p;
  const auto traj = bittorrent_trajectory(p, /*x0=*/p.n, 200);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(traj[i].x, traj[i - 1].x + 1e-9);
  }
  EXPECT_LT(traj.back().x, 1.0);  // eventually everyone bootstrapped
}

TEST(Trajectory, TChainDrainsUnbootstrappedPool) {
  ModelParams p;
  const auto traj = tchain_trajectory(p, p.n - 1, 0.0, 300);
  EXPECT_LT(traj.back().x + traj.back().y, 1.0);
  // z never exceeds n.
  for (const auto& pt : traj) {
    EXPECT_GE(pt.z, -1e-9);
    EXPECT_LE(pt.z, p.n + 1e-9);
  }
}

TEST(Trajectory, TChainBootstrapsFasterInFlashCrowd) {
  // The headline of §III-B3: with most peers un-bootstrapped, T-Chain's
  // chains reach newcomers faster than BitTorrent's optimistic unchokes.
  ModelParams p;
  p.n = 600;
  p.K = 2;
  const double x0 = p.n - 10;  // flash crowd: nearly everyone new
  const auto bt = bittorrent_trajectory(p, x0, 100);
  const auto tcn = tchain_trajectory(p, x0, 0.0, 100);
  // Compare total un-bootstrapped peers after 30 slots.
  EXPECT_LT(tcn[30].x + tcn[30].y, bt[30].x);
}

TEST(Proposition31, HoldsInPaperExample) {
  // Paper: delta=0.2, omega'~0.495, mu=0.5, K=2 satisfies K*omega'*mu>=delta.
  ModelParams p;
  p.n = 600;
  p.K = 2;
  p.delta = 0.2;
  const double mu = 0.5;
  // x_t + y_t = mu*n un-bootstrapped in T-Chain, same for BitTorrent.
  EXPECT_TRUE(prop31_condition(p, mu * p.n / 2, mu * p.n / 2, mu * p.n));
}

TEST(Proposition31, FailsWhenKTooSmall) {
  ModelParams p;
  p.n = 600;
  p.K = 0.01;  // nearly no chains: T-Chain can't beat optimistic unchoking
  EXPECT_FALSE(prop31_condition(p, 100, 100, 300));
}

TEST(Proposition32, KOmegaCondition) {
  // Limit form: delta*(1-nu) <= K*omega''*(1-mu); generous K satisfies it.
  ModelParams p;
  p.n = 600;
  p.M = 100;
  p.delta = 0.2;
  p.K = 10;
  EXPECT_TRUE(prop32_condition(p, /*mu=*/0.1, /*nu=*/0.5));
  p.K = 0.01;
  EXPECT_FALSE(prop32_condition(p, 0.1, 0.5));
}

TEST(Rates, InUnitInterval) {
  ModelParams p;
  for (double x : {10.0, 100.0, 500.0}) {
    EXPECT_GT(bittorrent_rate(p, x), 0.0);
    EXPECT_LT(bittorrent_rate(p, x), 1.0);
    EXPECT_GT(tchain_rate(p, x, 10.0), 0.0);
    EXPECT_LT(tchain_rate(p, x, 10.0), 1.0);
  }
}

TEST(Trajectory, ArrivalsKeepPoolNonEmpty) {
  ModelParams p;
  p.alpha = 0.01;
  p.beta = 0.01;  // constant population with churn
  const auto traj = tchain_trajectory(p, p.n / 2, 0.0, 500);
  // Steady state: some newcomers always present.
  EXPECT_GT(traj.back().x, 0.5);
}

}  // namespace
}  // namespace tc::model
