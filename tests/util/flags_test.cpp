#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace tc::util {
namespace {

Flags make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValue) {
  const auto f = make({"--swarms", "500"});
  EXPECT_EQ(f.get_int("swarms", 0), 500);
}

TEST(Flags, EqualsValue) {
  const auto f = make({"--file-mb=16"});
  EXPECT_EQ(f.get_int("file-mb", 0), 16);
}

TEST(Flags, BooleanFlag) {
  const auto f = make({"--full", "--seeds", "3"});
  EXPECT_TRUE(f.get_bool("full"));
  EXPECT_EQ(f.get_int("seeds", 0), 3);
}

TEST(Flags, BooleanFalseSpellings) {
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
}

TEST(Flags, Defaults) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(f.get_string("missing", "d"), "d");
  EXPECT_FALSE(f.get_bool("missing"));
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, Positional) {
  const auto f = make({"run", "--n", "5", "fast"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "fast");
}

TEST(Flags, DoubleValue) {
  const auto f = make({"--frac", "0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("frac", 0), 0.25);
}

TEST(Flags, LastOccurrenceWins) {
  const auto f = make({"--n", "1", "--n", "2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

}  // namespace
}  // namespace tc::util
