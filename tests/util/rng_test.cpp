#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tc::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  r.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(37);
  const auto s = r.sample_indices(100, 30);
  ASSERT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng r(41);
  EXPECT_EQ(r.sample_indices(5, 10).size(), 5u);
  EXPECT_TRUE(r.sample_indices(0, 3).empty());
}

TEST(Rng, SampleIndicesIsUniform) {
  Rng r(43);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (auto i : r.sample_indices(10, 3)) ++counts[i];
  }
  // Each index expected 20000 * 3/10 = 6000.
  for (int c : counts) EXPECT_NEAR(c, 6000, 300);
}

TEST(Rng, ForkIndependence) {
  Rng a(47);
  Rng b = a.fork();
  // Child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, PickReturnsElement) {
  Rng r(53);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = r.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = split_mix64(s);
  const auto b = split_mix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(split_mix64(s2), a);
}

}  // namespace
}  // namespace tc::util
