#include "src/util/bytes.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tc::util {
namespace {

TEST(Bytes, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(-1.25e10);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(r.f64(), -1.25e10);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(Bytes, BlobAndStringRoundTrip) {
  ByteWriter w;
  w.blob({1, 2, 3});
  w.str("hello");
  w.str("");
  ByteReader r(w.data());
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  r.u8();
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Bytes, TruncatedBlobThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes that are not there
  ByteReader r(w.data());
  EXPECT_THROW(r.blob(), std::out_of_range);
}

TEST(Bytes, EmptyReaderIsDone) {
  Bytes empty;
  ByteReader r(empty);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(Hex, RoundTrip) {
  const Bytes b{0x00, 0xff, 0x1a, 0x2b};
  EXPECT_EQ(to_hex(b), "00ff1a2b");
  EXPECT_EQ(from_hex("00ff1a2b"), b);
  EXPECT_EQ(from_hex("00FF1A2B"), b);
}

TEST(Hex, Invalid) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
  EXPECT_TRUE(from_hex("").empty());
}

class BytesFuzzRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BytesFuzzRoundTrip, BlobOfEverySize) {
  Bytes data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  ByteWriter w;
  w.blob(data);
  ByteReader r(w.data());
  EXPECT_EQ(r.blob(), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BytesFuzzRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 63, 64, 65, 255,
                                           256, 1000, 65536));

}  // namespace
}  // namespace tc::util
