#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 5; ++i) small.add(i % 2);
  for (int i = 0; i < 500; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(RunningStats, NumericalStabilityLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 3));
  EXPECT_NEAR(s.mean(), 1e9 + 1.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0 * 1000.0 / 999.0, 1e-3);
}

TEST(TQuantile, KnownValues) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_975(10), 2.228, 1e-3);
  EXPECT_NEAR(t_quantile_975(29), 2.045, 1e-3);
  EXPECT_NEAR(t_quantile_975(1000), 1.96, 1e-3);
}

TEST(Distribution, MeanAndMedian) {
  Distribution d;
  d.add_all({1, 2, 3, 4, 100});
  EXPECT_DOUBLE_EQ(d.mean(), 22.0);
  EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(Distribution, PercentileInterpolates) {
  Distribution d;
  d.add_all({0, 10});
  EXPECT_DOUBLE_EQ(d.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 10.0);
}

TEST(Distribution, PercentileOfEmptyThrows) {
  Distribution d;
  EXPECT_THROW(d.percentile(0.5), std::out_of_range);
}

TEST(Distribution, CdfAt) {
  Distribution d;
  d.add_all({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf_at(10.0), 1.0);
}

TEST(Distribution, CdfPointsMonotone) {
  Distribution d;
  for (int i = 0; i < 57; ++i) d.add((i * 37) % 100);
  const auto pts = d.cdf_points(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GT(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Distribution, InterleavedAddAndQuery) {
  Distribution d;
  d.add(5);
  EXPECT_DOUBLE_EQ(d.median(), 5.0);
  d.add(1);
  d.add(9);
  EXPECT_DOUBLE_EQ(d.median(), 5.0);  // re-sorts after mutation
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3);    // clamps to bin 0
  h.add(42);    // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
}

TEST(Histogram, InvalidRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tc::util
