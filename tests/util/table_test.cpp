#include "src/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tc::util {
namespace {

TEST(AsciiTable, PrintsAlignedColumns) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| longer-name "), std::string::npos);
  // Header separator lines present.
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(AsciiTable, ShortRowsArePadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(AsciiTable, NumericRow) {
  AsciiTable t({"a", "b"});
  t.add_row_numeric({1.2345, 2.0}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.23,2.00\n");
}

TEST(AsciiTable, CsvEscapesNothingButIsStable) {
  AsciiTable t({"h1", "h2"});
  t.add_row({"v1", "v2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\nv1,v2\n");
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 0), "-0");
}

TEST(Format, Scientific) {
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
}

}  // namespace
}  // namespace tc::util
