#include "src/crypto/xtea.h"

#include <gtest/gtest.h>

namespace tc::crypto {
namespace {

TEST(Xtea, BlockRoundTrip) {
  const XteaKey key{0x01234567, 0x89abcdef, 0xfedcba98, 0x76543210};
  for (std::uint64_t block :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeefcafebabe},
        ~std::uint64_t{0}}) {
    const auto ct = xtea_encrypt_block(key, block);
    EXPECT_NE(ct, block);
    EXPECT_EQ(xtea_decrypt_block(key, ct), block);
  }
}

TEST(Xtea, KeySensitivity) {
  const XteaKey k1{1, 2, 3, 4};
  const XteaKey k2{1, 2, 3, 5};
  EXPECT_NE(xtea_encrypt_block(k1, 42), xtea_encrypt_block(k2, 42));
}

TEST(Xtea, DiffusionAcrossBits) {
  const XteaKey key{7, 7, 7, 7};
  const auto a = xtea_encrypt_block(key, 0);
  const auto b = xtea_encrypt_block(key, 1);
  // Single input-bit flip changes roughly half the output bits.
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(XteaCtr, RoundTripVariousLengths) {
  const XteaKey key{0xa, 0xb, 0xc, 0xd};
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 100u, 1024u}) {
    util::Bytes data(len);
    for (std::size_t i = 0; i < len; ++i)
      data[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    const auto ct = xtea_ctr_xor(key, 0x1122334455667788ull, data);
    ASSERT_EQ(ct.size(), len);
    if (len > 0) {
      EXPECT_NE(ct, data);
    }
    EXPECT_EQ(xtea_ctr_xor(key, 0x1122334455667788ull, ct), data);
  }
}

TEST(XteaCtr, NonceSensitivity) {
  const XteaKey key{1, 2, 3, 4};
  const util::Bytes zeros(32, 0);
  EXPECT_NE(xtea_ctr_xor(key, 1, zeros), xtea_ctr_xor(key, 2, zeros));
}

TEST(XteaCtr, GoldenValueStable) {
  // Regression pin: catches accidental algorithm changes.
  const XteaKey key{0, 0, 0, 0};
  const util::Bytes zeros(8, 0);
  const auto ct = xtea_ctr_xor(key, 0, zeros);
  const auto again = xtea_ctr_xor(key, 0, zeros);
  EXPECT_EQ(ct, again);
  // Keystream equals encryption of the zero block.
  const auto ks = xtea_encrypt_block(key, 0);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(ct[static_cast<std::size_t>(i)],
              static_cast<std::uint8_t>(ks >> (56 - 8 * i)));
}

}  // namespace
}  // namespace tc::crypto
