// RFC 4231 HMAC-SHA256 test vectors.
#include "src/crypto/hmac.h"

#include <gtest/gtest.h>

#include "src/util/bytes.h"

namespace tc::crypto {
namespace {

std::string hex(const Digest256& d) { return util::to_hex(d.data(), d.size()); }

TEST(HmacSha256, Rfc4231Case1) {
  const util::Bytes key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const util::Bytes key{'J', 'e', 'f', 'e'};
  EXPECT_EQ(hex(hmac_sha256(key, "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const util::Bytes key(20, 0xaa);
  const util::Bytes data(50, 0xdd);
  EXPECT_EQ(hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const util::Bytes key(131, 0xaa);
  EXPECT_EQ(hex(hmac_sha256(key, "Test Using Larger Than Block-Size Key - "
                                 "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, KeySensitivity) {
  const util::Bytes k1(16, 1), k2(16, 2);
  EXPECT_NE(hex(hmac_sha256(k1, "msg")), hex(hmac_sha256(k2, "msg")));
}

TEST(HmacSha256, MessageSensitivity) {
  const util::Bytes k(16, 1);
  EXPECT_NE(hex(hmac_sha256(k, "msg1")), hex(hmac_sha256(k, "msg2")));
}

TEST(DigestEqual, EqualAndUnequal) {
  Digest256 a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
  b[31] = 0;
  b[0] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace tc::crypto
