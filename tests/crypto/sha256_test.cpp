// NIST FIPS 180-4 test vectors.
#include "src/crypto/sha256.h"

#include <gtest/gtest.h>

#include "src/util/bytes.h"

namespace tc::crypto {
namespace {

std::string hex(const Digest256& d) {
  return util::to_hex(d.data(), d.size());
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and with vigor.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(hex(h.finish()), hex(sha256(msg))) << "split=" << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all differ and be
  // stable under re-computation.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string m(len, 'x');
    EXPECT_EQ(hex(sha256(m)), hex(sha256(m)));
    EXPECT_NE(hex(sha256(m)), hex(sha256(m + "x")));
  }
}

TEST(Sha256, BytesOverload) {
  const util::Bytes b{'a', 'b', 'c'};
  EXPECT_EQ(hex(sha256(b)), hex(sha256("abc")));
}

}  // namespace
}  // namespace tc::crypto
