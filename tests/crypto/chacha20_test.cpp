// RFC 8439 ChaCha20 test vectors.
#include "src/crypto/chacha20.h"

#include <gtest/gtest.h>

#include "src/util/bytes.h"

namespace tc::crypto {
namespace {

ChaChaKey test_key() {
  ChaChaKey k;
  for (int i = 0; i < 32; ++i) k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  return k;
}

TEST(ChaCha20, Rfc8439BlockFunction) {
  // RFC 8439 §2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:00:00:00:00,
  // counter 1.
  ChaChaNonce nonce{0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                    0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = chacha20_block(test_key(), nonce, 1);
  EXPECT_EQ(util::to_hex(block.data(), block.size()),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  // RFC 8439 §2.4.2 "sunscreen" vector.
  ChaChaNonce nonce{0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                    0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string pt =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  util::Bytes plain(pt.begin(), pt.end());
  const auto ct = chacha20_xor(test_key(), nonce, 1, plain);
  EXPECT_EQ(util::to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, RoundTrip) {
  ChaChaNonce nonce{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  util::Bytes data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  const auto ct = chacha20_xor(test_key(), nonce, 0, data);
  EXPECT_NE(ct, data);
  EXPECT_EQ(chacha20_xor(test_key(), nonce, 0, ct), data);
}

TEST(ChaCha20, CounterMatters) {
  ChaChaNonce nonce{};
  const util::Bytes data(64, 0);
  EXPECT_NE(chacha20_xor(test_key(), nonce, 0, data),
            chacha20_xor(test_key(), nonce, 1, data));
}

TEST(ChaCha20, NonAlignedLengths) {
  ChaChaNonce nonce{};
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 127u, 130u}) {
    util::Bytes data(len, 0x42);
    const auto ct = chacha20_xor(test_key(), nonce, 7, data);
    ASSERT_EQ(ct.size(), len);
    EXPECT_EQ(chacha20_xor(test_key(), nonce, 7, ct), data);
  }
}

}  // namespace
}  // namespace tc::crypto
