#include "src/crypto/cipher.h"

#include <gtest/gtest.h>

#include <set>

namespace tc::crypto {
namespace {

TEST(KeySource, KeysAreUniqueAndDeterministic) {
  KeySource a(99), b(99);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto ka = a.next();
    const auto kb = b.next();
    EXPECT_EQ(ka, kb);  // deterministic from seed
    seen.insert(util::to_hex(ka.serialize()));
  }
  EXPECT_EQ(seen.size(), 1000u);  // never reused (paper footnote 2)
  EXPECT_EQ(a.keys_issued(), 1000u);
}

TEST(SymmetricKey, SerializeRoundTrip) {
  KeySource ks(5);
  const auto k = ks.next();
  EXPECT_EQ(SymmetricKey::deserialize(k.serialize()), k);
  EXPECT_EQ(k.serialize().size(), 44u);  // 32-byte key + 12-byte nonce
}

TEST(SymmetricKey, DeserializeRejectsBadSize) {
  EXPECT_THROW(SymmetricKey::deserialize(util::Bytes(10)), std::invalid_argument);
}

TEST(SymmetricKey, FingerprintIsShortHex) {
  KeySource ks(6);
  EXPECT_EQ(ks.next().fingerprint().size(), 8u);
}

TEST(CipherFactory, Names) {
  EXPECT_STREQ(cipher_kind_name(CipherKind::kChaCha20), "chacha20");
  EXPECT_STREQ(cipher_kind_name(CipherKind::kXteaCtr), "xtea-ctr");
  EXPECT_EQ(make_cipher(CipherKind::kChaCha20)->kind(), CipherKind::kChaCha20);
  EXPECT_EQ(make_cipher(CipherKind::kXteaCtr)->kind(), CipherKind::kXteaCtr);
}

struct CipherCase {
  CipherKind kind;
  std::size_t len;
};

class CipherRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CipherRoundTrip, EncryptDecrypt) {
  const auto kind = static_cast<CipherKind>(std::get<0>(GetParam()));
  const std::size_t len = std::get<1>(GetParam());
  const auto cipher = make_cipher(kind);
  KeySource ks(1234);
  const auto key = ks.next();

  util::Bytes plain(len);
  for (std::size_t i = 0; i < len; ++i)
    plain[i] = static_cast<std::uint8_t>(i * 31 + 5);

  const auto ct = cipher->encrypt(key, plain);
  ASSERT_EQ(ct.size(), plain.size());  // stream cipher: no expansion
  if (len > 8) {
    EXPECT_NE(ct, plain);
  }
  EXPECT_EQ(cipher->decrypt(key, ct), plain);

  // Wrong key fails to decrypt (paper §III-A2: ciphertext useless without
  // the matching key).
  const auto wrong = ks.next();
  if (len > 8) {
    EXPECT_NE(cipher->decrypt(wrong, ct), plain);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCiphersAllSizes, CipherRoundTrip,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{15}, std::size_t{64},
                                         std::size_t{1000},
                                         std::size_t{128 * 1024})));

TEST(Cipher, SameKeySamePlaintextSameCiphertext) {
  const auto cipher = make_cipher(CipherKind::kChaCha20);
  KeySource ks(7);
  const auto key = ks.next();
  const util::Bytes plain(100, 0xee);
  EXPECT_EQ(cipher->encrypt(key, plain), cipher->encrypt(key, plain));
}

TEST(Cipher, DifferentKeysDifferentCiphertext) {
  const auto cipher = make_cipher(CipherKind::kChaCha20);
  KeySource ks(8);
  const util::Bytes plain(100, 0xee);
  EXPECT_NE(cipher->encrypt(ks.next(), plain), cipher->encrypt(ks.next(), plain));
}

}  // namespace
}  // namespace tc::crypto
