// Reactor unit coverage against real fds and the monotonic clock. Timing
// assertions use generous tolerances: CI machines stall, and the wheel
// only guarantees "not before the deadline, soon after".
#include "src/rt/reactor.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

namespace tc::rt {
namespace {

TEST(Reactor, PostRunsBeforeTimersAndInOrder) {
  Reactor r;
  std::vector<int> order;
  r.post([&] { order.push_back(1); });
  r.post([&] { order.push_back(2); });
  r.schedule(0.0, [&] {
    order.push_back(3);
    r.stop();
  });
  r.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, TimerFiresAfterDelay) {
  Reactor r;
  double fired_at = -1.0;
  r.schedule(0.05, [&] {
    fired_at = r.now();
    r.stop();
  });
  r.run();
  EXPECT_GE(fired_at, 0.05);
  EXPECT_LT(fired_at, 1.0);  // loose upper bound against CI stalls
}

TEST(Reactor, CancelledTimerNeverFires) {
  Reactor r;
  bool fired = false;
  const Reactor::TimerId id = r.schedule(0.01, [&] { fired = true; });
  r.cancel(id);
  r.schedule(0.05, [&] { r.stop(); });
  r.run();
  EXPECT_FALSE(fired);
}

TEST(Reactor, TimersFireInDeadlineOrder) {
  Reactor r;
  std::vector<int> order;
  r.schedule(0.06, [&] {
    order.push_back(3);
    r.stop();
  });
  r.schedule(0.02, [&] { order.push_back(1); });
  r.schedule(0.04, [&] { order.push_back(2); });
  r.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, ReschedulingFromCallbackWorks) {
  Reactor r;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks >= 3) {
      r.stop();
      return;
    }
    r.schedule(0.005, tick);
  };
  r.schedule(0.005, tick);
  r.run();
  EXPECT_EQ(ticks, 3);
}

class PipeEcho : public Reactor::Handler {
 public:
  explicit PipeEcho(Reactor& r, int fd) : reactor_(r), fd_(fd) {}
  void on_readable() override {
    char buf[64];
    ssize_t n;
    while ((n = ::read(fd_, buf, sizeof(buf))) > 0) {
      got.append(buf, static_cast<std::size_t>(n));
    }
    if (!got.empty()) reactor_.stop();
  }
  std::string got;

 private:
  Reactor& reactor_;
  int fd_;
};

TEST(Reactor, FdReadinessDispatchesToHandler) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  Reactor r;
  PipeEcho echo(r, fds[0]);
  r.add(fds[0], &echo);
  ASSERT_EQ(::write(fds[1], "hi", 2), 2);
  r.schedule(2.0, [&] { r.stop(); });  // failsafe
  r.run();
  EXPECT_EQ(echo.got, "hi");
  r.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, RemoveInsideCallbackIsSafe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  Reactor r;

  class SelfRemover : public Reactor::Handler {
   public:
    SelfRemover(Reactor& r, int fd) : reactor_(r), fd_(fd) {}
    void on_readable() override {
      char buf[16];
      while (::read(fd_, buf, sizeof(buf)) > 0) {
      }
      reactor_.remove(fd_);
      removed = true;
      reactor_.stop();
    }
    bool removed = false;

   private:
    Reactor& reactor_;
    int fd_;
  };

  SelfRemover h(r, fds[0]);
  r.add(fds[0], &h);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  r.schedule(2.0, [&] { r.stop(); });
  r.run();
  EXPECT_TRUE(h.removed);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, NowIsMonotoneAndStartsNearZero) {
  Reactor r;
  const double t0 = r.now();
  EXPECT_GE(t0, 0.0);
  EXPECT_LT(t0, 1.0);
  EXPECT_GE(r.now(), t0);
}

}  // namespace
}  // namespace tc::rt
