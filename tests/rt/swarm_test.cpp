// End-to-end coverage of the live deployment runtime: a real multi-peer
// swarm over loopback sockets must reach 100% on every leecher, the live
// invariant checker must PASS the run, and the exported trace must
// round-trip through the CSV codec into the same verdict offline.
#include "src/rt/swarm.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/check/invariants.h"
#include "src/check/replay.h"
#include "src/obs/export.h"
#include "src/rt/swarm_context.h"

namespace tc::rt {
namespace {

SwarmOptions small_swarm() {
  SwarmOptions opts;
  opts.peers = 4;
  opts.piece_count = 8;
  opts.piece_bytes = 4 * 1024;
  opts.seed = 7;
  opts.deadline_seconds = 60.0;  // generous; loaded CI machines stall
  return opts;
}

TEST(LiveSwarm, FourPeersCompleteAndVerifySound) {
  const SwarmResult res = run_local_swarm(small_swarm());

  ASSERT_EQ(res.peers.size(), 4u);
  EXPECT_TRUE(res.all_complete);
  for (const PeerStat& p : res.peers) {
    EXPECT_TRUE(p.complete) << "peer " << p.id;
    if (!p.seeder && p.complete) {
      EXPECT_GE(p.finish_seconds, 0.0);
      EXPECT_LE(p.finish_seconds, res.wall_seconds);
    }
  }

  // Live online verification: lossless sink => sound, and the protocol
  // implementation must not violate any invariant.
  EXPECT_TRUE(res.check.sound);
  EXPECT_EQ(res.check.total_violations, 0u) << res.check.findings.size();
  EXPECT_STREQ(res.check.verdict(), "PASS");
  EXPECT_EQ(res.events_dropped, 0u);
  EXPECT_GT(res.events_recorded, 0u);
}

TEST(LiveSwarm, TraceRoundTripsThroughCsvToSameVerdict) {
  const SwarmResult res = run_local_swarm(small_swarm());
  ASSERT_TRUE(res.all_complete);
  ASSERT_EQ(res.events_dropped, 0u);

  std::stringstream csv;
  obs::write_event_csv(csv, res.events);
  const std::vector<obs::TraceEvent> replayed =
      check::read_event_csv(csv);
  ASSERT_EQ(replayed.size(), res.events.size());

  const check::CheckReport offline = check::check_events(replayed, 0);
  EXPECT_TRUE(offline.sound);
  EXPECT_EQ(offline.total_violations, 0u);
  EXPECT_STREQ(offline.verdict(), "PASS");
}

TEST(LiveSwarm, TraceContainsTheLiveProtocolVocabulary) {
  const SwarmResult res = run_local_swarm(small_swarm());
  ASSERT_TRUE(res.all_complete);

  std::array<std::uint64_t, obs::kEventKindCount> counts{};
  for (const obs::TraceEvent& e : res.events) {
    ++counts[static_cast<std::size_t>(e.kind)];
  }
  const auto n = [&](obs::EventKind k) {
    return counts[static_cast<std::size_t>(k)];
  };

  EXPECT_EQ(n(obs::EventKind::kPeerJoin), 4u);
  EXPECT_EQ(n(obs::EventKind::kPeerFinish), 3u);  // the seeder never "finishes"
  // 3 leechers x 8 pieces decrypt or arrive plain.
  EXPECT_EQ(n(obs::EventKind::kPieceGranted), 24u);
  EXPECT_GT(n(obs::EventKind::kChainStart), 0u);
  EXPECT_EQ(n(obs::EventKind::kChainStart), n(obs::EventKind::kChainBreak));
  EXPECT_GT(n(obs::EventKind::kTxOpen), 0u);
  EXPECT_EQ(n(obs::EventKind::kTxOpen), n(obs::EventKind::kTxClose));
  EXPECT_EQ(n(obs::EventKind::kTxOpen), n(obs::EventKind::kChainExtend));
  EXPECT_EQ(n(obs::EventKind::kPieceSent),
            n(obs::EventKind::kPieceDelivered));
}

TEST(LiveSwarm, MetricsExposeRuntimeCounters) {
  const SwarmResult res = run_local_swarm(small_swarm());
  bool saw_tx_opened = false;
  for (const auto& [name, value] : res.metrics) {
    if (name == "rt.tx_opened") {
      saw_tx_opened = true;
      EXPECT_GT(value, 0.0);
    }
  }
  EXPECT_TRUE(saw_tx_opened);
}

TEST(LiveSwarm, DeterministicFileMetaAcrossCalls) {
  // The swarm content derives from the seed alone; two metas with the same
  // seed are identical (live socket timing must not leak into the data).
  const SwarmFileMeta a = SwarmFileMeta::make(4, 1024, 42);
  const SwarmFileMeta b = SwarmFileMeta::make(4, 1024, 42);
  ASSERT_EQ(a.pieces.size(), 4u);
  EXPECT_EQ(a.pieces, b.pieces);
  EXPECT_EQ(a.hashes, b.hashes);
  const SwarmFileMeta c = SwarmFileMeta::make(4, 1024, 43);
  EXPECT_NE(a.pieces, c.pieces);
}

}  // namespace
}  // namespace tc::rt
