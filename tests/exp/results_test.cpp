// CSV/JSON record writers: stable schema, escaping, timing opt-in.
#include "src/exp/results.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tc::exp {
namespace {

RunRecord sample_record() {
  RunRecord r;
  r.index = 0;
  r.protocol = "tchain";
  r.label = "swarm=10";
  r.seed = 1;
  r.tags = {{"swarm", "10"}};
  r.ok = true;
  r.result.compliant_mean = 12.5;
  r.result.compliant_finished = 10;
  r.result.uplink_utilization = 0.75;
  r.result.end_time = 99.25;
  r.sim_events = 1234;
  r.wall_seconds = 0.5;
  r.add_extra("window_mean", 3.25);
  return r;
}

TEST(WriteCsv, HeaderAndRowRoundTrip) {
  std::ostringstream os;
  write_csv(os, {sample_record()}, /*include_timing=*/false);
  const std::string out = os.str();
  // Header names the tag and extra columns.
  EXPECT_NE(out.find("index,protocol,seed,label,swarm,ok,error"),
            std::string::npos);
  EXPECT_NE(out.find("window_mean"), std::string::npos);
  EXPECT_NE(out.find("tchain"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  // No wall-clock column without --timing (byte-identity contract).
  EXPECT_EQ(out.find("wall_seconds"), std::string::npos);
}

TEST(WriteCsv, TimingColumnsAreOptIn) {
  std::ostringstream os;
  write_csv(os, {sample_record()}, /*include_timing=*/true);
  EXPECT_NE(os.str().find("wall_seconds"), std::string::npos);
  EXPECT_NE(os.str().find("events_per_sec"), std::string::npos);
}

TEST(WriteCsv, EscapesCommasAndQuotes) {
  auto r = sample_record();
  r.ok = false;
  r.error = "bad, \"worse\"";
  std::ostringstream os;
  write_csv(os, {r}, false);
  EXPECT_NE(os.str().find("\"bad, \"\"worse\"\"\""), std::string::npos);
}

TEST(WriteCsv, UnionsExtraColumnsAcrossRecords) {
  auto a = sample_record();
  auto b = sample_record();
  b.index = 1;
  b.extra.clear();
  b.add_extra("other", 7);
  std::ostringstream os;
  write_csv(os, {a, b}, false);
  const std::string out = os.str();
  // Both extras appear, in first-appearance order.
  const auto wm = out.find("window_mean");
  const auto ot = out.find("other");
  ASSERT_NE(wm, std::string::npos);
  ASSERT_NE(ot, std::string::npos);
  EXPECT_LT(wm, ot);
}

TEST(WriteJson, ProducesParsableLookingOutput) {
  std::ostringstream os;
  write_json(os, {sample_record()}, false);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out[out.size() - 2], ']');  // trailing newline after ]
  EXPECT_NE(out.find("\"protocol\":\"tchain\""), std::string::npos);
  EXPECT_NE(out.find("\"swarm\":\"10\""), std::string::npos);
  EXPECT_NE(out.find("\"window_mean\""), std::string::npos);
  EXPECT_EQ(out.find("wall_seconds"), std::string::npos);
}

TEST(RunRecord, ExtraAndTagLookups) {
  const auto r = sample_record();
  ASSERT_NE(r.tag("swarm"), nullptr);
  EXPECT_EQ(*r.tag("swarm"), "10");
  EXPECT_EQ(r.tag("nope"), nullptr);
  EXPECT_DOUBLE_EQ(r.extra_value("window_mean", -1), 3.25);
  EXPECT_DOUBLE_EQ(r.extra_value("nope", -1), -1);
  EXPECT_DOUBLE_EQ(r.events_per_sec(), 1234 / 0.5);
}

}  // namespace
}  // namespace tc::exp
