// Runner determinism and fault containment: the same sweep must produce
// identical records (and identical CSV bytes) at any --jobs level; a run
// that throws must isolate to its own failed record.
#include "src/exp/runner.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/bt/protocol.h"
#include "src/bt/swarm.h"
#include "src/util/flags.h"

namespace tc::exp {
namespace {

bt::SwarmConfig tiny_config() {
  bt::SwarmConfig cfg;
  cfg.leecher_count = 8;
  cfg.file_bytes = 256 * util::kKiB;
  cfg.max_sim_time = 10'000.0;
  return cfg;
}

Sweep tiny_sweep() {
  Sweep sweep(tiny_config());
  sweep.protocols({"bittorrent", "tchain"})
      .seeds(2)
      .axis("swarm", {6, 10}, [](RunSpec& s, double n) {
        s.config.leecher_count = static_cast<std::size_t>(n);
      });
  return sweep;
}

// Everything deterministic must match; wall_seconds may differ.
void expect_same_records(const std::vector<RunRecord>& a,
                         const std::vector<RunRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].protocol, b[i].protocol);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].error, b[i].error);
    EXPECT_EQ(a[i].sim_events, b[i].sim_events);
    EXPECT_DOUBLE_EQ(a[i].result.compliant_mean, b[i].result.compliant_mean);
    EXPECT_DOUBLE_EQ(a[i].result.uplink_utilization,
                     b[i].result.uplink_utilization);
    EXPECT_DOUBLE_EQ(a[i].result.end_time, b[i].result.end_time);
    EXPECT_EQ(a[i].extra, b[i].extra);
  }
}

std::string csv_bytes(const std::vector<RunRecord>& records) {
  std::ostringstream os;
  write_csv(os, records, /*include_timing=*/false);
  return os.str();
}

TEST(Runner, ParallelMatchesSerialByteForByte) {
  const auto specs = tiny_sweep().build();
  RunnerOptions serial{.jobs = 1, .quiet = true};
  RunnerOptions parallel{.jobs = 8, .quiet = true};
  const auto a = run_all(specs, serial);
  const auto b = run_all(specs, parallel);
  expect_same_records(a, b);
  EXPECT_EQ(csv_bytes(a), csv_bytes(b));
}

TEST(Runner, RecordsComeBackInSpecOrder) {
  const auto specs = tiny_sweep().build();
  const auto records = run_all(specs, {.jobs = 4, .quiet = true});
  ASSERT_EQ(records.size(), specs.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].index, i);
    EXPECT_EQ(records[i].protocol, specs[i].protocol);
    EXPECT_EQ(records[i].seed, specs[i].config.seed);
    EXPECT_EQ(records[i].label, specs[i].label);
  }
}

TEST(Runner, ExceptionIsolatesToFailedRecord) {
  auto specs = tiny_sweep().build();
  specs[1].protocol = "no-such-protocol";  // make_protocol throws
  const auto records = run_all(specs, {.jobs = 4, .quiet = true});
  ASSERT_EQ(records.size(), specs.size());
  EXPECT_FALSE(records[1].ok);
  EXPECT_FALSE(records[1].error.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(records[i].ok) << "run " << i << ": " << records[i].error;
  }
  // The failure must not perturb its neighbours.
  auto clean = tiny_sweep().build();
  clean.erase(clean.begin() + 1);
  const auto baseline = run_all(clean, {.jobs = 1, .quiet = true});
  EXPECT_DOUBLE_EQ(records[0].result.compliant_mean,
                   baseline[0].result.compliant_mean);
  EXPECT_DOUBLE_EQ(records[2].result.compliant_mean,
                   baseline[1].result.compliant_mean);
}

TEST(Runner, RunOneMatchesRunAll) {
  const auto specs = tiny_sweep().build();
  const auto all = run_all(specs, {.jobs = 2, .quiet = true});
  const auto one = run_one(specs[3], 3);
  EXPECT_EQ(one.index, all[3].index);
  EXPECT_DOUBLE_EQ(one.result.compliant_mean, all[3].result.compliant_mean);
  EXPECT_EQ(one.sim_events, all[3].sim_events);
}

TEST(Runner, SetupAndInspectHooksRun) {
  Sweep sweep(tiny_config());
  int setups = 0;
  sweep.protocol("tchain").seeds(2).for_each([&setups](RunSpec& s) {
    s.setup = [&setups](bt::Swarm&) { ++setups; };
    s.inspect = [](bt::Swarm& swarm, bt::Protocol& proto, RunRecord& rec) {
      rec.add_extra("end", swarm.end_time());
      rec.add_extra("named", proto.name().empty() ? 0.0 : 1.0);
    };
  });
  const auto records = run_all(sweep.build(), {.jobs = 1, .quiet = true});
  EXPECT_EQ(setups, 2);
  for (const auto& r : records) {
    EXPECT_GT(r.extra_value("end", -1.0), 0.0);
    EXPECT_EQ(r.extra_value("named", 0.0), 1.0);
  }
}

TEST(RunnerOptions, FlagsParseJobsAndQuiet) {
  {
    const char* argv[] = {"prog", "--jobs", "3", "--quiet"};
    util::Flags flags(4, const_cast<char**>(argv));
    const auto opts = runner_options_from_flags(flags);
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_TRUE(opts.quiet);
  }
  {
    const char* argv[] = {"prog"};
    util::Flags flags(1, const_cast<char**>(argv));
    const auto opts = runner_options_from_flags(flags);
    EXPECT_EQ(opts.jobs, 0u);  // 0 = hardware_concurrency
    EXPECT_FALSE(opts.quiet);
  }
}

TEST(RunnerOptions, EffectiveJobsClampsToSpecCount) {
  EXPECT_EQ(effective_jobs({.jobs = 8}, 3), 3u);
  EXPECT_EQ(effective_jobs({.jobs = 2}, 100), 2u);
  EXPECT_EQ(effective_jobs({.jobs = 1}, 5), 1u);
  EXPECT_GE(effective_jobs({.jobs = 0}, 1000), 1u);
}

}  // namespace
}  // namespace tc::exp
