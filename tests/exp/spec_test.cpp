// Sweep expansion: ordering, labels, tags, per-protocol piece sizes.
#include "src/exp/spec.h"

#include <gtest/gtest.h>

#include "src/protocols/registry.h"

namespace tc::exp {
namespace {

bt::SwarmConfig tiny_config() {
  bt::SwarmConfig cfg;
  cfg.leecher_count = 4;
  cfg.file_bytes = 256 * util::kKiB;
  return cfg;
}

TEST(Sweep, ExpandsAxesTimesProtocolsTimesSeeds) {
  Sweep sweep(tiny_config());
  sweep.protocols({"bittorrent", "tchain"})
      .seeds(3)
      .axis("swarm", {10, 20}, [](RunSpec& s, double n) {
        s.config.leecher_count = static_cast<std::size_t>(n);
      });
  EXPECT_EQ(sweep.run_count(), 2u * 2u * 3u);
  const auto specs = sweep.build();
  ASSERT_EQ(specs.size(), 12u);

  // Axis outermost, protocol next, seed innermost.
  EXPECT_EQ(specs[0].protocol, "bittorrent");
  EXPECT_EQ(specs[0].config.leecher_count, 10u);
  EXPECT_EQ(specs[0].config.seed, 1u);
  EXPECT_EQ(specs[1].config.seed, 2u);
  EXPECT_EQ(specs[2].config.seed, 3u);
  EXPECT_EQ(specs[3].protocol, "tchain");
  EXPECT_EQ(specs[3].config.leecher_count, 10u);
  EXPECT_EQ(specs[6].protocol, "bittorrent");
  EXPECT_EQ(specs[6].config.leecher_count, 20u);
  EXPECT_EQ(specs[11].protocol, "tchain");
  EXPECT_EQ(specs[11].config.leecher_count, 20u);
  EXPECT_EQ(specs[11].config.seed, 3u);
}

TEST(Sweep, MultipleAxesNestDeclarationOrder) {
  Sweep sweep(tiny_config());
  sweep.protocol("tchain")
      .axis("a", {1, 2}, [](RunSpec&, double) {})
      .axis("b", {7, 8, 9}, [](RunSpec&, double) {});
  const auto specs = sweep.build();
  ASSERT_EQ(specs.size(), 6u);
  // First axis outermost: a=1 covers the first three, b cycles fastest.
  EXPECT_EQ(specs[0].label, "a=1 b=7");
  EXPECT_EQ(specs[1].label, "a=1 b=8");
  EXPECT_EQ(specs[2].label, "a=1 b=9");
  EXPECT_EQ(specs[3].label, "a=2 b=7");
  ASSERT_NE(specs[0].tag("a"), nullptr);
  EXPECT_EQ(*specs[0].tag("a"), "1");
  ASSERT_NE(specs[5].tag("b"), nullptr);
  EXPECT_EQ(*specs[5].tag("b"), "9");
  EXPECT_EQ(specs[0].tag("missing"), nullptr);
}

TEST(Sweep, AppliesPerProtocolPieceSize) {
  Sweep sweep(tiny_config());
  sweep.protocols({"bittorrent", "tchain"});
  const auto specs = sweep.build();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].config.piece_bytes,
            protocols::make_protocol("bittorrent")->default_piece_bytes());
  EXPECT_EQ(specs[1].config.piece_bytes,
            protocols::make_protocol("tchain")->default_piece_bytes());
  EXPECT_NE(specs[0].config.piece_bytes, specs[1].config.piece_bytes);
}

TEST(Sweep, PinPieceBytesKeepsBaseValue) {
  auto cfg = tiny_config();
  cfg.piece_bytes = 32 * util::kKiB;
  Sweep sweep(cfg);
  sweep.protocols({"bittorrent", "tchain"}).pin_piece_bytes(true);
  for (const auto& s : sweep.build()) {
    EXPECT_EQ(s.config.piece_bytes, 32 * util::kKiB);
  }
}

TEST(Sweep, ForEachRunsAfterAxesAndSeesFinalConfig) {
  Sweep sweep(tiny_config());
  std::vector<std::size_t> seen;
  sweep.protocol("tchain")
      .axis("swarm", {5, 6}, [](RunSpec& s, double n) {
        s.config.leecher_count = static_cast<std::size_t>(n);
      })
      .for_each([&seen](RunSpec& s) { seen.push_back(s.config.leecher_count); });
  sweep.build();
  EXPECT_EQ(seen, (std::vector<std::size_t>{5, 6}));
}

TEST(Sweep, SeedsStartAtCustomFirst) {
  Sweep sweep(tiny_config());
  sweep.protocol("tchain").seeds(2, 10);
  const auto specs = sweep.build();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].config.seed, 10u);
  EXPECT_EQ(specs[1].config.seed, 11u);
}

TEST(FormatAxisValue, IntegersHaveNoDecimalPoint) {
  EXPECT_EQ(format_axis_value(200), "200");
  EXPECT_EQ(format_axis_value(0.25), "0.25");
  EXPECT_EQ(format_axis_value(0), "0");
}

}  // namespace
}  // namespace tc::exp
