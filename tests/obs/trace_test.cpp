// EventRing bounds/wraparound and the Trace facade's kind-mask + counter
// bookkeeping.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

namespace tc::obs {
namespace {

TraceEvent chain_start(std::uint64_t chain, double t = 0.0) {
  return {.t = t, .kind = EventKind::kChainStart, .chain = chain};
}

TEST(EventRing, RecordsUpToCapacityWithoutDropping) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) ring.push(chain_start(i));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.recorded(), 8u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(events[i].chain, i);
}

TEST(EventRing, WraparoundKeepsNewestAndCountsDropped) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(chain_start(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Snapshot is oldest -> newest of the survivors: events 6..9.
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].chain, 6 + i);
}

TEST(EventRing, ZeroCapacityClampsToOne) {
  EventRing ring(0);
  ring.push(chain_start(1));
  ring.push(chain_start(2));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.snapshot().at(0).chain, 2u);
}

TEST(Trace, KindMaskFiltersBothRingAndCounters) {
  TraceConfig cfg;
  cfg.kind_mask = kind_bit(EventKind::kChainStart);
  Trace trace(cfg);
  trace.emit(chain_start(1));
  trace.emit({.kind = EventKind::kTxOpen, .ref = 7});  // masked out
  EXPECT_EQ(trace.count(EventKind::kChainStart), 1u);
  EXPECT_EQ(trace.count(EventKind::kTxOpen), 0u);
  EXPECT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.ring().recorded(), 1u);
}

TEST(Trace, CountSurvivesRingWraparound) {
  TraceConfig cfg;
  cfg.ring_capacity = 2;
  Trace trace(cfg);
  for (std::uint64_t i = 0; i < 5; ++i) trace.emit(chain_start(i));
  EXPECT_EQ(trace.count(EventKind::kChainStart), 5u);  // mask-accepted total
  EXPECT_EQ(trace.events().size(), 2u);                // ring kept the tail
  EXPECT_EQ(trace.ring().dropped(), 3u);
}

TEST(Trace, SnapshotExposesEventCountsAndRingBookkeeping) {
  Trace trace;
  trace.emit(chain_start(1));
  trace.emit(chain_start(2));
  trace.registry().counter("tx.opened").inc(3);
  const auto snap = trace.snapshot();
  auto find = [&](const std::string& key) -> const double* {
    for (const auto& [k, v] : snap) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("events.chain-start"), nullptr);
  EXPECT_EQ(*find("events.chain-start"), 2.0);
  ASSERT_NE(find("events.recorded"), nullptr);
  EXPECT_EQ(*find("events.recorded"), 2.0);
  ASSERT_NE(find("events.dropped"), nullptr);
  EXPECT_EQ(*find("events.dropped"), 0.0);
  ASSERT_NE(find("tx.opened"), nullptr);
  EXPECT_EQ(*find("tx.opened"), 3.0);
}

TEST(Trace, EventKindNamesAreUniqueAndKebabCase) {
  std::vector<std::string> names;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const std::string n = event_kind_name(static_cast<EventKind>(k));
    EXPECT_NE(n, "?");
    for (char c : n) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '-') << n;
    }
    for (const auto& prev : names) EXPECT_NE(n, prev);
    names.push_back(n);
  }
}

}  // namespace
}  // namespace tc::obs
