// Exporter output shape: the Chrome trace must be structurally valid JSON
// with per-peer tracks, paired piece flows as duration slices, and
// non-decreasing timestamps; the CSV must be one row per event.
#include "src/obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace tc::obs {
namespace {

// Minimal structural JSON check: balanced {} / [] outside string literals,
// nothing after the top-level value closes.
bool structurally_valid_json(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false, closed = false;
  for (char c : s) {
    if (closed && !std::isspace(static_cast<unsigned char>(c))) return false;
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        if (depth == 0) closed = true;
        break;
      default: break;
    }
  }
  return depth == 0 && closed && !in_string;
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> ev;
  // A completed piece flow 3 -> 5 (flow ref 41)...
  ev.push_back({.t = 1.0, .kind = EventKind::kPieceSent, .piece = 9, .a = 3,
                .b = 5, .ref = 41});
  // ...an instant in between...
  ev.push_back({.t = 1.5, .kind = EventKind::kChainStart, .aux = 1, .a = 3,
                .chain = 8});
  ev.push_back({.t = 2.0, .kind = EventKind::kPieceDelivered, .piece = 9,
                .a = 3, .b = 5, .ref = 41});
  // ...an unmatched send (receiver vanished; no end event in the stream)...
  ev.push_back({.t = 3.0, .kind = EventKind::kPieceSent, .piece = 2, .a = 5,
                .b = 6, .ref = 42});
  // ...and a chain break carrying a cause string.
  ev.push_back({.t = 4.0, .kind = EventKind::kChainBreak,
                .aux = static_cast<std::uint8_t>(ChainBreakCause::kWatchdog),
                .chain = 8});
  return ev;
}

TEST(ChromeTrace, IsStructurallyValidJson) {
  std::ostringstream os;
  write_chrome_trace(os, sample_events());
  const std::string json = os.str();
  EXPECT_TRUE(structurally_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(ChromeTrace, EmptyStreamStillValid) {
  std::ostringstream os;
  write_chrome_trace(os, {});
  EXPECT_TRUE(structurally_valid_json(os.str())) << os.str();
}

TEST(ChromeTrace, NamesOneTrackPerPeer) {
  std::ostringstream os;
  write_chrome_trace(os, sample_events());
  const std::string json = os.str();
  // Peers 3 and 5 both appear as event subjects -> two thread_name records.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"thread_name\""), 2u);
  EXPECT_NE(json.find("\"name\":\"peer 3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"peer 5\""), std::string::npos);
}

TEST(ChromeTrace, PairedFlowBecomesDurationSliceUnpairedStaysInstant) {
  std::ostringstream os;
  write_chrome_trace(os, sample_events());
  const std::string json = os.str();
  // Exactly one complete slice (the matched flow), with a 1 s = 1e6 us dur;
  // its delivered end-event is folded in, not re-emitted.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 1u);
  EXPECT_NE(json.find("\"dur\":1000000.000000"), std::string::npos);
  EXPECT_EQ(json.find("piece-delivered"), std::string::npos);
  // The unmatched send and the chain events render as instants.
  EXPECT_GE(count_occurrences(json, "\"ph\":\"i\""), 3u);
  EXPECT_NE(json.find("\"cause\":\"watchdog\""), std::string::npos);
}

TEST(ChromeTrace, TimestampsAreNonDecreasing) {
  std::ostringstream os;
  write_chrome_trace(os, sample_events());
  const std::string json = os.str();
  double prev = -1.0;
  for (auto pos = json.find("\"ts\":"); pos != std::string::npos;
       pos = json.find("\"ts\":", pos + 5)) {
    const double ts = std::stod(json.substr(pos + 5));
    EXPECT_GE(ts, prev);
    prev = ts;
  }
  EXPECT_GE(prev, 0.0);  // at least one event was written
}

TEST(EventCsv, OneHeaderOneRowPerEvent) {
  const auto events = sample_events();
  std::ostringstream os;
  write_event_csv(os, events);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "t,kind,a,b,c,piece,ref,chain,aux");
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    EXPECT_EQ(count_occurrences(line, ","), 8u) << line;
  }
  EXPECT_EQ(rows, events.size());
}

TEST(EventCsv, SentinelFieldsAreEmptyCells) {
  std::vector<TraceEvent> ev;
  ev.push_back({.t = 2.5, .kind = EventKind::kCensusTick});
  std::ostringstream os;
  write_event_csv(os, ev);
  std::istringstream is(os.str());
  std::string header, row;
  std::getline(is, header);
  std::getline(is, row);
  EXPECT_EQ(row, "2.500000,census-tick,,,,,0,0,0");
}

}  // namespace
}  // namespace tc::obs
