// The zero-overhead contract of the obs layer, as executable checks:
//  * an obs-disabled run serializes byte-identically across repetitions
//    (no hidden nondeterminism introduced by the subsystem), and
//  * enabling tracing does not perturb the simulation — same event count,
//    same completion times, same end time, bit for bit.
#include <gtest/gtest.h>

#include <sstream>

#include "src/exp/runner.h"

namespace tc::exp {
namespace {

util::Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return util::Flags(static_cast<int>(argv.size()), argv.data());
}

RunSpec small_spec() {
  RunSpec spec;
  spec.protocol = "tchain";
  spec.config.leecher_count = 12;
  spec.config.file_bytes = util::kMiB;
  spec.config.piece_bytes = 64 * util::kKiB;
  spec.config.seed = 5;
  spec.config.max_sim_time = 20'000.0;
  return spec;
}

std::string csv_of(const RunRecord& rec) {
  std::ostringstream os;
  write_csv(os, {rec}, /*include_timing=*/false);
  return os.str();
}

TEST(ZeroOverhead, DisabledRunsAreByteIdentical) {
  const auto spec = small_spec();
  const RunRecord a = run_one(spec), b = run_one(spec);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(csv_of(a), csv_of(b));
  EXPECT_EQ(a.sim_events, b.sim_events);
  // No obs residue in an untraced record.
  for (const auto& [key, value] : a.extra) {
    (void)value;
    EXPECT_NE(key.rfind("obs.", 0), 0u) << key;
  }
}

TEST(ZeroOverhead, TracingDoesNotPerturbTheRun) {
  auto plain = small_spec();
  auto traced = small_spec();
  traced.trace.enabled = true;
  traced.trace.kind_mask = obs::kAllKinds;

  const RunRecord p = run_one(plain), t = run_one(traced);
  ASSERT_TRUE(p.ok);
  ASSERT_TRUE(t.ok);
  // The simulation itself is bit-identical: same event schedule, same
  // results. Tracing only observed it.
  EXPECT_EQ(p.sim_events, t.sim_events);
  EXPECT_EQ(p.result.end_time, t.result.end_time);
  EXPECT_EQ(p.result.compliant_mean, t.result.compliant_mean);
  EXPECT_EQ(p.result.compliant_finished, t.result.compliant_finished);
  EXPECT_EQ(p.result.uplink_utilization, t.result.uplink_utilization);

  // And the traced record did capture something.
  bool saw_obs = false, saw_recorded = false;
  for (const auto& [key, value] : t.extra) {
    if (key.rfind("obs.", 0) == 0) saw_obs = true;
    if (key == "obs.events.recorded") saw_recorded = value > 0;
  }
  EXPECT_TRUE(saw_obs);
  EXPECT_TRUE(saw_recorded);
}

TEST(ZeroOverhead, TraceFlagsLeaveUntouchedSpecsAlone) {
  std::vector<RunSpec> specs = {small_spec()};
  const auto flags = make_flags({});
  apply_trace_flags(specs, flags);  // no --trace flags: must be a no-op
  EXPECT_FALSE(specs[0].trace.enabled);
  EXPECT_TRUE(specs[0].trace.export_json.empty());
}

TEST(ZeroOverhead, TraceFlagsEnableAndTargetExports) {
  std::vector<RunSpec> specs = {small_spec(), small_spec()};
  specs[1].trace.enabled = true;  // pre-enabled spec keeps its mask
  specs[1].trace.kind_mask = obs::kChainKinds;
  const auto flags = make_flags({"--trace", "out/tr", "--trace-limit", "512"});
  apply_trace_flags(specs, flags);
  EXPECT_TRUE(specs[0].trace.enabled);
  EXPECT_EQ(specs[0].trace.kind_mask, obs::kAllKinds);
  EXPECT_EQ(specs[0].trace.export_json, "out/tr.run0.json");
  EXPECT_EQ(specs[1].trace.kind_mask, obs::kChainKinds);
  EXPECT_EQ(specs[1].trace.export_json, "out/tr.run1.json");
  EXPECT_EQ(specs[0].trace.ring_capacity, 512u);
  EXPECT_TRUE(specs[0].trace.export_csv.empty());
}

}  // namespace
}  // namespace tc::exp
