// ChainView reconstruction: synthetic event streams with known answers,
// lossy-ring orphan handling, and the cross-check that a reconstruction
// from a real T-Chain run matches core::ChainRegistry's live bookkeeping
// chain by chain.
#include "src/obs/chain_view.h"

#include <gtest/gtest.h>

#include "src/bt/swarm.h"
#include "src/protocols/tchain.h"

namespace tc::obs {
namespace {

TraceEvent start(std::uint64_t chain, bool by_seeder, double t) {
  return {.t = t,
          .kind = EventKind::kChainStart,
          .aux = static_cast<std::uint8_t>(by_seeder ? 1 : 0),
          .chain = chain};
}
TraceEvent extend(std::uint64_t chain, std::uint64_t tx, double t) {
  return {.t = t, .kind = EventKind::kChainExtend, .ref = tx, .chain = chain};
}
TraceEvent brk(std::uint64_t chain, ChainBreakCause cause, double t) {
  return {.t = t,
          .kind = EventKind::kChainBreak,
          .aux = static_cast<std::uint8_t>(cause),
          .chain = chain};
}
TraceEvent tick(double t) { return {.t = t, .kind = EventKind::kCensusTick}; }

TEST(ChainView, ReplaysSyntheticStreamExactly) {
  std::vector<TraceEvent> ev;
  ev.push_back(start(1, true, 0.0));
  ev.push_back(extend(1, 101, 1.0));
  ev.push_back(extend(1, 102, 2.0));
  ev.push_back(tick(5.0));  // chain 1 active
  ev.push_back(start(2, false, 6.0));
  ev.push_back(brk(1, ChainBreakCause::kCompleted, 7.0));
  ev.push_back(tick(10.0));  // chain 2 active
  ev.push_back(brk(2, ChainBreakCause::kWatchdog, 11.0));
  ev.push_back(tick(15.0));  // none active

  const auto view = ChainView::reconstruct(ev);
  EXPECT_EQ(view.total_created(), 2u);
  EXPECT_EQ(view.created_by_seeder(), 1u);
  EXPECT_EQ(view.created_by_leechers(), 1u);
  EXPECT_DOUBLE_EQ(view.opportunistic_fraction(), 0.5);
  EXPECT_EQ(view.active_at_end(), 0u);
  EXPECT_EQ(view.orphan_events(), 0u);

  ASSERT_NE(view.chain(1), nullptr);
  EXPECT_EQ(view.chain(1)->length, 2u);
  EXPECT_TRUE(view.chain(1)->by_seeder);
  EXPECT_DOUBLE_EQ(view.chain(1)->created, 0.0);
  EXPECT_DOUBLE_EQ(view.chain(1)->terminated, 7.0);
  EXPECT_EQ(view.chain(1)->cause, ChainBreakCause::kCompleted);
  ASSERT_NE(view.chain(2), nullptr);
  EXPECT_EQ(view.chain(2)->length, 0u);

  // mean over terminated chains: (2 + 0) / 2.
  EXPECT_DOUBLE_EQ(view.mean_terminated_length(), 1.0);
  const auto lengths = view.length_histogram();
  EXPECT_EQ(lengths.at(0), 1u);
  EXPECT_EQ(lengths.at(2), 1u);

  const auto causes = view.break_causes();
  EXPECT_EQ(causes.at(ChainBreakCause::kCompleted), 1u);
  EXPECT_EQ(causes.at(ChainBreakCause::kWatchdog), 1u);
  EXPECT_EQ(view.fault_breaks(), 1u);  // watchdog counts, completed doesn't

  ASSERT_EQ(view.census().size(), 3u);
  EXPECT_DOUBLE_EQ(view.census()[0].t, 5.0);
  EXPECT_EQ(view.census()[0].active_chains, 1u);
  EXPECT_EQ(view.census()[0].cumulative_seeder, 1u);
  EXPECT_EQ(view.census()[0].cumulative_leecher, 0u);
  EXPECT_EQ(view.census()[1].active_chains, 1u);
  EXPECT_EQ(view.census()[1].cumulative_leecher, 1u);
  EXPECT_EQ(view.census()[2].active_chains, 0u);
}

TEST(ChainView, TxOpenEventsSplitDirectIndirectTerminal) {
  std::vector<TraceEvent> ev;
  ev.push_back(start(1, true, 0.0));
  // Direct reciprocity: payee == donor.
  ev.push_back({.t = 1.0, .kind = EventKind::kTxOpen, .a = 5, .b = 6, .c = 5,
                .ref = 1, .chain = 1});
  // Indirect: distinct payee.
  ev.push_back({.t = 2.0, .kind = EventKind::kTxOpen, .a = 5, .b = 6, .c = 7,
                .ref = 2, .chain = 1});
  // Terminal: no payee.
  ev.push_back({.t = 3.0, .kind = EventKind::kTxOpen, .a = 5, .b = 6,
                .c = net::kNoPeer, .ref = 3, .chain = 1});
  const auto view = ChainView::reconstruct(ev);
  EXPECT_EQ(view.direct_txs(), 1u);
  EXPECT_EQ(view.indirect_txs(), 1u);
  EXPECT_EQ(view.terminal_txs(), 1u);
  EXPECT_DOUBLE_EQ(view.direct_fraction(), 0.5);
}

TEST(ChainView, LossyStreamYieldsOrphansNotCorruption) {
  // The ring dropped chain 1's start: its extend/break must not fabricate
  // a chain, only bump the orphan counter.
  std::vector<TraceEvent> ev;
  ev.push_back(extend(1, 101, 1.0));
  ev.push_back(brk(1, ChainBreakCause::kCompleted, 2.0));
  ev.push_back(start(2, false, 3.0));
  const auto view = ChainView::reconstruct(ev);
  EXPECT_EQ(view.orphan_events(), 2u);
  EXPECT_EQ(view.total_created(), 1u);
  EXPECT_EQ(view.chain(1), nullptr);
  EXPECT_EQ(view.active_at_end(), 1u);
}

TEST(ChainView, DoubleBreakIsIdempotent) {
  std::vector<TraceEvent> ev;
  ev.push_back(start(1, true, 0.0));
  ev.push_back(brk(1, ChainBreakCause::kCompleted, 1.0));
  ev.push_back(brk(1, ChainBreakCause::kWatchdog, 2.0));
  const auto view = ChainView::reconstruct(ev);
  EXPECT_EQ(view.active_at_end(), 0u);
  EXPECT_DOUBLE_EQ(view.chain(1)->terminated, 1.0);
  EXPECT_EQ(view.chain(1)->cause, ChainBreakCause::kCompleted);
}

// The satellite cross-check: reconstructing from a real run's trace must
// reproduce the live ChainRegistry — same totals, and the same per-chain
// creation/termination times and lengths for every chain id.
TEST(ChainView, MatchesLiveChainRegistryOnRealRun) {
  protocols::TChainProtocol proto;
  bt::SwarmConfig cfg;
  cfg.leecher_count = 16;
  cfg.file_bytes = util::kMiB;
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.seed = 7;
  cfg.max_sim_time = 20'000.0;
  bt::Swarm swarm(cfg, proto);
  TraceConfig tc;
  tc.kind_mask = kChainAnalysisKinds;
  swarm.enable_obs(tc);
  swarm.run();

  ASSERT_EQ(swarm.obs()->ring().dropped(), 0u) << "ring sized too small";
  const auto view = ChainView::reconstruct(swarm.obs()->events());
  const auto& reg = proto.chains();

  EXPECT_GT(view.total_created(), 0u);
  EXPECT_EQ(view.total_created(), reg.total_created());
  EXPECT_EQ(view.created_by_seeder(), reg.created_by_seeder());
  EXPECT_EQ(view.created_by_leechers(), reg.created_by_leechers());
  EXPECT_EQ(view.active_at_end(), reg.active_count());
  EXPECT_DOUBLE_EQ(view.opportunistic_fraction(), reg.opportunistic_fraction());
  EXPECT_NEAR(view.mean_terminated_length(), reg.mean_terminated_length(),
              1e-12);

  for (const auto& rec : view.chains()) {
    const auto* info = reg.info(rec.id);
    ASSERT_NE(info, nullptr) << "chain " << rec.id;
    EXPECT_EQ(rec.initiator, info->initiator);
    EXPECT_EQ(rec.by_seeder, info->by_seeder);
    EXPECT_EQ(rec.length, info->length);
    EXPECT_DOUBLE_EQ(rec.created, info->created);
    EXPECT_DOUBLE_EQ(rec.terminated, info->terminated);
  }
  // Every encrypted transaction is direct or indirect; terminal uploads are
  // neither. The split must cover all opened transactions.
  EXPECT_EQ(view.direct_txs() + view.indirect_txs() + view.terminal_txs(),
            swarm.obs()->count(EventKind::kTxOpen));
}

}  // namespace
}  // namespace tc::obs
