// Counter/gauge semantics, log-histogram percentile accuracy against the
// exact util::Distribution, and snapshot determinism.
#include "src/obs/registry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace tc::obs {
namespace {

TEST(Counter, IncrementsByDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(LogHistogram, EmptyStateIsAllZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LogHistogram, TracksExactMeanMinMax) {
  LogHistogram h;
  for (double v : {0.5, 2.0, 8.0, 32.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.5 / 4);  // sum is exact, not bucketed
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 32.0);
}

// The documented accuracy contract: percentile() lands within one bucket's
// relative width — 10^(1/(2*16)) - 1 ≈ 7.5% at the default resolution — of
// the exact order-statistic percentile.
TEST(LogHistogram, PercentilesMatchExactDistributionWithinBucketWidth) {
  LogHistogram h;
  util::Distribution exact;
  util::Rng rng(99);
  for (int i = 0; i < 20'000; ++i) {
    // Log-uniform over [1e-2, 1e4]: exercises many decades of buckets.
    const double v = std::pow(10.0, -2.0 + 6.0 * rng.uniform());
    h.add(v);
    exact.add(v);
  }
  const double tol = std::pow(10.0, 1.0 / 32.0) - 1.0;  // half-bucket bound
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double want = exact.percentile(p);
    const double got = h.percentile(p);
    EXPECT_NEAR(got, want, 2 * tol * want) << "p=" << p;
  }
}

TEST(LogHistogram, PercentileClampsToObservedRange) {
  LogHistogram h;
  h.add(3.0);
  h.add(5.0);
  EXPECT_GE(h.percentile(0.0), 3.0);
  EXPECT_LE(h.percentile(1.0), 5.0);
}

TEST(LogHistogram, UnderflowAndOverflowAreCounted) {
  LogHistogram h(1e-2, 1e2, 8);
  h.add(0.0);    // non-positive -> underflow bucket
  h.add(-1.0);   // likewise
  h.add(1e9);    // overflow bucket
  h.add(1.0);    // in range
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // Percentiles stay inside the observed range even for edge buckets.
  EXPECT_LE(h.percentile(0.999), 1e9);
}

TEST(Registry, LookupCreatesOnceAndReferencesAreStable) {
  Registry r;
  Counter& a = r.counter("x");
  a.inc();
  // Creating unrelated metrics must not invalidate `a` (node-based map).
  for (int i = 0; i < 100; ++i) r.counter("c" + std::to_string(i));
  r.counter("x").inc();
  EXPECT_EQ(a.value(), 2u);
}

TEST(Registry, SnapshotIsNameSortedAndExpandsHistograms) {
  Registry r;
  r.counter("b.count").inc(7);
  r.gauge("a.gauge").set(1.5);
  auto& h = r.histogram("lat");
  for (double v : {1.0, 2.0, 4.0}) h.add(v);

  const auto snap = r.snapshot();
  std::vector<std::string> keys;
  for (const auto& [k, v] : snap) keys.push_back(k);
  // Counters, then gauges, then histogram expansions; sorted within kind.
  const std::vector<std::string> want = {
      "b.count", "a.gauge",  "lat.count", "lat.mean",
      "lat.p50", "lat.p90",  "lat.p99",   "lat.max"};
  EXPECT_EQ(keys, want);
  EXPECT_EQ(snap[0].second, 7.0);
  EXPECT_EQ(snap[2].second, 3.0);          // lat.count
  EXPECT_DOUBLE_EQ(snap[3].second, 7.0 / 3);  // lat.mean is exact
}

TEST(Registry, EmptyReflectsContents) {
  Registry r;
  EXPECT_TRUE(r.empty());
  r.gauge("g");
  EXPECT_FALSE(r.empty());
}

}  // namespace
}  // namespace tc::obs
