// Table-driven adversarial coverage of the wire codec at the frame layer:
// truncated frames, a length prefix past kMaxFrame, unknown message tags,
// and degenerate-but-legal payloads (zero-length ciphertext). The decoder
// and the framed receive path must reject malformed input with an
// exception — never crash, never over-allocate, never hang.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "src/net/message.h"
#include "src/net/tcp.h"

namespace tc::net {
namespace {

util::Bytes frame_bytes(std::uint32_t len, const util::Bytes& body) {
  util::Bytes wire;
  wire.push_back(static_cast<std::uint8_t>(len >> 24));
  wire.push_back(static_cast<std::uint8_t>(len >> 16));
  wire.push_back(static_cast<std::uint8_t>(len >> 8));
  wire.push_back(static_cast<std::uint8_t>(len));
  wire.insert(wire.end(), body.begin(), body.end());
  return wire;
}

struct DecodeCase {
  const char* name;
  util::Bytes wire;  // raw payload handed to decode_message
};

TEST(CodecFuzz, MalformedPayloadsAlwaysThrow) {
  const util::Bytes valid = encode_message(Message{HandshakeMsg{7, "swarm"}});
  const util::Bytes enc = encode_message(Message{[] {
    EncryptedPieceMsg m;
    m.tx = 9;
    m.chain = 3;
    m.donor = 1;
    m.requestor = 2;
    m.payee = 4;
    m.piece = 5;
    m.ciphertext = {0xaa, 0xbb, 0xcc};
    return m;
  }()});

  std::vector<DecodeCase> cases;
  cases.push_back({"empty payload", {}});
  cases.push_back({"unknown tag 0", {0x00}});
  cases.push_back({"unknown tag 12", {12}});
  cases.push_back({"unknown tag 255", {0xff, 0x01, 0x02}});
  // Every proper prefix of a valid handshake must be rejected.
  for (std::size_t cut = 1; cut < valid.size(); ++cut) {
    cases.push_back(
        {"truncated handshake",
         util::Bytes(valid.begin(),
                     valid.begin() + static_cast<std::ptrdiff_t>(cut))});
  }
  // And of an encrypted-piece message (nested byte vectors).
  for (std::size_t cut = 1; cut < enc.size(); ++cut) {
    cases.push_back(
        {"truncated encrypted piece",
         util::Bytes(enc.begin(),
                     enc.begin() + static_cast<std::ptrdiff_t>(cut))});
  }

  for (const DecodeCase& c : cases) {
    EXPECT_THROW((void)decode_message(c.wire), std::exception)
        << c.name << " (" << c.wire.size() << " bytes)";
  }
}

TEST(CodecFuzz, ZeroLengthEncryptedPieceRoundTrips) {
  // A zero-length ciphertext is degenerate but well-formed; the codec must
  // carry it, not reject or misparse it.
  EncryptedPieceMsg m;
  m.tx = 1;
  m.donor = 2;
  m.requestor = 3;
  m.payee = 4;
  m.piece = 0;
  m.ciphertext = {};
  const Message back = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(std::holds_alternative<EncryptedPieceMsg>(back));
  EXPECT_EQ(std::get<EncryptedPieceMsg>(back), m);
}

struct FrameCase {
  const char* name;
  util::Bytes wire;  // bytes written to the socket before close
};

TEST(CodecFuzz, MalformedFramesRejectedByRecv) {
  const util::Bytes body = encode_message(Message{HaveMsg{3}});
  std::vector<FrameCase> cases;
  // Length prefix just past the cap: must throw before allocating 4 GiB.
  cases.push_back({"oversized length prefix",
                   frame_bytes(kMaxFrame + 1, {})});
  cases.push_back({"max length prefix, no body",
                   frame_bytes(0xffffffffu, {})});
  // Frame announces more bytes than ever arrive (peer dies mid-frame).
  cases.push_back({"truncated body",
                   frame_bytes(static_cast<std::uint32_t>(body.size() + 10),
                               body)});

  for (const FrameCase& c : cases) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameSocket reader(fds[0]);
    ASSERT_EQ(::write(fds[1], c.wire.data(), c.wire.size()),
              static_cast<ssize_t>(c.wire.size()));
    ::close(fds[1]);
    EXPECT_THROW((void)reader.recv_frame(), std::exception) << c.name;
  }
}

TEST(CodecFuzz, EofMidPrefixThrowsButFrameBoundaryEofIsOrderly) {
  // A peer dying with 2 of 4 prefix bytes written is a truncation error...
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameSocket reader(fds[0]);
    const util::Bytes partial = {0x00, 0x00};
    ASSERT_EQ(::write(fds[1], partial.data(), partial.size()), 2);
    ::close(fds[1]);
    EXPECT_THROW((void)reader.recv_frame(), std::exception);
  }
  // ...while closing exactly between frames is an orderly end of stream.
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameSocket reader(fds[0]);
    ::close(fds[1]);
    EXPECT_EQ(reader.recv_frame(), std::nullopt);
  }
}

TEST(CodecFuzz, FrameAtExactCapIsNotRejectedForSize) {
  // kMaxFrame itself is legal framing: recv must attempt the read (and
  // then fail on truncation, not on the size check).
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameSocket reader(fds[0]);
  const util::Bytes wire = frame_bytes(kMaxFrame, {0x01});
  ASSERT_EQ(::write(fds[1], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  ::close(fds[1]);
  try {
    (void)reader.recv_frame();
    FAIL() << "truncated max-size frame must throw";
  } catch (const std::exception& e) {
    // The failure must be about the stream ending, not the frame size.
    EXPECT_EQ(std::string(e.what()).find("oversized"), std::string::npos);
  }
}

}  // namespace
}  // namespace tc::net
