// Robustness of the wire codec against corrupted and random input: the
// decoder must throw (never crash, never read out of bounds, never loop).
#include <gtest/gtest.h>

#include "src/net/message.h"
#include "src/util/rng.h"

namespace tc::net {
namespace {

TEST(MessageFuzz, RandomBytesNeverCrash) {
  util::Rng rng(0xf22);
  int decoded = 0, rejected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const std::size_t len = rng.index(200);
    util::Bytes junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      (void)decode_message(junk);
      ++decoded;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // Virtually everything random must be rejected.
  EXPECT_GT(rejected, 4900);
  (void)decoded;
}

TEST(MessageFuzz, TruncationsOfValidMessagesAlwaysThrow) {
  EncryptedPieceMsg m;
  m.tx = 77;
  m.chain = 3;
  m.donor = 1;
  m.requestor = 2;
  m.payee = 3;
  m.piece = 4;
  m.ciphertext = util::Bytes(300, 0xee);
  const auto wire = encode_message(Message{m});
  for (std::size_t cut = 1; cut < wire.size(); cut += 7) {
    util::Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)decode_message(prefix), std::exception) << cut;
  }
}

TEST(MessageFuzz, SingleByteCorruptionIsHandled) {
  // Flipping bytes may still decode (payload bytes) but must never crash;
  // flipping the tag or the length prefix must throw.
  ReceiptMsg m;
  m.reciprocated_tx = 1;
  m.payee = 2;
  m.requestor = 3;
  m.piece = 4;
  const auto wire = encode_message(Message{m});
  for (std::size_t i = 0; i < wire.size(); ++i) {
    util::Bytes mutated = wire;
    mutated[i] ^= 0xff;
    try {
      const Message out = decode_message(mutated);
      // If it decoded, it must still be a receipt (tag byte untouched) or
      // a different valid type.
      (void)out;
    } catch (const std::exception&) {
      // fine
    }
  }
  SUCCEED();
}

TEST(MessageFuzz, LengthPrefixCannotOverAllocate) {
  // A blob length far beyond the buffer must be rejected before any
  // allocation of that size is attempted.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kKeyRelease));
  w.u64(1);   // tx
  w.u32(2);   // piece
  w.u32(0xffffffffu);  // blob length: 4 GiB claimed, zero present
  EXPECT_THROW((void)decode_message(w.data()), std::out_of_range);
}

}  // namespace
}  // namespace tc::net
