#include "src/net/tcp.h"

#include <gtest/gtest.h>

#include <thread>

namespace tc::net {
namespace {

TEST(Tcp, FrameEchoOverLoopback) {
  Listener listener(0);
  const std::uint16_t port = listener.port();
  ASSERT_GT(port, 0);

  std::thread server([&] {
    FrameSocket conn = listener.accept();
    while (auto frame = conn.recv_frame()) {
      conn.send_frame(*frame);  // echo
    }
  });

  FrameSocket client = FrameSocket::connect_to("127.0.0.1", port);
  for (std::size_t len : {0u, 1u, 100u, 70000u}) {
    util::Bytes msg(len);
    for (std::size_t i = 0; i < len; ++i)
      msg[i] = static_cast<std::uint8_t>(i);
    client.send_frame(msg);
    const auto echoed = client.recv_frame();
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(*echoed, msg);
  }
  client.close();
  server.join();
}

TEST(Tcp, TypedMessagesOverLoopback) {
  Listener listener(0);
  std::thread server([&] {
    FrameSocket conn = listener.accept();
    auto msg = conn.recv_message();
    ASSERT_TRUE(msg.has_value());
    // Bounce back a receipt for whatever encrypted piece arrived.
    const auto& ep = std::get<EncryptedPieceMsg>(*msg);
    ReceiptMsg r;
    r.reciprocated_tx = ep.tx;
    r.payee = ep.payee;
    r.requestor = ep.donor;
    r.piece = ep.piece;
    conn.send_message(Message{r});
  });

  FrameSocket client = FrameSocket::connect_to("127.0.0.1", listener.port());
  EncryptedPieceMsg ep;
  ep.tx = 31337;
  ep.donor = 1;
  ep.requestor = 2;
  ep.payee = 3;
  ep.piece = 4;
  ep.ciphertext = util::Bytes(256, 0xcd);
  client.send_message(Message{ep});
  const auto reply = client.recv_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<ReceiptMsg>(*reply).reciprocated_tx, 31337u);
  client.close();
  server.join();
}

TEST(Tcp, CleanEofReturnsNullopt) {
  Listener listener(0);
  std::thread server([&] {
    FrameSocket conn = listener.accept();
    conn.close();
  });
  FrameSocket client = FrameSocket::connect_to("127.0.0.1", listener.port());
  EXPECT_FALSE(client.recv_frame().has_value());
  server.join();
}

TEST(Tcp, ConnectToBadAddressThrows) {
  EXPECT_THROW(FrameSocket::connect_to("not-an-ip", 1), std::runtime_error);
}

TEST(Tcp, RecvTimeoutThrowsInsteadOfHanging) {
  Listener listener(0);
  std::thread server([&] {
    FrameSocket conn = listener.accept();
    // Accept, then stay silent: the client must not block forever.
    conn.recv_frame();  // parks until the client gives up and closes
  });
  FrameSocket client = FrameSocket::connect_to("127.0.0.1", listener.port());
  client.set_recv_timeout(0.2);
  try {
    client.recv_frame();
    FAIL() << "recv_frame returned despite a silent peer";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  client.close();
  server.join();
}

TEST(Tcp, SendAfterPeerClosedThrowsInsteadOfSigpipe) {
  Listener listener(0);
  std::thread server([&] { listener.accept().close(); });
  FrameSocket client = FrameSocket::connect_to("127.0.0.1", listener.port());
  server.join();
  // The first sends may land in the kernel buffer; once the RST is
  // processed the write fails. Without MSG_NOSIGNAL this would raise
  // SIGPIPE and kill the test binary instead of throwing.
  const util::Bytes chunk(64 * 1024, 0xee);
  EXPECT_THROW(
      {
        for (int i = 0; i < 200; ++i) client.send_frame(chunk);
      },
      std::runtime_error);
}

TEST(Tcp, ConnectWithTimeoutStillWorksAndSendsBlockNormallyAfter) {
  // A bounded handshake must not leave SO_SNDTIMEO armed: large frames
  // after connect would otherwise fail spuriously once the socket
  // buffer backpressures past the handshake deadline.
  Listener listener(0);
  std::thread server([&] {
    FrameSocket conn = listener.accept();
    std::size_t frames = 0;
    while (conn.recv_frame()) ++frames;
    EXPECT_EQ(frames, 50u);
  });
  FrameSocket client = FrameSocket::connect_to("127.0.0.1", listener.port(),
                                               /*timeout_seconds=*/0.05);
  ASSERT_TRUE(client.valid());
  const util::Bytes chunk(256 * 1024, 0x5a);
  for (int i = 0; i < 50; ++i) client.send_frame(chunk);
  client.close();
  server.join();
}

TEST(Tcp, MoveSemantics) {
  Listener listener(0);
  std::thread server([&] { FrameSocket conn = listener.accept(); });
  FrameSocket a = FrameSocket::connect_to("127.0.0.1", listener.port());
  EXPECT_TRUE(a.valid());
  FrameSocket b = std::move(a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  server.join();
}

}  // namespace
}  // namespace tc::net
