#include "src/net/message.h"

#include <gtest/gtest.h>

#include "src/core/exchange.h"
#include "src/crypto/hmac.h"

namespace tc::net {
namespace {

template <typename T>
T round_trip(const T& msg) {
  const Message decoded = decode_message(encode_message(Message{msg}));
  return std::get<T>(decoded);
}

TEST(Message, HandshakeRoundTrip) {
  HandshakeMsg m{42, "swarm-infohash-xyz"};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, BitfieldRoundTrip) {
  BitfieldMsg m;
  m.piece_count = 19;
  m.bits = {0xff, 0x03, 0x01};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, HaveRoundTrip) {
  EXPECT_EQ(round_trip(HaveMsg{1234}), HaveMsg{1234});
}

TEST(Message, EncryptedPieceRoundTrip) {
  EncryptedPieceMsg m;
  m.tx = 0x1122334455667788ull;
  m.chain = 77;
  m.donor = 1;
  m.requestor = 2;
  m.payee = 3;
  m.piece = 99;
  m.prev_donor = 4;
  m.prev_piece = 88;
  m.ciphertext = util::Bytes(1000, 0x5a);
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, PlainPieceRoundTrip) {
  PlainPieceMsg m;
  m.tx = 9;
  m.chain = 8;
  m.donor = 7;
  m.piece = 6;
  m.prev_donor = kNoPeer;
  m.prev_piece = kNoPiece;
  m.data = {1, 2, 3};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, ReceiptRoundTrip) {
  ReceiptMsg m;
  m.reciprocated_tx = 5;
  m.payee = 3;
  m.requestor = 2;
  m.piece = 10;
  m.mac = crypto::sha256("x");
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, KeyReleaseRoundTrip) {
  KeyReleaseMsg m;
  m.tx = 11;
  m.piece = 12;
  m.key = util::Bytes(44, 0xab);
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, PayeeReassignRoundTrip) {
  EXPECT_EQ(round_trip(PayeeReassignMsg{5, 42}), (PayeeReassignMsg{5, 42}));
}

TEST(Message, TypeTags) {
  EXPECT_EQ(message_type(Message{HandshakeMsg{}}), MsgType::kHandshake);
  EXPECT_EQ(message_type(Message{EncryptedPieceMsg{}}), MsgType::kEncryptedPiece);
  EXPECT_EQ(message_type(Message{ReceiptMsg{}}), MsgType::kReceipt);
  EXPECT_STREQ(message_type_name(MsgType::kKeyRelease), "key-release");
}

TEST(Message, DecodeRejectsUnknownType) {
  util::Bytes bad{0x7f, 0x00};
  EXPECT_THROW(decode_message(bad), std::invalid_argument);
}

TEST(Message, DecodeRejectsTrailingBytes) {
  auto wire = encode_message(Message{HaveMsg{1}});
  wire.push_back(0x00);
  EXPECT_THROW(decode_message(wire), std::invalid_argument);
}

TEST(Message, DecodeRejectsTruncation) {
  auto wire = encode_message(Message{EncryptedPieceMsg{}});
  wire.resize(wire.size() / 2);
  EXPECT_THROW(decode_message(wire), std::out_of_range);
}

TEST(ReceiptMac, DeterministicAndKeyed) {
  const auto k1 = core::derive_mac_key(1, 3);
  const auto k2 = core::derive_mac_key(3, 1);
  EXPECT_EQ(k1, k2);  // order-independent
  const auto m1 = receipt_mac(k1, 7, 3, 2, 10);
  const auto m2 = receipt_mac(k2, 7, 3, 2, 10);
  EXPECT_TRUE(crypto::digest_equal(m1, m2));
  // Any field change breaks the MAC.
  EXPECT_FALSE(crypto::digest_equal(m1, receipt_mac(k1, 8, 3, 2, 10)));
  EXPECT_FALSE(crypto::digest_equal(m1, receipt_mac(k1, 7, 4, 2, 10)));
  EXPECT_FALSE(crypto::digest_equal(m1, receipt_mac(k1, 7, 3, 5, 10)));
  EXPECT_FALSE(crypto::digest_equal(m1, receipt_mac(k1, 7, 3, 2, 11)));
  // And a different pairwise key breaks it.
  EXPECT_FALSE(
      crypto::digest_equal(m1, receipt_mac(core::derive_mac_key(1, 4), 7, 3, 2, 10)));
}

}  // namespace
}  // namespace tc::net
