#include "src/net/tracker.h"

#include <gtest/gtest.h>

#include <set>

namespace tc::net {
namespace {

TEST(Tracker, AnnounceAndDepart) {
  Tracker t(50);
  t.announce(1);
  t.announce(2);
  t.announce(2);  // idempotent
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(1));
  t.depart(1);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Tracker, NeighborListExcludesRequester) {
  Tracker t(50);
  util::Rng rng(1);
  for (PeerId p = 1; p <= 20; ++p) t.announce(p);
  for (int trial = 0; trial < 50; ++trial) {
    const auto list = t.neighbor_list(5, rng);
    EXPECT_EQ(list.size(), 19u);
    for (PeerId p : list) EXPECT_NE(p, 5u);
  }
}

TEST(Tracker, NeighborListCapsAtListSize) {
  Tracker t(50);
  util::Rng rng(2);
  for (PeerId p = 1; p <= 200; ++p) t.announce(p);
  const auto list = t.neighbor_list(1, rng);
  EXPECT_EQ(list.size(), 50u);
  std::set<PeerId> uniq(list.begin(), list.end());
  EXPECT_EQ(uniq.size(), 50u);  // no duplicates
}

TEST(Tracker, NeighborListOmitsDeparted) {
  Tracker t(50);
  util::Rng rng(3);
  for (PeerId p = 1; p <= 60; ++p) t.announce(p);
  for (PeerId p = 1; p <= 30; ++p) t.depart(p);
  for (int trial = 0; trial < 20; ++trial) {
    for (PeerId p : t.neighbor_list(100, rng)) EXPECT_GT(p, 30u);
  }
}

TEST(Tracker, NewcomerNotYetAnnouncedCanRequest) {
  Tracker t(50);
  util::Rng rng(4);
  t.announce(1);
  t.announce(2);
  const auto list = t.neighbor_list(99, rng);
  EXPECT_EQ(list.size(), 2u);
}

TEST(Tracker, EmptySwarm) {
  Tracker t(50);
  util::Rng rng(5);
  EXPECT_TRUE(t.neighbor_list(1, rng).empty());
  t.announce(1);
  EXPECT_TRUE(t.neighbor_list(1, rng).empty());  // only the requester
}

TEST(Tracker, ExplicitCountOverride) {
  Tracker t(50);
  util::Rng rng(6);
  for (PeerId p = 1; p <= 100; ++p) t.announce(p);
  EXPECT_EQ(t.neighbor_list(1, rng, 5).size(), 5u);
  EXPECT_EQ(t.neighbor_list(1, rng, 1000).size(), 99u);
}

TEST(Tracker, PruneDropsStaleMembersOnly) {
  Tracker t(50);
  t.announce(1, 0.0);
  t.announce(2, 5.0);
  t.announce(3, 9.5);
  const auto pruned = t.prune(/*now=*/10.0, /*window=*/2.0);
  EXPECT_EQ(pruned, (std::vector<PeerId>{1, 2}));
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.contains(2));
  EXPECT_TRUE(t.contains(3));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Tracker, RenewRefreshesPruneTimestamp) {
  Tracker t(50);
  t.announce(1, 0.0);
  t.announce(1, 9.0);  // renewal: only the latest announce counts
  EXPECT_TRUE(t.prune(10.0, 2.0).empty());
  EXPECT_TRUE(t.contains(1));
}

TEST(Tracker, PrunedPeerLeavesNeighborLists) {
  Tracker t(50);
  util::Rng rng(8);
  for (PeerId p = 1; p <= 10; ++p) t.announce(p, p <= 5 ? 0.0 : 8.0);
  const auto pruned = t.prune(10.0, 5.0);
  EXPECT_EQ(pruned.size(), 5u);
  for (int trial = 0; trial < 20; ++trial) {
    for (PeerId p : t.neighbor_list(99, rng)) EXPECT_GT(p, 5u);
  }
}

TEST(Tracker, PruneReturnsAscendingAndIsIdempotent) {
  Tracker t(50);
  for (PeerId p : {7u, 3u, 9u, 1u}) t.announce(p, 0.0);
  const auto first = t.prune(10.0, 1.0);
  EXPECT_EQ(first, (std::vector<PeerId>{1, 3, 7, 9}));
  EXPECT_TRUE(t.prune(10.0, 1.0).empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracker, ReannounceAfterPruneRejoins) {
  Tracker t(50);
  t.announce(1, 0.0);
  (void)t.prune(10.0, 2.0);
  EXPECT_FALSE(t.contains(1));
  t.announce(1, 10.5);
  EXPECT_TRUE(t.contains(1));
  EXPECT_TRUE(t.prune(11.0, 2.0).empty());
}

TEST(Tracker, SamplingIsRoughlyUniform) {
  Tracker t(10);
  util::Rng rng(7);
  for (PeerId p = 1; p <= 100; ++p) t.announce(p);
  std::vector<int> hits(101, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (PeerId p : t.neighbor_list(0, rng)) ++hits[p];
  }
  // Each peer expected 2000 * 10/100 = 200 hits.
  for (PeerId p = 1; p <= 100; ++p) EXPECT_NEAR(hits[p], 200, 80) << p;
}

}  // namespace
}  // namespace tc::net
