#include "src/net/tracker.h"

#include <gtest/gtest.h>

#include <set>

namespace tc::net {
namespace {

TEST(Tracker, AnnounceAndDepart) {
  Tracker t(50);
  t.announce(1);
  t.announce(2);
  t.announce(2);  // idempotent
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(1));
  t.depart(1);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Tracker, NeighborListExcludesRequester) {
  Tracker t(50);
  util::Rng rng(1);
  for (PeerId p = 1; p <= 20; ++p) t.announce(p);
  for (int trial = 0; trial < 50; ++trial) {
    const auto list = t.neighbor_list(5, rng);
    EXPECT_EQ(list.size(), 19u);
    for (PeerId p : list) EXPECT_NE(p, 5u);
  }
}

TEST(Tracker, NeighborListCapsAtListSize) {
  Tracker t(50);
  util::Rng rng(2);
  for (PeerId p = 1; p <= 200; ++p) t.announce(p);
  const auto list = t.neighbor_list(1, rng);
  EXPECT_EQ(list.size(), 50u);
  std::set<PeerId> uniq(list.begin(), list.end());
  EXPECT_EQ(uniq.size(), 50u);  // no duplicates
}

TEST(Tracker, NeighborListOmitsDeparted) {
  Tracker t(50);
  util::Rng rng(3);
  for (PeerId p = 1; p <= 60; ++p) t.announce(p);
  for (PeerId p = 1; p <= 30; ++p) t.depart(p);
  for (int trial = 0; trial < 20; ++trial) {
    for (PeerId p : t.neighbor_list(100, rng)) EXPECT_GT(p, 30u);
  }
}

TEST(Tracker, NewcomerNotYetAnnouncedCanRequest) {
  Tracker t(50);
  util::Rng rng(4);
  t.announce(1);
  t.announce(2);
  const auto list = t.neighbor_list(99, rng);
  EXPECT_EQ(list.size(), 2u);
}

TEST(Tracker, EmptySwarm) {
  Tracker t(50);
  util::Rng rng(5);
  EXPECT_TRUE(t.neighbor_list(1, rng).empty());
  t.announce(1);
  EXPECT_TRUE(t.neighbor_list(1, rng).empty());  // only the requester
}

TEST(Tracker, ExplicitCountOverride) {
  Tracker t(50);
  util::Rng rng(6);
  for (PeerId p = 1; p <= 100; ++p) t.announce(p);
  EXPECT_EQ(t.neighbor_list(1, rng, 5).size(), 5u);
  EXPECT_EQ(t.neighbor_list(1, rng, 1000).size(), 99u);
}

TEST(Tracker, SamplingIsRoughlyUniform) {
  Tracker t(10);
  util::Rng rng(7);
  for (PeerId p = 1; p <= 100; ++p) t.announce(p);
  std::vector<int> hits(101, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (PeerId p : t.neighbor_list(0, rng)) ++hits[p];
  }
  // Each peer expected 2000 * 10/100 = 200 hits.
  for (PeerId p = 1; p <= 100; ++p) EXPECT_NEAR(hits[p], 200, 80) << p;
}

}  // namespace
}  // namespace tc::net
