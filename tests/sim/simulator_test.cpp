#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace tc::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const auto victim = sim.schedule_at(2.0, [&] { fired = true; });
  sim.schedule_at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(3.0, [&] { ++count; });
  sim.run(2.0);  // inclusive boundary
  EXPECT_EQ(count, 2);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator sim;
  bool fired = false;
  sim.schedule_in(-3.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleRecursively) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) sim.schedule_in(1.0, recur);
  };
  sim.schedule_in(0.0, recur);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
  EXPECT_EQ(sim.events_processed(), 100u);
}

TEST(Simulator, PendingCountTracksCancellations) {
  Simulator sim;
  const auto a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  std::uint64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_at((i * 7919) % 1000, [&sum, i] { sum += static_cast<std::uint64_t>(i); });
  }
  sim.run();
  EXPECT_EQ(sum, 10000ull * 9999 / 2);
}

}  // namespace
}  // namespace tc::sim
