#include "src/sim/faults.h"

#include <gtest/gtest.h>

#include <vector>

namespace tc::sim {
namespace {

TEST(FaultPlan, DefaultIsEverythingOff) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.control_faults());
  EXPECT_FALSE(plan.churn());
  EXPECT_FALSE(plan.outages());
}

TEST(FaultPlan, EachKnobEnables) {
  {
    FaultPlan p;
    p.control_loss = 0.1;
    EXPECT_TRUE(p.control_faults());
    EXPECT_TRUE(p.enabled());
  }
  {
    FaultPlan p;
    p.control_jitter = 0.5;
    EXPECT_TRUE(p.control_faults());
  }
  {
    FaultPlan p;
    p.session_kind = FaultPlan::SessionKind::kExponential;
    EXPECT_FALSE(p.churn()) << "mean_session still 0";
    p.mean_session = 60.0;
    EXPECT_TRUE(p.churn());
    EXPECT_TRUE(p.enabled());
  }
  {
    FaultPlan p;
    p.outage_rate = 0.01;
    EXPECT_TRUE(p.outages());
    EXPECT_TRUE(p.enabled());
  }
}

TEST(FaultInjector, DisabledKnobsNeverDraw) {
  // With loss/jitter off the injector must not consume randomness, so a
  // fault-free run's fault stream is never even touched.
  FaultInjector inj(FaultPlan{}, 42);
  const std::uint64_t probe_before = FaultInjector(FaultPlan{}, 42).rng().next_u64();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.drop_control());
    EXPECT_EQ(inj.control_delay(), 0.0);
  }
  EXPECT_EQ(inj.rng().next_u64(), probe_before)
      << "drop_control/control_delay consumed RNG draws while disabled";
}

TEST(FaultInjector, SameSeedSamePlanSameDecisions) {
  FaultPlan plan;
  plan.control_loss = 0.3;
  plan.control_jitter = 0.25;
  plan.outage_rate = 0.05;
  plan.crash_fraction = 0.4;

  FaultInjector a(plan, 7), b(plan, 7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.drop_control(), b.drop_control());
    EXPECT_EQ(a.control_delay(), b.control_delay());
    EXPECT_EQ(a.outage_gap(), b.outage_gap());
    EXPECT_EQ(a.outage_duration(), b.outage_duration());
    EXPECT_EQ(a.crash_on_exit(), b.crash_on_exit());
  }
}

TEST(FaultInjector, StreamIndependentOfSwarmRng) {
  // The injector derives from the swarm seed but must not replay the
  // swarm's own Rng(seed) stream, or faults would correlate with piece
  // selection.
  FaultPlan plan;
  plan.control_loss = 0.5;
  FaultInjector inj(plan, 123);
  util::Rng swarm_rng(123);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = inj.rng().next_u64() != swarm_rng.next_u64();
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, LossRateRoughlyHonored) {
  FaultPlan plan;
  plan.control_loss = 0.1;
  FaultInjector inj(plan, 99);
  int dropped = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) dropped += inj.drop_control() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.1, 0.01);
}

TEST(FaultInjector, OutageDurationsHaveRequestedMean) {
  FaultPlan plan;
  plan.outage_rate = 1.0;
  plan.outage_mean_duration = 8.0;
  FaultInjector inj(plan, 5);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += inj.outage_duration();
  EXPECT_NEAR(sum / n, 8.0, 0.3);
}

}  // namespace
}  // namespace tc::sim
