// Property tests on the fluid bandwidth model with randomized workloads:
// byte conservation, completion-time sanity against analytic bounds, and
// capacity ceilings, across many seeds.
#include <gtest/gtest.h>

#include "src/sim/bandwidth.h"
#include "src/util/rng.h"

namespace tc::sim {
namespace {

class BandwidthRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthRandomized, ConservationAndBounds) {
  util::Rng rng(GetParam());
  Simulator sim;
  BandwidthModel bw(sim);

  const int uploaders = 5;
  std::vector<double> caps(uploaders);
  for (int u = 0; u < uploaders; ++u) {
    caps[static_cast<std::size_t>(u)] = rng.uniform(1000.0, 100'000.0);
    bw.set_capacity(static_cast<NodeId>(u + 1), caps[static_cast<std::size_t>(u)]);
  }

  double expected_total = 0;
  double delivered_total = 0;
  std::vector<double> per_uploader_bytes(uploaders, 0.0);
  const int flows = 60;
  for (int i = 0; i < flows; ++i) {
    const int u = static_cast<int>(rng.index(uploaders));
    const double bytes = rng.uniform(100.0, 500'000.0);
    expected_total += bytes;
    per_uploader_bytes[static_cast<std::size_t>(u)] += bytes;
    const double start = rng.uniform(0.0, 50.0);
    sim.schedule_at(start, [&bw, &delivered_total, u, bytes] {
      bw.start_flow(static_cast<NodeId>(u + 1),
                    static_cast<NodeId>(100 + u), bytes,
                    [&delivered_total, bytes](FlowId) {
                      delivered_total += bytes;
                    });
    });
  }
  sim.run();

  // All flows complete and every byte is delivered exactly once.
  EXPECT_NEAR(delivered_total, expected_total, 1e-3);

  // No uploader finished faster than its capacity allows:
  // total_time >= max_u (bytes_u / cap_u) given all flows start by t=50.
  double min_required = 0;
  for (int u = 0; u < uploaders; ++u) {
    min_required = std::max(min_required, per_uploader_bytes[static_cast<std::size_t>(u)] /
                                              caps[static_cast<std::size_t>(u)]);
  }
  EXPECT_GE(sim.now() + 1e-6, min_required);
  // And it did not take absurdly longer than serialized transmission.
  EXPECT_LE(sim.now(), 50.0 + min_required + expected_total / 1000.0);
}

TEST_P(BandwidthRandomized, CancellationsNeverBreakAccounting) {
  util::Rng rng(GetParam() * 77 + 1);
  Simulator sim;
  BandwidthModel bw(sim);
  bw.set_capacity(1, 10'000.0);

  int completions = 0;
  std::vector<FlowId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(
        bw.start_flow(1, 2, rng.uniform(1000.0, 50'000.0),
                      [&completions](FlowId) { ++completions; }));
  }
  // Cancel a random half at random times.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    const FlowId f = ids[i];
    sim.schedule_at(rng.uniform(0.0, 20.0), [&bw, &cancelled, f] {
      if (bw.cancel_flow(f)) ++cancelled;
    });
  }
  sim.run();
  EXPECT_EQ(completions + cancelled, 40);
  EXPECT_EQ(bw.active_flow_count(1), 0u);
  // Delivered bytes never exceed capacity * elapsed.
  EXPECT_LE(bw.bytes_uploaded(1), 10'000.0 * sim.now() + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthRandomized,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tc::sim
