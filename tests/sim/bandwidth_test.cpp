#include "src/sim/bandwidth.h"

#include <gtest/gtest.h>

#include <vector>

namespace tc::sim {
namespace {

class BandwidthTest : public ::testing::Test {
 protected:
  Simulator sim;
  BandwidthModel bw{sim};
};

TEST_F(BandwidthTest, SingleFlowExactTiming) {
  bw.set_capacity(1, 100.0);  // bytes/s
  double done_at = -1;
  bw.start_flow(1, 2, 500.0, [&](FlowId) { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_NEAR(bw.bytes_uploaded(1), 500.0, 1e-6);
  EXPECT_NEAR(bw.bytes_downloaded(2), 500.0, 1e-6);
}

TEST_F(BandwidthTest, EqualSharingTwoFlows) {
  bw.set_capacity(1, 100.0);
  std::vector<double> done;
  bw.start_flow(1, 2, 100.0, [&](FlowId) { done.push_back(sim.now()); });
  bw.start_flow(1, 3, 300.0, [&](FlowId) { done.push_back(sim.now()); });
  sim.run();
  // Shared 50/50 until t=2 (first completes), then full rate: 200 bytes
  // remain on flow 2 at t=2, finishing at 2 + 200/100 = 4.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
}

TEST_F(BandwidthTest, WeightedSharing) {
  bw.set_capacity(1, 100.0);
  double t_heavy = -1, t_light = -1;
  bw.start_flow(1, 2, 300.0, [&](FlowId) { t_heavy = sim.now(); }, 3.0);
  bw.start_flow(1, 3, 300.0, [&](FlowId) { t_light = sim.now(); }, 1.0);
  sim.run();
  // Heavy gets 75 B/s -> completes at 4; light then has 300-100=200 left
  // at full rate -> 4 + 2 = 6.
  EXPECT_NEAR(t_heavy, 4.0, 1e-9);
  EXPECT_NEAR(t_light, 6.0, 1e-9);
}

TEST_F(BandwidthTest, JoiningFlowSlowsExisting) {
  bw.set_capacity(1, 100.0);
  double done = -1;
  bw.start_flow(1, 2, 200.0, [&](FlowId) { done = sim.now(); });
  sim.schedule_at(1.0, [&] {
    bw.start_flow(1, 3, 1000.0, nullptr);
  });
  sim.run(4.0);
  // 100 bytes by t=1; then 50 B/s -> 100 more takes 2s -> done at 3.
  EXPECT_NEAR(done, 3.0, 1e-9);
}

TEST_F(BandwidthTest, CancelFlowStopsDelivery) {
  bw.set_capacity(1, 100.0);
  bool fired = false;
  const FlowId f = bw.start_flow(1, 2, 1000.0, [&](FlowId) { fired = true; });
  sim.schedule_at(2.0, [&] { EXPECT_TRUE(bw.cancel_flow(f)); });
  sim.run();
  EXPECT_FALSE(fired);
  // Partial progress still counted.
  EXPECT_NEAR(bw.bytes_uploaded(1), 200.0, 1e-6);
  EXPECT_FALSE(bw.cancel_flow(f));  // already gone
}

TEST_F(BandwidthTest, ZeroCapacityNeverCompletes) {
  bw.set_capacity(1, 0.0);
  bool fired = false;
  bw.start_flow(1, 2, 10.0, [&](FlowId) { fired = true; });
  sim.run(1000.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(bw.active_flow_count(1), 1u);
}

TEST_F(BandwidthTest, CapacityChangeRetimesFlows) {
  bw.set_capacity(1, 100.0);
  double done = -1;
  bw.start_flow(1, 2, 400.0, [&](FlowId) { done = sim.now(); });
  sim.schedule_at(2.0, [&] { bw.set_capacity(1, 50.0); });
  sim.run();
  // 200 bytes by t=2, then 200 at 50 B/s -> 2 + 4 = 6.
  EXPECT_NEAR(done, 6.0, 1e-9);
}

TEST_F(BandwidthTest, ZeroByteFlowCompletesImmediately) {
  bw.set_capacity(1, 100.0);
  bool fired = false;
  bw.start_flow(1, 2, 0.0, [&](FlowId) { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST_F(BandwidthTest, CompletionCallbackCanStartNextFlow) {
  bw.set_capacity(1, 100.0);
  std::vector<double> times;
  std::function<void(FlowId)> chain = [&](FlowId) {
    times.push_back(sim.now());
    if (times.size() < 3) bw.start_flow(1, 2, 100.0, chain);
  };
  bw.start_flow(1, 2, 100.0, chain);
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 1.0, 1e-9);
  EXPECT_NEAR(times[1], 2.0, 1e-9);
  EXPECT_NEAR(times[2], 3.0, 1e-9);
}

TEST_F(BandwidthTest, CancelFlowsFromClearsEverything) {
  bw.set_capacity(1, 100.0);
  int fired = 0;
  bw.start_flow(1, 2, 1000.0, [&](FlowId) { ++fired; });
  bw.start_flow(1, 3, 1000.0, [&](FlowId) { ++fired; });
  sim.schedule_at(1.0, [&] { bw.cancel_flows_from(1); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(bw.active_flow_count(1), 0u);
}

TEST_F(BandwidthTest, SetFlowWeightRebalances) {
  bw.set_capacity(1, 100.0);
  double t2 = -1, t3 = -1;
  const FlowId a = bw.start_flow(1, 2, 200.0, [&](FlowId) { t2 = sim.now(); });
  bw.start_flow(1, 3, 200.0, [&](FlowId) { t3 = sim.now(); });
  sim.schedule_at(2.0, [&] { EXPECT_TRUE(bw.set_flow_weight(a, 3.0)); });
  sim.run();
  // Until t=2: both 50 B/s -> 100 left each. Then a:75 B/s, b:25 B/s.
  // a done at 2 + 100/75 = 3.333; b has 100 - 1.333*25 = 66.67 left at
  // full rate -> 3.333 + 0.667 = 4.0.
  EXPECT_NEAR(t2, 2.0 + 100.0 / 75.0, 1e-9);
  EXPECT_NEAR(t3, 4.0, 1e-9);
}

TEST_F(BandwidthTest, ConservationOfBytes) {
  bw.set_capacity(1, 77.0);
  bw.set_capacity(2, 133.0);
  double delivered = 0;
  for (int i = 0; i < 20; ++i) {
    bw.start_flow(1 + static_cast<NodeId>(i % 2), 10 + static_cast<NodeId>(i), 50.0 + i,
                  [&, i](FlowId) { delivered += 50.0 + i; });
  }
  sim.run();
  double uploaded = bw.bytes_uploaded(1) + bw.bytes_uploaded(2);
  EXPECT_NEAR(uploaded, delivered, 1e-6);
}

TEST_F(BandwidthTest, InvalidArgumentsThrow) {
  bw.set_capacity(1, 100.0);
  EXPECT_THROW(bw.start_flow(1, 2, -1.0, nullptr), std::invalid_argument);
  EXPECT_THROW(bw.start_flow(1, 2, 10.0, nullptr, 0.0), std::invalid_argument);
  EXPECT_THROW(bw.set_capacity(1, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace tc::sim
