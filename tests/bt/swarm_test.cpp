#include "src/bt/swarm.h"

#include <gtest/gtest.h>

namespace tc::bt {
namespace {

// Inert protocol: lets us drive the swarm by hand.
class NullProtocol : public Protocol {
 public:
  std::string name() const override { return "null"; }
  util::ByteCount default_piece_bytes() const override { return 64 * util::kKiB; }

  std::vector<std::pair<PeerId, PieceIndex>> completions;
  void on_piece_complete(PeerId peer, PieceIndex piece, PeerId) override {
    completions.emplace_back(peer, piece);
  }
};

SwarmConfig tiny_config(std::size_t leechers = 4) {
  SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.file_bytes = 4 * 64 * util::kKiB;  // 4 pieces
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.seed = 7;
  cfg.max_sim_time = 100.0;
  cfg.wait_for_freeriders = false;
  return cfg;
}

TEST(Swarm, SeederAndLeechersJoinAndConnect) {
  NullProtocol proto;
  Swarm swarm(tiny_config(4), proto);
  swarm.run();  // no protocol => nobody downloads; run ends at max time or idle

  const Peer* seeder = swarm.peer(swarm.seeder_id());
  ASSERT_NE(seeder, nullptr);
  EXPECT_TRUE(seeder->seeder);
  EXPECT_TRUE(seeder->have.complete());
  EXPECT_EQ(swarm.piece_count(), 4u);
  // Everyone should be everyone's neighbor in a tiny swarm.
  EXPECT_EQ(seeder->neighbors.size(), 4u);
  for (PeerId id : swarm.active_peers()) {
    const Peer* p = swarm.peer(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->neighbors.size(), 4u) << id;
  }
}

TEST(Swarm, BandwidthClassesAssignedRoundRobin) {
  NullProtocol proto;
  auto cfg = tiny_config(10);
  cfg.leecher_upload_kbps = {400, 1200};
  Swarm swarm(cfg, proto);
  swarm.run();
  int slow = 0, fast = 0;
  for (PeerId id : swarm.active_peers()) {
    const Peer* p = swarm.peer(id);
    if (p->seeder) continue;
    if (p->upload_kbps == 400) ++slow;
    if (p->upload_kbps == 1200) ++fast;
  }
  EXPECT_EQ(slow, 5);
  EXPECT_EQ(fast, 5);
}

TEST(Swarm, FreeriderFractionIsExact) {
  NullProtocol proto;
  auto cfg = tiny_config(20);
  cfg.freerider_fraction = 0.25;
  Swarm swarm(cfg, proto);
  swarm.run();
  int fr = 0;
  for (PeerId id : swarm.active_peers()) {
    const Peer* p = swarm.peer(id);
    if (!p->seeder && p->freerider) ++fr;
  }
  EXPECT_EQ(fr, 5);
}

TEST(Swarm, NeedsFromAndLrfRespectAvailability) {
  NullProtocol proto;
  auto cfg = tiny_config(3);
  Swarm swarm(cfg, proto);
  swarm.run();
  const auto peers = swarm.active_peers();
  const PeerId seeder = swarm.seeder_id();
  PeerId leecher = net::kNoPeer;
  for (PeerId id : peers)
    if (id != seeder) leecher = id;
  ASSERT_NE(leecher, net::kNoPeer);

  EXPECT_TRUE(swarm.needs_from(leecher, seeder));
  EXPECT_FALSE(swarm.needs_from(seeder, leecher));
  EXPECT_EQ(swarm.needed_pieces(leecher, seeder).size(), 4u);
  EXPECT_TRUE(swarm.select_lrf(leecher, seeder).has_value());
  EXPECT_FALSE(swarm.select_lrf(seeder, leecher).has_value());
}

TEST(Swarm, LrfPrefersRarestPiece) {
  NullProtocol proto;
  auto cfg = tiny_config(5);
  Swarm swarm(cfg, proto);
  swarm.run();
  const PeerId seeder = swarm.seeder_id();
  std::vector<PeerId> leechers;
  for (PeerId id : swarm.active_peers())
    if (id != seeder) leechers.push_back(id);

  // Give everyone piece 0..2 except piece 3 rare: only one holder besides
  // the seeder. A chooser should pick the piece with minimal availability.
  for (std::size_t i = 0; i < leechers.size(); ++i) {
    for (PieceIndex p = 0; p < 3; ++p) swarm.grant_piece(leechers[i], p, seeder);
  }
  // Now every leecher needs only piece 3 from the seeder.
  const PeerId chooser = leechers[0];
  const auto sel = swarm.select_lrf(chooser, seeder);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(*sel, 3u);
}

TEST(Swarm, GrantPieceUpdatesMetricsAndAvailability) {
  NullProtocol proto;
  Swarm swarm(tiny_config(3), proto);
  swarm.run();
  const PeerId seeder = swarm.seeder_id();
  PeerId a = net::kNoPeer, b = net::kNoPeer;
  for (PeerId id : swarm.active_peers()) {
    if (id == seeder) continue;
    if (a == net::kNoPeer) {
      a = id;
    } else if (b == net::kNoPeer) {
      b = id;
    }
  }
  EXPECT_EQ(swarm.availability(b, 2), 1u);  // only the seeder has piece 2
  swarm.grant_piece(a, 2, seeder);
  EXPECT_EQ(swarm.availability(b, 2), 2u);  // now a has it too
  EXPECT_EQ(swarm.metrics().find(a)->pieces_downloaded, 1);
  // Duplicate grant is a no-op.
  swarm.grant_piece(a, 2, seeder);
  EXPECT_EQ(swarm.metrics().find(a)->pieces_downloaded, 1);
  ASSERT_FALSE(proto.completions.empty());
  EXPECT_EQ(proto.completions.back(), (std::pair<PeerId, PieceIndex>{a, 2}));
}

TEST(Swarm, UploadDeliversAndCounts) {
  NullProtocol proto;
  Swarm swarm(tiny_config(2), proto);
  swarm.run();
  const PeerId seeder = swarm.seeder_id();
  PeerId leecher = net::kNoPeer;
  for (PeerId id : swarm.active_peers())
    if (id != seeder) leecher = id;

  bool delivered = false;
  swarm.start_upload(seeder, leecher, 1, 1.0,
                     [&](PeerId, PeerId, PieceIndex, bool ok) {
                       delivered = ok;
                     });
  // Piece marked in-flight immediately.
  EXPECT_TRUE(swarm.peer(leecher)->requested.get(1));
  swarm.simulator().run(swarm.simulator().now() + 60.0);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(swarm.metrics().find(seeder)->pieces_uploaded, 1);
  EXPECT_GT(swarm.metrics().find(leecher)->bytes_downloaded, 0.0);
}

TEST(Swarm, DepartAbortsTransfersAndClearsRequested) {
  NullProtocol proto;
  Swarm swarm(tiny_config(3), proto);
  swarm.run();
  const PeerId seeder = swarm.seeder_id();
  std::vector<PeerId> leechers;
  for (PeerId id : swarm.active_peers())
    if (id != seeder) leechers.push_back(id);

  bool ok = true;
  swarm.start_upload(seeder, leechers[0], 0, 1.0,
                     [&](PeerId, PeerId, PieceIndex, bool k) { ok = k; });
  swarm.depart(leechers[0]);
  EXPECT_FALSE(ok);  // abort callback fired
  EXPECT_FALSE(swarm.is_active(leechers[0]));
  // Departed peer no longer neighbors anyone.
  EXPECT_FALSE(swarm.peer(leechers[1])->is_neighbor(leechers[0]));
}

TEST(Swarm, WhitewashKeepsPiecesUnderNewIdentity) {
  NullProtocol proto;
  auto cfg = tiny_config(3);
  cfg.freerider_fraction = 0.4;  // 1 freerider of 3
  cfg.freerider_whitewash = false;  // manual control below
  Swarm swarm(cfg, proto);
  swarm.run();
  PeerId fr = net::kNoPeer;
  for (PeerId id : swarm.active_peers()) {
    const Peer* p = swarm.peer(id);
    if (!p->seeder && p->freerider) fr = id;
  }
  ASSERT_NE(fr, net::kNoPeer);
  swarm.grant_piece(fr, 0, swarm.seeder_id());

  const PeerId fresh = swarm.whitewash(fr);
  EXPECT_NE(fresh, fr);
  EXPECT_EQ(swarm.peer(fr), nullptr);
  const Peer* p = swarm.peer(fresh);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->have.get(0));  // downloads survive the identity change
  // Metrics carried over under the new identity.
  const auto* rec = swarm.metrics().find(fresh);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->pieces_downloaded, 1);
  EXPECT_EQ(rec->whitewash_count, 1);
  EXPECT_EQ(swarm.metrics().find(fr), nullptr);
}

TEST(Swarm, InitialPieceFractionPrepopulates) {
  NullProtocol proto;
  auto cfg = tiny_config(4);
  cfg.initial_piece_fraction = 0.5;
  Swarm swarm(cfg, proto);
  swarm.run();
  for (PeerId id : swarm.active_peers()) {
    const Peer* p = swarm.peer(id);
    if (p->seeder) continue;
    EXPECT_EQ(p->have.count(), 2u);  // 50% of 4 pieces
  }
}

TEST(Swarm, ControlMessageLatency) {
  NullProtocol proto;
  Swarm swarm(tiny_config(2), proto);
  swarm.run();
  double fired_at = -1;
  const double t0 = swarm.simulator().now();
  swarm.send_control([&] { fired_at = swarm.simulator().now(); });
  swarm.simulator().run(swarm.simulator().now() + 10.0);
  EXPECT_NEAR(fired_at - t0, swarm.config().control_latency, 1e-9);
}

}  // namespace
}  // namespace tc::bt
