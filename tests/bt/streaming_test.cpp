// Streaming piece-selection policy (sequential window) — the future-work
// adaptation of §VI, layered purely on piece selection.
#include <gtest/gtest.h>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/tchain.h"

namespace tc::bt {
namespace {

TEST(BitfieldStreaming, FirstMissing) {
  Bitfield bf(100);
  EXPECT_EQ(bf.first_missing(), 0u);
  bf.set(0);
  bf.set(1);
  bf.set(3);
  EXPECT_EQ(bf.first_missing(), 2u);
  bf.set(2);
  EXPECT_EQ(bf.first_missing(), 4u);
  for (PieceIndex i = 0; i < 100; ++i) bf.set(i);
  EXPECT_EQ(bf.first_missing(), 100u);  // == size(): complete
}

TEST(BitfieldStreaming, FirstMissingAcrossWordBoundary) {
  Bitfield bf(130);
  for (PieceIndex i = 0; i < 64; ++i) bf.set(i);
  EXPECT_EQ(bf.first_missing(), 64u);
  for (PieceIndex i = 64; i < 128; ++i) bf.set(i);
  EXPECT_EQ(bf.first_missing(), 128u);
}

class SinkProtocol : public Protocol {
 public:
  std::string name() const override { return "sink"; }
  util::ByteCount default_piece_bytes() const override { return 64 * util::kKiB; }
};

TEST(StreamingPolicy, SelectionStaysInWindow) {
  SinkProtocol proto;
  SwarmConfig cfg;
  cfg.leecher_count = 2;
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.file_bytes = 64 * cfg.piece_bytes;
  cfg.piece_policy = PiecePolicy::kSequentialWindow;
  cfg.stream_window = 8;
  cfg.seed = 3;
  cfg.max_sim_time = 50.0;
  cfg.wait_for_freeriders = false;
  Swarm swarm(cfg, proto);
  swarm.run();

  PeerId leecher = net::kNoPeer;
  for (PeerId id : swarm.active_peers()) {
    if (id != swarm.seeder_id()) leecher = id;
  }
  ASSERT_NE(leecher, net::kNoPeer);

  // Repeated selections against the seeder must stay within the playback
  // window [playhead, playhead + 8).
  for (int round = 0; round < 6; ++round) {
    const PieceIndex playhead = swarm.peer(leecher)->have.first_missing();
    const auto sel = swarm.select_lrf(leecher, swarm.seeder_id());
    ASSERT_TRUE(sel.has_value());
    EXPECT_GE(*sel, playhead);
    EXPECT_LT(*sel, playhead + 8);
    swarm.grant_piece(leecher, *sel, swarm.seeder_id());
  }
}

TEST(StreamingPolicy, FallsBackWhenWindowClaimed) {
  SinkProtocol proto;
  SwarmConfig cfg;
  cfg.leecher_count = 2;
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.file_bytes = 16 * cfg.piece_bytes;
  cfg.piece_policy = PiecePolicy::kSequentialWindow;
  cfg.stream_window = 4;
  cfg.seed = 4;
  cfg.max_sim_time = 50.0;
  cfg.wait_for_freeriders = false;
  Swarm swarm(cfg, proto);
  swarm.run();
  PeerId leecher = net::kNoPeer;
  for (PeerId id : swarm.active_peers()) {
    if (id != swarm.seeder_id()) leecher = id;
  }
  // Claim the whole window as in-flight; selection must fall back to a
  // piece beyond it rather than stall.
  Peer* p = swarm.peer(leecher);
  for (PieceIndex i = 0; i < 4; ++i) p->requested.set(i);
  const auto sel = swarm.select_lrf(leecher, swarm.seeder_id());
  ASSERT_TRUE(sel.has_value());
  EXPECT_GE(*sel, 4u);
}

TEST(StreamingPolicy, TChainSwarmCompletesAndImprovesStartup) {
  auto run = [](PiecePolicy policy) {
    protocols::TChainProtocol proto;
    SwarmConfig cfg;
    cfg.leecher_count = 40;
    cfg.piece_bytes = proto.default_piece_bytes();
    cfg.file_bytes = 64 * cfg.piece_bytes;
    cfg.piece_policy = policy;
    cfg.stream_window = 8;
    cfg.seed = 9;
    Swarm swarm(cfg, proto);
    swarm.set_trace_extremes(true);
    swarm.run();
    EXPECT_EQ(swarm.metrics().unfinished_count(
                  analysis::SwarmMetrics::PeerFilter::kCompliant),
              0u);
    // Startup proxy: time of the 8th in-order piece for the traced peer.
    const auto* tl = swarm.metrics().timeline(swarm.traced_fast_peer());
    if (tl == nullptr || tl->completed.empty()) return -1.0;
    std::vector<bool> have(swarm.piece_count(), false);
    std::size_t playhead = 0;
    for (const auto& [t, piece] : tl->completed) {
      have[piece] = true;
      while (playhead < have.size() && have[playhead]) ++playhead;
      if (playhead >= 8) return t;
    }
    return -1.0;
  };
  const double lrf = run(PiecePolicy::kRarestFirst);
  const double window = run(PiecePolicy::kSequentialWindow);
  ASSERT_GT(lrf, 0.0);
  ASSERT_GT(window, 0.0);
  EXPECT_LT(window, lrf);  // streaming policy starts playing sooner
}

}  // namespace
}  // namespace tc::bt
