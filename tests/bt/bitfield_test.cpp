#include "src/bt/bitfield.h"

#include <gtest/gtest.h>

namespace tc::bt {
namespace {

TEST(Bitfield, SetGetClearCount) {
  Bitfield bf(100);
  EXPECT_EQ(bf.size(), 100u);
  EXPECT_TRUE(bf.empty());
  bf.set(0);
  bf.set(63);
  bf.set(64);
  bf.set(99);
  EXPECT_EQ(bf.count(), 4u);
  EXPECT_TRUE(bf.get(63));
  EXPECT_TRUE(bf.get(64));
  EXPECT_FALSE(bf.get(1));
  bf.clear(63);
  EXPECT_FALSE(bf.get(63));
  EXPECT_EQ(bf.count(), 3u);
}

TEST(Bitfield, SetIsIdempotent) {
  Bitfield bf(10);
  bf.set(5);
  bf.set(5);
  EXPECT_EQ(bf.count(), 1u);
  bf.clear(5);
  bf.clear(5);
  EXPECT_EQ(bf.count(), 0u);
}

TEST(Bitfield, OutOfRangeThrows) {
  Bitfield bf(10);
  EXPECT_THROW(bf.get(10), std::out_of_range);
  EXPECT_THROW(bf.set(10), std::out_of_range);
  EXPECT_THROW(bf.clear(99), std::out_of_range);
}

TEST(Bitfield, Complete) {
  Bitfield bf(3);
  bf.set(0);
  bf.set(1);
  EXPECT_FALSE(bf.complete());
  bf.set(2);
  EXPECT_TRUE(bf.complete());
  EXPECT_FALSE(Bitfield(0).complete());  // empty file is never "complete"
}

TEST(Bitfield, InterestedIn) {
  Bitfield mine(10), theirs(10);
  theirs.set(3);
  EXPECT_TRUE(mine.interested_in(theirs));
  mine.set(3);
  EXPECT_FALSE(mine.interested_in(theirs));
  theirs.set(7);
  EXPECT_TRUE(mine.interested_in(theirs));
}

TEST(Bitfield, InterestedInSizeMismatchThrows) {
  Bitfield a(10), b(11);
  EXPECT_THROW(a.interested_in(b), std::invalid_argument);
}

TEST(Bitfield, MissingFrom) {
  Bitfield mine(130), theirs(130);
  theirs.set(0);
  theirs.set(64);
  theirs.set(129);
  mine.set(64);
  const auto missing = mine.missing_from(theirs);
  EXPECT_EQ(missing, (std::vector<PieceIndex>{0, 129}));
}

TEST(Bitfield, ToVector) {
  Bitfield bf(70);
  bf.set(69);
  bf.set(2);
  EXPECT_EQ(bf.to_vector(), (std::vector<PieceIndex>{2, 69}));
}

class BitfieldMessageRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitfieldMessageRoundTrip, Wire) {
  const std::size_t n = GetParam();
  Bitfield bf(n);
  for (PieceIndex i = 0; i < n; i += 3) bf.set(i);
  const Bitfield back = Bitfield::from_message(bf.to_message());
  EXPECT_EQ(back, bf);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitfieldMessageRoundTrip,
                         ::testing::Values(1, 7, 8, 9, 63, 64, 65, 100, 2048));

TEST(Bitfield, FromMessageRejectsShortBits) {
  net::BitfieldMsg m;
  m.piece_count = 100;
  m.bits = util::Bytes(5);  // needs 13
  EXPECT_THROW(Bitfield::from_message(m), std::invalid_argument);
}

}  // namespace
}  // namespace tc::bt
