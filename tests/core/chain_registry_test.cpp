#include "src/core/chain_registry.h"

#include <gtest/gtest.h>

#include "src/obs/chain_view.h"
#include "src/obs/trace.h"

namespace tc::core {
namespace {

TEST(ChainRegistry, CreateExtendTerminate) {
  ChainRegistry r;
  const ChainId c = r.create(1, /*by_seeder=*/true, 0.0);
  EXPECT_TRUE(r.is_active(c));
  EXPECT_EQ(r.active_count(), 1u);
  r.extend(c);
  r.extend(c);
  r.terminate(c, 5.0);
  EXPECT_FALSE(r.is_active(c));
  EXPECT_EQ(r.active_count(), 0u);
  const auto* info = r.info(c);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->length, 2u);
  EXPECT_DOUBLE_EQ(info->terminated, 5.0);
  EXPECT_TRUE(info->by_seeder);
}

TEST(ChainRegistry, TerminateIsIdempotent) {
  ChainRegistry r;
  const ChainId c = r.create(1, true, 0.0);
  r.terminate(c, 1.0);
  r.terminate(c, 2.0);
  EXPECT_DOUBLE_EQ(r.info(c)->terminated, 1.0);
  EXPECT_EQ(r.active_count(), 0u);
}

TEST(ChainRegistry, CreatorAttribution) {
  ChainRegistry r;
  r.create(1, true, 0.0);
  r.create(2, false, 0.0);
  r.create(3, false, 0.0);
  EXPECT_EQ(r.created_by_seeder(), 1u);
  EXPECT_EQ(r.created_by_leechers(), 2u);
  EXPECT_EQ(r.total_created(), 3u);
  EXPECT_NEAR(r.opportunistic_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(ChainRegistry, OpportunisticFractionEmpty) {
  ChainRegistry r;
  EXPECT_DOUBLE_EQ(r.opportunistic_fraction(), 0.0);
}

TEST(ChainRegistry, MeanTerminatedLength) {
  ChainRegistry r;
  const ChainId a = r.create(1, true, 0.0);
  const ChainId b = r.create(1, true, 0.0);
  for (int i = 0; i < 4; ++i) r.extend(a);
  for (int i = 0; i < 2; ++i) r.extend(b);
  r.terminate(a, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_terminated_length(), 4.0);
  r.terminate(b, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_terminated_length(), 3.0);
}

// The census time series lives in obs::ChainView now: the registry's
// mutations, mirrored as trace events plus kCensusTick markers, replay into
// the exact series ChainRegistry::sample() used to accumulate.
TEST(ChainRegistry, CensusTimeSeriesViaChainView) {
  ChainRegistry r;
  std::vector<obs::TraceEvent> ev;
  ev.push_back({.t = 0.0, .kind = obs::EventKind::kCensusTick});
  const ChainId a = r.create(1, true, 0.5);
  ev.push_back({.t = 0.5, .kind = obs::EventKind::kChainStart, .aux = 1,
                .a = 1, .chain = a});
  const ChainId b = r.create(2, false, 0.6);
  ev.push_back({.t = 0.6, .kind = obs::EventKind::kChainStart, .aux = 0,
                .a = 2, .chain = b});
  ev.push_back({.t = 1.0, .kind = obs::EventKind::kCensusTick});
  r.terminate(a, 1.5);
  ev.push_back({.t = 1.5, .kind = obs::EventKind::kChainBreak, .chain = a});
  ev.push_back({.t = 2.0, .kind = obs::EventKind::kCensusTick});

  const auto view = obs::ChainView::reconstruct(ev);
  const auto& census = view.census();
  ASSERT_EQ(census.size(), 3u);
  EXPECT_EQ(census[0].active_chains, 0u);
  EXPECT_EQ(census[1].active_chains, 2u);
  EXPECT_EQ(census[2].active_chains, 1u);
  EXPECT_EQ(census[2].cumulative_seeder, 1u);
  EXPECT_EQ(census[2].cumulative_leecher, 1u);
  // Replayed state agrees with the live registry.
  EXPECT_EQ(view.active_at_end(), r.active_count());
  EXPECT_EQ(view.created_by_seeder(), r.created_by_seeder());
  EXPECT_EQ(view.created_by_leechers(), r.created_by_leechers());
}

TEST(ChainRegistry, UnknownChainQueriesAreSafe) {
  ChainRegistry r;
  EXPECT_FALSE(r.is_active(999));
  EXPECT_EQ(r.info(999), nullptr);
  r.extend(999);     // no-op
  r.terminate(999, 1.0);  // no-op
  EXPECT_EQ(r.active_count(), 0u);
}

}  // namespace
}  // namespace tc::core
