#include "src/core/chain_registry.h"

#include <gtest/gtest.h>

namespace tc::core {
namespace {

TEST(ChainRegistry, CreateExtendTerminate) {
  ChainRegistry r;
  const ChainId c = r.create(1, /*by_seeder=*/true, 0.0);
  EXPECT_TRUE(r.is_active(c));
  EXPECT_EQ(r.active_count(), 1u);
  r.extend(c);
  r.extend(c);
  r.terminate(c, 5.0);
  EXPECT_FALSE(r.is_active(c));
  EXPECT_EQ(r.active_count(), 0u);
  const auto* info = r.info(c);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->length, 2u);
  EXPECT_DOUBLE_EQ(info->terminated, 5.0);
  EXPECT_TRUE(info->by_seeder);
}

TEST(ChainRegistry, TerminateIsIdempotent) {
  ChainRegistry r;
  const ChainId c = r.create(1, true, 0.0);
  r.terminate(c, 1.0);
  r.terminate(c, 2.0);
  EXPECT_DOUBLE_EQ(r.info(c)->terminated, 1.0);
  EXPECT_EQ(r.active_count(), 0u);
}

TEST(ChainRegistry, CreatorAttribution) {
  ChainRegistry r;
  r.create(1, true, 0.0);
  r.create(2, false, 0.0);
  r.create(3, false, 0.0);
  EXPECT_EQ(r.created_by_seeder(), 1u);
  EXPECT_EQ(r.created_by_leechers(), 2u);
  EXPECT_EQ(r.total_created(), 3u);
  EXPECT_NEAR(r.opportunistic_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(ChainRegistry, OpportunisticFractionEmpty) {
  ChainRegistry r;
  EXPECT_DOUBLE_EQ(r.opportunistic_fraction(), 0.0);
}

TEST(ChainRegistry, MeanTerminatedLength) {
  ChainRegistry r;
  const ChainId a = r.create(1, true, 0.0);
  const ChainId b = r.create(1, true, 0.0);
  for (int i = 0; i < 4; ++i) r.extend(a);
  for (int i = 0; i < 2; ++i) r.extend(b);
  r.terminate(a, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_terminated_length(), 4.0);
  r.terminate(b, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_terminated_length(), 3.0);
}

TEST(ChainRegistry, CensusTimeSeries) {
  ChainRegistry r;
  r.sample(0.0);
  const ChainId a = r.create(1, true, 0.5);
  r.create(2, false, 0.6);
  r.sample(1.0);
  r.terminate(a, 1.5);
  r.sample(2.0);
  const auto& census = r.census();
  ASSERT_EQ(census.size(), 3u);
  EXPECT_EQ(census[0].active_chains, 0u);
  EXPECT_EQ(census[1].active_chains, 2u);
  EXPECT_EQ(census[2].active_chains, 1u);
  EXPECT_EQ(census[2].cumulative_seeder, 1u);
  EXPECT_EQ(census[2].cumulative_leecher, 1u);
}

TEST(ChainRegistry, UnknownChainQueriesAreSafe) {
  ChainRegistry r;
  EXPECT_FALSE(r.is_active(999));
  EXPECT_EQ(r.info(999), nullptr);
  r.extend(999);     // no-op
  r.terminate(999, 1.0);  // no-op
  EXPECT_EQ(r.active_count(), 0u);
}

}  // namespace
}  // namespace tc::core
