#include "src/core/policy.h"

#include <gtest/gtest.h>

#include <set>

namespace tc::core {
namespace {

PayeeQuery base_query() {
  PayeeQuery q;
  q.donor = 1;
  q.requestor = 2;
  q.donor_neighbors = {2, 3, 4, 5};
  q.payee_ok = [](PeerId) { return true; };
  return q;
}

TEST(SelectPayee, DirectReciprocityWhenRequestorHasWhatDonorNeeds) {
  util::Rng rng(1);
  auto q = base_query();
  q.donor_needs_requestor = true;
  EXPECT_EQ(select_payee(q, rng), q.donor);
}

TEST(SelectPayee, SeederNeverDesignatesItself) {
  util::Rng rng(2);
  auto q = base_query();
  q.donor_needs_requestor = true;  // vacuous for a seeder
  q.donor_is_seeder = true;
  const PeerId p = select_payee(q, rng);
  EXPECT_NE(p, q.donor);
  EXPECT_NE(p, q.requestor);
}

TEST(SelectPayee, DirectDisabledByAblationSwitch) {
  util::Rng rng(3);
  auto q = base_query();
  q.donor_needs_requestor = true;
  q.allow_direct = false;
  EXPECT_NE(select_payee(q, rng), q.donor);
}

TEST(SelectPayee, IndirectExcludesRequestorAndDonor) {
  util::Rng rng(4);
  auto q = base_query();
  q.donor_neighbors = {1, 2, 2, 1};  // only self/requestor available
  EXPECT_EQ(select_payee(q, rng), net::kNoPeer);
}

TEST(SelectPayee, IndirectRespectsEligibilityFilter) {
  util::Rng rng(5);
  auto q = base_query();
  q.payee_ok = [](PeerId n) { return n == 4; };
  for (int i = 0; i < 20; ++i) EXPECT_EQ(select_payee(q, rng), 4u);
}

TEST(SelectPayee, NoQualifiedNeighborMeansTermination) {
  util::Rng rng(6);
  auto q = base_query();
  q.payee_ok = [](PeerId) { return false; };
  EXPECT_EQ(select_payee(q, rng), net::kNoPeer);
}

TEST(SelectPayee, IndirectChoiceIsUniform) {
  util::Rng rng(7);
  auto q = base_query();
  std::map<PeerId, int> counts;
  for (int i = 0; i < 6000; ++i) ++counts[select_payee(q, rng)];
  // Candidates are {3,4,5}; ~2000 each.
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [p, c] : counts) EXPECT_NEAR(c, 2000, 250) << p;
}

TEST(BootstrapPiece, PicksPieceBothNeed) {
  util::Rng rng(8);
  bt::Bitfield donor(8), req(8), payee(8);
  for (bt::PieceIndex i = 0; i < 8; ++i) donor.set(i);
  req.set(0);
  req.set(1);     // requestor claims 0,1
  payee.set(1);
  payee.set(2);   // payee claims 1,2
  // Both need: {3..7} (0 claimed by req, 2 claimed by payee).
  std::set<bt::PieceIndex> seen;
  for (int i = 0; i < 200; ++i) {
    const auto p = select_bootstrap_piece(donor, req, payee, rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_GE(*p, 3u);
    seen.insert(*p);
  }
  EXPECT_EQ(seen.size(), 5u);  // covers all of {3..7}
}

TEST(BootstrapPiece, NoneWhenNoCommonNeed) {
  util::Rng rng(9);
  bt::Bitfield donor(4), req(4), payee(4);
  donor.set(0);
  donor.set(1);
  req.set(0);
  payee.set(1);
  // req needs 1 (payee has claimed it); payee needs 0 (req claimed it).
  EXPECT_FALSE(select_bootstrap_piece(donor, req, payee, rng).has_value());
}

TEST(OpportunisticSeeding, Trigger) {
  EXPECT_TRUE(may_opportunistically_seed(1, 0));
  EXPECT_TRUE(may_opportunistically_seed(10, 0));
  EXPECT_FALSE(may_opportunistically_seed(0, 0));  // needs a completed piece
  EXPECT_FALSE(may_opportunistically_seed(5, 1));  // has unmet obligations
}

}  // namespace
}  // namespace tc::core
