// Byte-level almost-fair exchange: the full Figure 1 triangle executed with
// real encryption, receipts and key releases.
#include "src/core/exchange.h"

#include <gtest/gtest.h>

namespace tc::core {
namespace {

class ExchangeTest : public ::testing::Test {
 protected:
  std::unique_ptr<crypto::SymmetricCipher> cipher =
      crypto::make_cipher(crypto::CipherKind::kChaCha20);
  crypto::KeySource keys{42};

  util::Bytes piece(std::uint8_t fill, std::size_t len = 4096) {
    util::Bytes b(len, fill);
    return b;
  }
};

TEST_F(ExchangeTest, FullTriangleCompletes) {
  // A (donor, id 1) uploads encrypted p1 to B (id 2), payee C (id 3).
  const auto p1 = piece(0xa1);
  DonorSession donor(/*tx=*/100, /*chain=*/1, 1, 2, 3, /*piece=*/10,
                     net::kNoPeer, net::kNoPiece, p1, *cipher, keys);

  // Ciphertext is not the plaintext ("almost complete resource").
  EXPECT_EQ(donor.offer().ciphertext.size(), p1.size());
  EXPECT_NE(donor.offer().ciphertext, p1);

  RequestorSession requestor(donor.offer());
  EXPECT_EQ(requestor.payee(), 3u);

  // B reciprocates: uploads encrypted p2 to C (tx 101).
  const auto p2 = piece(0xb2);
  DonorSession b_as_donor(/*tx=*/101, 1, 2, 3, /*payee=*/4, /*piece=*/11,
                          /*prev_donor=*/1, /*prev_piece=*/10, p2, *cipher, keys);

  // C observes the reciprocation and issues the receipt for A.
  const auto receipt =
      PayeeSession::make_receipt(b_as_donor.offer(), /*original_donor=*/1,
                                 /*original_tx=*/100);
  EXPECT_TRUE(donor.accept_receipt(receipt));
  ASSERT_TRUE(donor.receipted());

  // A releases the key; B decrypts and verifies the piece hash.
  const auto expected = crypto::sha256(p1);
  const auto plain = requestor.complete(donor.key_release(), *cipher, expected);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, p1);
  EXPECT_TRUE(requestor.completed());
}

TEST_F(ExchangeTest, ForgedReceiptRejected) {
  DonorSession donor(100, 1, 1, 2, 3, 10, net::kNoPeer, net::kNoPiece,
                     piece(1), *cipher, keys);
  net::ReceiptMsg forged;
  forged.reciprocated_tx = 100;
  forged.payee = 3;
  forged.requestor = 2;
  forged.piece = 11;
  // MAC computed with the wrong pairwise key (attacker doesn't know it).
  const auto wrong_key = derive_mac_key(7, 9);
  forged.mac = net::receipt_mac(wrong_key, 100, 3, 2, 11);
  EXPECT_FALSE(donor.accept_receipt(forged));
  EXPECT_FALSE(donor.receipted());
}

TEST_F(ExchangeTest, ReceiptForWrongTxRejected) {
  DonorSession donor(100, 1, 1, 2, 3, 10, net::kNoPeer, net::kNoPiece,
                     piece(1), *cipher, keys);
  DonorSession recip(101, 1, 2, 3, 4, 11, 1, 10, piece(2), *cipher, keys);
  const auto receipt = PayeeSession::make_receipt(recip.offer(), 1, /*tx=*/999);
  EXPECT_FALSE(donor.accept_receipt(receipt));
}

TEST_F(ExchangeTest, ReceiptFromWrongPayeeRejected) {
  DonorSession donor(100, 1, 1, 2, /*payee=*/3, 10, net::kNoPeer, net::kNoPiece,
                     piece(1), *cipher, keys);
  // Receipt arrives claiming payee 5 (not the designated 3).
  net::EncryptedPieceMsg fake_recip;
  fake_recip.tx = 101;
  fake_recip.donor = 2;
  fake_recip.requestor = 5;
  fake_recip.piece = 11;
  const auto receipt = PayeeSession::make_receipt(fake_recip, 1, 100);
  EXPECT_FALSE(donor.accept_receipt(receipt));
}

TEST_F(ExchangeTest, WrongKeyFailsHashCheck) {
  const auto p1 = piece(0x77);
  DonorSession donor(100, 1, 1, 2, 3, 10, net::kNoPeer, net::kNoPiece, p1,
                     *cipher, keys);
  RequestorSession requestor(donor.offer());
  // Attacker hands over some other key.
  net::KeyReleaseMsg bogus;
  bogus.tx = 100;
  bogus.piece = 10;
  bogus.key = keys.next().serialize();
  const auto out = requestor.complete(bogus, *cipher, crypto::sha256(p1));
  EXPECT_FALSE(out.has_value());
  EXPECT_FALSE(requestor.completed());
}

TEST_F(ExchangeTest, KeyReleaseForWrongTxIgnored) {
  DonorSession d1(100, 1, 1, 2, 3, 10, net::kNoPeer, net::kNoPiece, piece(1),
                  *cipher, keys);
  DonorSession d2(200, 2, 1, 2, 3, 20, net::kNoPeer, net::kNoPiece, piece(2),
                  *cipher, keys);
  RequestorSession requestor(d1.offer());
  EXPECT_FALSE(requestor.complete(d2.key_release(), *cipher).has_value());
}

TEST_F(ExchangeTest, CheatingGainsNothing) {
  // §III-A2: a requestor that refuses to reciprocate holds only an
  // undecryptable blob — decrypting with a guessed key fails.
  const auto p1 = piece(0x3c);
  DonorSession donor(100, 1, 1, 2, 3, 10, net::kNoPeer, net::kNoPiece, p1,
                     *cipher, keys);
  RequestorSession requestor(donor.offer());
  crypto::KeySource guesser(987654);
  for (int i = 0; i < 10; ++i) {
    net::KeyReleaseMsg guess;
    guess.tx = 100;
    guess.piece = 10;
    guess.key = guesser.next().serialize();
    EXPECT_FALSE(requestor.complete(guess, *cipher, crypto::sha256(p1)));
  }
}

TEST_F(ExchangeTest, EscrowedKeyDecryptsViaPayeePath) {
  // §II-B4: donor departs, payee forwards the escrowed key.
  const auto p1 = piece(0x5e);
  DonorSession donor(100, 1, 1, 2, 3, 10, net::kNoPeer, net::kNoPiece, p1,
                     *cipher, keys);
  RequestorSession requestor(donor.offer());
  const auto escrow = donor.escrow_for_payee();
  const auto plain = requestor.complete(escrow, *cipher, crypto::sha256(p1));
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, p1);
}

TEST_F(ExchangeTest, XteaCipherInteropsWithSessions) {
  const auto xtea = crypto::make_cipher(crypto::CipherKind::kXteaCtr);
  const auto p1 = piece(0x11, 1000);
  DonorSession donor(100, 1, 1, 2, 3, 10, net::kNoPeer, net::kNoPiece, p1,
                     *xtea, keys);
  RequestorSession requestor(donor.offer());
  DonorSession recip(101, 1, 2, 3, 4, 11, 1, 10, p1, *xtea, keys);
  EXPECT_TRUE(donor.accept_receipt(
      PayeeSession::make_receipt(recip.offer(), 1, 100)));
  EXPECT_EQ(requestor.complete(donor.key_release(), *xtea, crypto::sha256(p1)),
            p1);
}

}  // namespace
}  // namespace tc::core
