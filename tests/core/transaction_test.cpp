#include "src/core/transaction.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tc::core {
namespace {

TEST(TransactionTable, CreateAssignsUniqueIds) {
  TransactionTable t;
  const auto& a = t.create(1, 10, 20, 30, 5, 0, 0.0);
  const auto& b = t.create(1, 20, 30, 40, 6, a.id, 1.0);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(b.prev, a.id);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.created(), 2u);
}

TEST(TransactionTable, GetAndErase) {
  TransactionTable t;
  const TxId id = t.create(1, 10, 20, 30, 5, 0, 0.0).id;
  ASSERT_NE(t.get(id), nullptr);
  EXPECT_EQ(t.get(id)->donor, 10u);
  t.erase(id);
  EXPECT_EQ(t.get(id), nullptr);
  EXPECT_EQ(t.size(), 0u);
  t.erase(id);  // idempotent
}

TEST(TransactionTable, InvolvingIndexesAllRoles) {
  TransactionTable t;
  const TxId id = t.create(1, 10, 20, 30, 5, 0, 0.0).id;
  for (PeerId p : {10u, 20u, 30u}) {
    const auto v = t.involving(p);
    ASSERT_EQ(v.size(), 1u) << p;
    EXPECT_EQ(v[0], id);
  }
  EXPECT_TRUE(t.involving(99).empty());
  t.erase(id);
  for (PeerId p : {10u, 20u, 30u}) EXPECT_TRUE(t.involving(p).empty());
}

TEST(TransactionTable, DirectReciprocityIndexesDonorOnce) {
  TransactionTable t;
  // payee == donor (direct reciprocity): donor must appear once.
  const TxId id = t.create(1, 10, 20, 10, 5, 0, 0.0).id;
  EXPECT_EQ(t.involving(10).size(), 1u);
  t.erase(id);
  EXPECT_TRUE(t.involving(10).empty());
}

TEST(TransactionTable, TerminalTxHasNoPayee) {
  TransactionTable t;
  const auto& tx = t.create(1, 10, 20, net::kNoPeer, 5, 0, 0.0);
  EXPECT_FALSE(tx.encrypted());
  EXPECT_TRUE(t.involving(20).size() == 1);
}

TEST(TransactionTable, SetPayeeReindexes) {
  TransactionTable t;
  const TxId id = t.create(1, 10, 20, 30, 5, 0, 0.0).id;
  t.set_payee(id, 40);
  EXPECT_TRUE(t.involving(30).empty());
  ASSERT_EQ(t.involving(40).size(), 1u);
  EXPECT_EQ(t.get(id)->payee, 40u);
  // Reassigning to the donor itself must not double-index.
  t.set_payee(id, 10);
  EXPECT_EQ(t.involving(10).size(), 1u);
}

TEST(TransactionTable, InvolvingWithManyTransactions) {
  TransactionTable t;
  std::vector<TxId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(t.create(1, 10, static_cast<PeerId>(20 + i), 30, 5, 0, 0.0).id);
  EXPECT_EQ(t.involving(10).size(), 10u);
  EXPECT_EQ(t.involving(30).size(), 10u);
  EXPECT_EQ(t.involving(25).size(), 1u);
  t.erase(ids[3]);
  EXPECT_EQ(t.involving(10).size(), 9u);
}

TEST(TxState, Names) {
  EXPECT_STREQ(tx_state_name(TxState::kUploading), "uploading");
  EXPECT_STREQ(tx_state_name(TxState::kAwaitKey), "await-key");
  EXPECT_STREQ(tx_state_name(TxState::kCompleted), "completed");
  EXPECT_STREQ(tx_state_name(TxState::kTerminal), "terminal");
  EXPECT_STREQ(tx_state_name(TxState::kDead), "dead");
}

}  // namespace
}  // namespace tc::core
