#include "src/core/pending.h"

#include <gtest/gtest.h>

namespace tc::core {
namespace {

TEST(PendingTracker, StartsEmptyAndEligible) {
  PendingTracker t(2);
  EXPECT_EQ(t.pending(5), 0);
  EXPECT_TRUE(t.eligible(5));
  EXPECT_EQ(t.total_pending(), 0u);
}

TEST(PendingTracker, BansAtCap) {
  PendingTracker t(2);
  t.add(5);
  EXPECT_TRUE(t.eligible(5));
  t.add(5);
  EXPECT_FALSE(t.eligible(5));  // k = 2 outstanding => banned
  EXPECT_EQ(t.pending(5), 2);
  t.resolve(5);
  EXPECT_TRUE(t.eligible(5));
}

TEST(PendingTracker, ResolveIsIdempotentAtZero) {
  PendingTracker t(2);
  t.resolve(7);  // never added
  EXPECT_EQ(t.pending(7), 0);
  EXPECT_EQ(t.total_pending(), 0u);
}

TEST(PendingTracker, PerNeighborIndependence) {
  PendingTracker t(1);
  t.add(1);
  EXPECT_FALSE(t.eligible(1));
  EXPECT_TRUE(t.eligible(2));
  EXPECT_EQ(t.total_pending(), 1u);
}

TEST(PendingTracker, ForgetClearsHistory) {
  PendingTracker t(2);
  t.add(5);
  t.add(5);
  t.add(6);
  EXPECT_EQ(t.total_pending(), 3u);
  t.forget(5);  // the whitewash reset
  EXPECT_TRUE(t.eligible(5));
  EXPECT_EQ(t.total_pending(), 1u);
  EXPECT_EQ(t.tracked_neighbors(), 1u);
}

TEST(PendingTracker, CapValidation) {
  EXPECT_THROW(PendingTracker(0), std::invalid_argument);
  PendingTracker t(1);
  EXPECT_EQ(t.cap(), 1);
}

TEST(PendingTracker, FreeRiderAccumulatesAndStaysBanned) {
  // The §II-D2 scenario: uploads to a non-reciprocating neighbor pile up
  // and it is banned until (never) resolving.
  PendingTracker t(2);
  t.add(9);
  t.add(9);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(t.eligible(9));
  // A compliant neighbor cycles fine.
  for (int i = 0; i < 10; ++i) {
    t.add(4);
    EXPECT_TRUE(t.eligible(4));
    t.resolve(4);
  }
}

}  // namespace
}  // namespace tc::core
