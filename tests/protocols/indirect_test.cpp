// EigenTrust and Dandelion (Table II's indirect-reciprocity baselines).
#include <gtest/gtest.h>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/indirect.h"

namespace tc::protocols {
namespace {

using F = analysis::SwarmMetrics::PeerFilter;

bt::SwarmConfig cfg_for(bt::Protocol& proto, std::size_t leechers,
                        double freeriders = 0.0) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.piece_bytes = proto.default_piece_bytes();
  cfg.file_bytes = 32 * cfg.piece_bytes;
  cfg.freerider_fraction = freeriders;
  cfg.seed = 8;
  cfg.max_sim_time = 60'000.0;
  cfg.freerider_stall_timeout = 1200.0;
  return cfg;
}

TEST(EigenTrust, CompliantSwarmCompletes) {
  EigenTrustProtocol proto;
  bt::Swarm swarm(cfg_for(proto, 20), proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
}

TEST(EigenTrust, ContributorsEarnTrustFreeRidersDoNot) {
  EigenTrustProtocol proto;
  auto cfg = cfg_for(proto, 20, 0.25);
  cfg.freerider_whitewash = false;
  cfg.freerider_large_view = false;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  // By the end the seeder (pre-trusted) and steady contributors carry
  // trust; free-riders never earn any (nobody reports satisfaction with
  // them).
  EXPECT_GT(proto.trust(swarm.seeder_id()), 0.0);
  for (const auto* rec : swarm.metrics().all()) {
    if (!rec->seeder && rec->freerider) {
      EXPECT_LE(proto.trust(rec->id), 1e-9) << rec->id;
    }
  }
}

TEST(EigenTrust, WhitewashersKeepMilkingTheNewcomerAllotment) {
  // The 10% newcomer allotment is exactly what whitewashing exploits
  // (§V: "those resources have been the target of strategic free-riders").
  EigenTrustProtocol proto;
  auto cfg = cfg_for(proto, 20, 0.25);
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  const auto& m = swarm.metrics();
  // Free-riders make progress despite zero trust.
  std::int64_t fr_pieces = 0;
  for (const auto* rec : m.all()) {
    if (!rec->seeder && rec->freerider) fr_pieces += rec->pieces_downloaded;
  }
  EXPECT_GT(fr_pieces, 0);
}

TEST(Dandelion, CompliantSwarmCompletes) {
  DandelionProtocol proto;
  bt::Swarm swarm(cfg_for(proto, 20), proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
}

TEST(Dandelion, CreditBlocksPersistentFreeRiding) {
  DandelionProtocol proto;
  auto cfg = cfg_for(proto, 20, 0.25);
  cfg.freerider_whitewash = false;  // no identity games
  cfg.freerider_large_view = false;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  // Without whitewashing, a free-rider can spend only its initial credit.
  for (const auto* rec : swarm.metrics().all()) {
    if (!rec->seeder && rec->freerider) {
      EXPECT_LE(rec->pieces_downloaded,
                static_cast<std::int64_t>(DandelionProtocol::kInitialCredit))
          << rec->id;
      EXPECT_FALSE(rec->finished());
    }
  }
}

TEST(Dandelion, WhitewashingReMintsInitialCredit) {
  // The weakness the paper points at: initial credit is granted per
  // identity, so whitewashers finance themselves by re-joining.
  DandelionProtocol proto;
  auto cfg = cfg_for(proto, 20, 0.25);
  cfg.freerider_whitewash = true;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  std::int64_t fr_pieces = 0;
  for (const auto* rec : swarm.metrics().all()) {
    if (!rec->seeder && rec->freerider) fr_pieces += rec->pieces_downloaded;
  }
  // Substantially more than one initial allotment per free-rider.
  EXPECT_GT(fr_pieces, 5 * static_cast<std::int64_t>(
                               DandelionProtocol::kInitialCredit));
}

TEST(Dandelion, SeederAccumulatesEarningsAndNobodyGoesNegative) {
  DandelionProtocol proto;
  bt::Swarm swarm(cfg_for(proto, 10), proto);
  swarm.run();
  // The seeder only uploads, so its balance can only grow from the mint.
  EXPECT_GE(proto.credit(swarm.seeder_id()),
            DandelionProtocol::kInitialCredit);
  // The server's payment check means no live balance is ever negative.
  for (bt::PeerId id : swarm.active_peers()) {
    EXPECT_GE(proto.credit(id), 0.0) << id;
  }
}

}  // namespace
}  // namespace tc::protocols
