// End-to-end T-Chain protocol behaviour on small swarms: the paper's core
// claims as executable properties.
#include "src/protocols/tchain.h"

#include <gtest/gtest.h>

#include "src/analysis/metrics.h"
#include "src/obs/chain_view.h"

namespace tc::protocols {
namespace {

using F = analysis::SwarmMetrics::PeerFilter;

bt::SwarmConfig small_config(std::size_t leechers, double freeriders = 0.0) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.file_bytes = 2 * util::kMiB;  // 32 pieces of 64 KiB
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.freerider_fraction = freeriders;
  cfg.seed = 11;
  cfg.max_sim_time = 20'000.0;
  cfg.freerider_stall_timeout = 500.0;
  return cfg;
}

TEST(TChain, AllCompliantLeechersFinish) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(30), proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().completion_times(F::kCompliant).count(), 30u);
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
}

TEST(TChain, PieceAccountingBalances) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(20), proto);
  swarm.run();
  const auto& st = proto.stats();
  // Every piece any leecher completed arrived either encrypted (then a key
  // was released) or as a terminal plain upload.
  EXPECT_EQ(st.keys_released + st.terminal_uploads, 20u * 32u);
  EXPECT_EQ(st.keys_released,
            st.encrypted_uploads);  // no encrypted upload left unpaid
}

TEST(TChain, FreeRidersNeverComplete) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(24, 0.25), proto);
  swarm.run();
  const auto& m = swarm.metrics();
  EXPECT_EQ(m.completion_times(F::kFreeRiders).count(), 0u);
  EXPECT_EQ(m.unfinished_count(F::kFreeRiders), 6u);
  // And compliant leechers are unharmed: all finish.
  EXPECT_EQ(m.completion_times(F::kCompliant).count(), 18u);
}

TEST(TChain, FreeRidersCompleteZeroPieces) {
  TChainProtocol proto;
  auto cfg = small_config(24, 0.25);
  cfg.freerider_whitewash = false;  // keep one record per free-rider
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  for (const auto* rec : swarm.metrics().all()) {
    if (rec->freerider) {
      // Strays can leak through rare chain terminations toward neighbors in
      // good standing, but free-riders must stay far from completion (the
      // paper's fig. 7(b): zero free-riders finish).
      EXPECT_LT(rec->pieces_downloaded, 16)
          << "free-rider " << rec->id << " got too many pieces";
      EXPECT_FALSE(rec->finished());
    }
  }
}

TEST(TChain, CollusionLetsFreeRidersProgressSlowly) {
  TChainProtocol proto;
  auto cfg = small_config(24, 0.25);
  cfg.freerider_collude = true;
  cfg.freerider_whitewash = false;
  cfg.freerider_stall_timeout = 2000.0;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  // With false receipts, colluders DO decrypt some pieces (§IV-D)...
  std::int64_t colluder_pieces = 0;
  for (const auto* rec : swarm.metrics().all()) {
    if (rec->freerider) colluder_pieces += rec->pieces_downloaded;
  }
  EXPECT_GT(colluder_pieces, 0);
  EXPECT_GT(proto.stats().false_receipts, 0u);
  // ...but compliant leechers all finish regardless.
  EXPECT_EQ(swarm.metrics().completion_times(F::kCompliant).count(), 18u);
}

TEST(TChain, ChainsFormAndTerminate) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(20), proto);
  obs::TraceConfig tc;
  tc.kind_mask = obs::kChainKinds;
  swarm.enable_obs(tc);
  swarm.run();
  const auto& chains = proto.chains();
  EXPECT_GT(chains.total_created(), 0u);
  EXPECT_GT(chains.mean_terminated_length(), 1.0);  // chains actually grow
  // At the end all leechers are gone: no chain can still be active.
  EXPECT_EQ(chains.active_count(), 0u);
  // The census series is reconstructed from trace events and agrees with
  // the live registry's final counters.
  const auto view = obs::ChainView::reconstruct(swarm.obs()->events());
  EXPECT_GT(view.census().size(), 2u);
  EXPECT_EQ(view.total_created(), chains.total_created());
  EXPECT_EQ(view.active_at_end(), chains.active_count());
  EXPECT_NEAR(view.mean_terminated_length(), chains.mean_terminated_length(),
              1e-12);
}

TEST(TChain, OpportunisticSeedingCreatesLeecherChains) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(30), proto);
  swarm.run();
  EXPECT_GT(proto.chains().created_by_leechers(), 0u);
  EXPECT_GT(proto.chains().created_by_seeder(), 0u);
}

TEST(TChain, DisablingOpportunisticSeedingStillCompletes) {
  TChainProtocol proto;
  auto cfg = small_config(20);
  cfg.opportunistic_seeding = false;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
  EXPECT_EQ(proto.chains().created_by_leechers(), 0u);
}

TEST(TChain, IndirectOnlyAblationStillCompletes) {
  TChainProtocol proto;
  auto cfg = small_config(20);
  cfg.allow_direct_reciprocity = false;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
  EXPECT_EQ(proto.stats().direct_payees, 0u);
  EXPECT_GT(proto.stats().indirect_payees, 0u);
}

TEST(TChain, DirectAndIndirectBothOccurByDefault) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(20), proto);
  swarm.run();
  EXPECT_GT(proto.stats().direct_payees, 0u);
  EXPECT_GT(proto.stats().indirect_payees, 0u);
}

TEST(TChain, NewcomerBootstrapForwardsHappen) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(30), proto);
  swarm.run();
  EXPECT_GT(proto.stats().bootstrap_forwards, 0u);
}

TEST(TChain, SingleLeecherDegeneratesToPlainSeeding) {
  // §II-B3 extreme case: one seeder + one leecher => unencrypted uploads.
  TChainProtocol proto;
  bt::Swarm swarm(small_config(1), proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
  EXPECT_EQ(proto.stats().encrypted_uploads, 0u);
  EXPECT_EQ(proto.stats().terminal_uploads, 32u);
}

TEST(TChain, TwoLeechersUseDirectReciprocity) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(2), proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
  EXPECT_GT(proto.stats().direct_payees, 0u);
}

TEST(TChain, DeterministicGivenSeed) {
  auto run_once = [] {
    TChainProtocol proto;
    bt::Swarm swarm(small_config(15), proto);
    swarm.run();
    return swarm.metrics().completion_times(F::kCompliant).mean();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(TChain, DifferentSeedsDiffer) {
  auto run_with_seed = [](std::uint64_t s) {
    TChainProtocol proto;
    auto cfg = small_config(15);
    cfg.seed = s;
    bt::Swarm swarm(cfg, proto);
    swarm.run();
    return swarm.metrics().completion_times(F::kCompliant).mean();
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(TChain, FlowControlBansNonReciprocatingNeighbors) {
  TChainProtocol proto;
  auto cfg = small_config(12, 0.25);
  cfg.freerider_whitewash = false;
  cfg.freerider_large_view = false;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  // Without whitewashing, each donor uploads at most `pending_cap`
  // encrypted pieces to a non-reciprocating neighbor before banning it
  // (§II-D2), so a free-rider's total received bytes are bounded by
  // cap * (#potential donors) * piece size. 12 leechers => 9 compliant
  // donors + the seeder.
  const double bound = static_cast<double>(cfg.pending_cap) * 10.0 *
                       static_cast<double>(cfg.piece_bytes);
  std::size_t fr_n = 0;
  for (const auto* rec : swarm.metrics().all()) {
    if (rec->seeder || !rec->freerider) continue;
    ++fr_n;
    // Decrypted pieces only leak through rare terminal gifts; encrypted
    // traffic toward a free-rider is capped by flow control.
    EXPECT_LT(rec->pieces_downloaded, 8) << rec->id;
    EXPECT_LE(rec->bytes_downloaded, 2.0 * bound) << rec->id;
    EXPECT_FALSE(rec->finished());
  }
  ASSERT_GT(fr_n, 0u);
}

TEST(TChain, PendingCapRespectedDuringRun) {
  TChainProtocol proto;
  bt::Swarm swarm(small_config(10), proto);
  swarm.run();
  // All obligations settled at the end of a clean run.
  EXPECT_EQ(proto.transactions().size(), 0u);
}

}  // namespace
}  // namespace tc::protocols
