// Fault-injection resilience: T-Chain under control-message loss, abrupt
// crashes, graceful churn and upload outages — plus the determinism guard
// (faults draw only from the seeded fault stream, never wall clock) and
// focused coverage of the §II-B4 escrow path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/tchain.h"

namespace tc::protocols {
namespace {

using F = analysis::SwarmMetrics::PeerFilter;

bt::SwarmConfig faulty_cfg(std::uint64_t seed) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = 24;
  cfg.file_bytes = 2 * util::kMiB;
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.seed = seed;
  cfg.max_sim_time = 20'000.0;
  cfg.tx_timeout = 15.0;
  cfg.tx_max_retries = 2;
  cfg.faults.control_loss = 0.10;
  cfg.faults.control_jitter = 0.02;
  cfg.faults.session_kind = sim::FaultPlan::SessionKind::kLogNormal;
  cfg.faults.mean_session = 150.0;
  cfg.faults.session_sigma = 1.0;
  cfg.faults.crash_fraction = 0.5;
  cfg.faults.outage_rate = 0.002;
  cfg.faults.outage_mean_duration = 10.0;
  return cfg;
}

// Serializes everything a run produced, bit-exactly (hexfloat), so two
// runs can be compared byte for byte.
std::string fingerprint(const bt::Swarm& swarm, const TChainProtocol& proto) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto* r : swarm.metrics().all()) {
    os << r->id << ' ' << r->seeder << ' ' << r->freerider << ' '
       << r->join_time << ' ' << r->finish_time << ' ' << r->depart_time
       << ' ' << r->pieces_uploaded << ' ' << r->pieces_downloaded << ' '
       << r->bytes_uploaded << ' ' << r->bytes_downloaded << ' '
       << r->whitewash_count << '\n';
  }
  const auto& rs = swarm.metrics().resilience();
  os << "crashes=" << rs.crashes << " churn=" << rs.churn_departures
     << " ctl=" << rs.control_sent << '/' << rs.control_dropped
     << " outages=" << rs.upload_outages
     << " timeouts=" << rs.transactions_timed_out
     << " keys_lost=" << rs.keys_lost
     << " escrow_recovered=" << rs.keys_escrow_recovered
     << " refetches=" << rs.piece_refetches << '\n';
  const auto& st = proto.stats();
  os << st.encrypted_uploads << ' ' << st.terminal_uploads << ' '
     << st.receipts << ' ' << st.keys_released << ' ' << st.keys_escrowed
     << ' ' << st.keys_escrow_released << ' ' << st.keys_lost << ' '
     << st.tx_retries << ' ' << st.tx_timeouts << ' ' << st.receipts_resent
     << ' ' << st.piece_refetches << ' ' << st.payee_reassignments << '\n';
  os << "end=" << swarm.end_time() << '\n';
  return os.str();
}

std::string run_fingerprint(const bt::SwarmConfig& cfg) {
  TChainProtocol proto;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  return fingerprint(swarm, proto);
}

TEST(TChainResilience, SameSeedSamePlanIsByteIdentical) {
  for (std::uint64_t seed : {1ull, 9ull}) {
    const auto cfg = faulty_cfg(seed);
    EXPECT_EQ(run_fingerprint(cfg), run_fingerprint(cfg)) << "seed " << seed;
  }
}

TEST(TChainResilience, DifferentPlansDiverge) {
  const auto base = faulty_cfg(3);
  auto heavier = base;
  heavier.faults.control_loss = 0.25;
  EXPECT_NE(run_fingerprint(base), run_fingerprint(heavier));
}

TEST(TChainResilience, LossAndCrashesStillComplete) {
  // Acceptance: 10% control-message loss plus mid-download crashes — every
  // leecher that stayed finishes, nothing hangs, no pending-count leaks.
  std::uint64_t total_crashes = 0, total_timeouts = 0, total_refetch = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TChainProtocol proto;
    auto cfg = faulty_cfg(seed);
    cfg.faults.crash_fraction = 1.0;  // every churn exit is a crash
    bt::Swarm swarm(cfg, proto);
    swarm.run();

    // No survivor is left unfinished.
    std::size_t stayed_unfinished = 0;
    for (const auto* rec : swarm.metrics().all()) {
      if (rec->seeder) continue;
      if (rec->depart_time >= 0 && !rec->finished()) continue;  // churned out
      if (!rec->finished()) ++stayed_unfinished;
    }
    EXPECT_EQ(stayed_unfinished, 0u) << "seed " << seed;
    // No leaked transactions or chains.
    EXPECT_EQ(proto.transactions().size(), 0u) << "seed " << seed;
    EXPECT_EQ(proto.chains().active_count(), 0u) << "seed " << seed;
    // The run actually suffered: faults fired and were absorbed.
    const auto& rs = swarm.metrics().resilience();
    EXPECT_GT(rs.control_dropped, 0u) << "seed " << seed;
    total_crashes += rs.crashes;
    total_timeouts += proto.stats().tx_timeouts + proto.stats().tx_retries;
    total_refetch += rs.piece_refetches;
  }
  EXPECT_GT(total_crashes, 0u);
  EXPECT_GT(total_timeouts, 0u);
  EXPECT_GT(total_refetch, 0u);
}

// Finds a live transaction in AwaitKey whose donor could hand its key to a
// distinct, active payee — i.e. one where §II-B4 escrow WOULD happen on a
// graceful exit. Returns 0 if none exists right now.
core::TxId find_escrowable_tx(bt::Swarm& swarm, const TChainProtocol& proto) {
  for (bt::PeerId id : swarm.active_peers()) {
    const bt::Peer* p = swarm.peer(id);
    if (p == nullptr || p->seeder) continue;
    for (core::TxId txid : proto.transactions().involving(id)) {
      const core::Transaction* tx = proto.transactions().get(txid);
      if (tx == nullptr || tx->state != core::TxState::kAwaitKey) continue;
      if (tx->donor != id || tx->key_escrowed) continue;
      if (tx->payee == net::kNoPeer || tx->payee == id) continue;
      if (!swarm.is_active(tx->payee)) continue;
      return txid;
    }
  }
  return 0;
}

TEST(TChainResilience, CrashForfeitsEscrowGracefulGrantsIt) {
  // The same situation — a donor with a key owed and a live payee to hold
  // it — settles opposite ways depending on HOW the donor leaves: a crash
  // loses the key outright, a graceful departure escrows it (§II-B4).
  bool crash_probed = false, graceful_probed = false;
  for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
    for (const bool crash : {true, false}) {
      TChainProtocol proto;
      bt::SwarmConfig cfg;
      cfg.leecher_count = 24;
      cfg.file_bytes = 2 * util::kMiB;
      cfg.piece_bytes = 64 * util::kKiB;
      cfg.seed = seed;
      cfg.max_sim_time = 20'000.0;
      bt::Swarm swarm(cfg, proto);
      bool probed = false;
      for (int k = 1; k <= 20 ; ++k) {
        swarm.simulator().schedule_at(
            2.0 * k, [&swarm, &proto, &probed, crash] {
              if (probed) return;
              const core::TxId txid = find_escrowable_tx(swarm, proto);
              if (txid == 0) return;
              const core::Transaction* tx = proto.transactions().get(txid);
              const bt::PeerId donor = tx->donor;
              const auto escrowed_before = proto.stats().keys_escrowed;
              const auto lost_before = proto.stats().keys_lost;
              swarm.depart(donor, crash ? bt::DepartKind::kCrash
                                        : bt::DepartKind::kGraceful);
              if (crash) {
                // No goodbye: the key dies with the donor.
                EXPECT_EQ(proto.stats().keys_escrowed, escrowed_before);
                EXPECT_GT(proto.stats().keys_lost, lost_before);
                EXPECT_EQ(proto.transactions().get(txid), nullptr);
              } else {
                // Handoff: the payee now holds the key.
                EXPECT_GT(proto.stats().keys_escrowed, escrowed_before);
                const core::Transaction* still = proto.transactions().get(txid);
                ASSERT_NE(still, nullptr);
                EXPECT_TRUE(still->key_escrowed);
              }
              probed = true;
            });
      }
      swarm.run();
      EXPECT_EQ(proto.transactions().size(), 0u)
          << "seed " << seed << " crash=" << crash;
      (crash ? crash_probed : graceful_probed) |= probed;
    }
  }
  EXPECT_TRUE(crash_probed) << "no crash scenario ever materialized";
  EXPECT_TRUE(graceful_probed) << "no graceful scenario ever materialized";
}

TEST(TChainResilience, OutagesAloneDoNotLoseData) {
  // Transient upload outages stall flows but must not corrupt anything:
  // everyone still finishes, and outages were actually injected.
  TChainProtocol proto;
  bt::SwarmConfig cfg;
  cfg.leecher_count = 16;
  cfg.file_bytes = util::kMiB;
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.seed = 8;
  cfg.max_sim_time = 20'000.0;
  cfg.faults.outage_rate = 0.01;
  cfg.faults.outage_mean_duration = 5.0;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  EXPECT_GT(swarm.metrics().resilience().upload_outages, 0u);
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
  EXPECT_EQ(proto.transactions().size(), 0u);
}

// --- §II-B4 escrow path (satellite: previously untested) -------------------

TEST(TChainEscrow, GracefulDonorDepartureEscrowsAndPayeeReleases) {
  // Depart the most-complete leechers (the busiest donors) gracefully and
  // often: their AwaitKey transactions must escrow with payees, and at
  // least some escrowed keys must be released on reciprocation.
  std::uint64_t escrowed = 0, released = 0, recovered_metric = 0;
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    TChainProtocol proto;
    bt::SwarmConfig cfg;
    cfg.leecher_count = 30;
    cfg.file_bytes = 2 * util::kMiB;
    cfg.piece_bytes = 64 * util::kKiB;
    cfg.seed = seed;
    cfg.max_sim_time = 20'000.0;
    bt::Swarm swarm(cfg, proto);
    for (int k = 1; k <= 12; ++k) {
      swarm.simulator().schedule_at(4.0 * k, [&swarm] {
        bt::PeerId best = net::kNoPeer;
        std::size_t most = 0;
        for (bt::PeerId id : swarm.active_peers()) {
          const bt::Peer* p = swarm.peer(id);
          if (p == nullptr || p->seeder || p->have.complete()) continue;
          if (p->have.count() >= most) {
            most = p->have.count();
            best = id;
          }
        }
        if (best != net::kNoPeer) swarm.depart(best);
      });
    }
    swarm.run();
    escrowed += proto.stats().keys_escrowed;
    released += proto.stats().keys_escrow_released;
    recovered_metric += swarm.metrics().resilience().keys_escrow_recovered;
    // Released keys are a subset of escrowed ones, and both count as
    // regular key releases too.
    EXPECT_LE(proto.stats().keys_escrow_released, proto.stats().keys_escrowed)
        << "seed " << seed;
    EXPECT_LE(proto.stats().keys_escrow_released, proto.stats().keys_released)
        << "seed " << seed;
    EXPECT_EQ(proto.transactions().size(), 0u) << "seed " << seed;
  }
  EXPECT_GT(escrowed, 0u);
  EXPECT_GT(released, 0u) << "no payee ever released an escrowed key";
  EXPECT_EQ(released, recovered_metric)
      << "protocol stat and resilience metric disagree";
}

}  // namespace
}  // namespace tc::protocols
