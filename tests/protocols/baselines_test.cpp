// Baseline protocols (BitTorrent, PropShare, FairTorrent, RandomBT):
// completion sanity plus the scheme-specific behaviours the paper leans on.
#include <gtest/gtest.h>

#include "src/analysis/metrics.h"
#include "src/protocols/choking.h"
#include "src/protocols/fairtorrent.h"
#include "src/protocols/registry.h"

namespace tc::protocols {
namespace {

using F = analysis::SwarmMetrics::PeerFilter;

bt::SwarmConfig small_config(bt::Protocol& proto, std::size_t leechers,
                             double freeriders = 0.0) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.piece_bytes = proto.default_piece_bytes();
  cfg.file_bytes = 32 * cfg.piece_bytes;  // 32 pieces for every protocol
  cfg.freerider_fraction = freeriders;
  cfg.seed = 5;
  cfg.max_sim_time = 60'000.0;
  cfg.freerider_stall_timeout = 2000.0;
  return cfg;
}

class BaselineCompletes : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineCompletes, AllCompliantLeechersFinish) {
  auto proto = make_protocol(GetParam());
  bt::Swarm swarm(small_config(*proto, 20), *proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u)
      << GetParam();
  EXPECT_EQ(swarm.metrics().completion_times(F::kCompliant).count(), 20u);
}

TEST_P(BaselineCompletes, DeterministicGivenSeed) {
  auto run_once = [&] {
    auto proto = make_protocol(GetParam());
    bt::Swarm swarm(small_config(*proto, 10), *proto);
    swarm.run();
    return swarm.metrics().completion_times(F::kCompliant).mean();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineCompletes,
                         ::testing::Values("bittorrent", "propshare",
                                           "fairtorrent", "randombt"));

TEST(Registry, KnownAndUnknownNames) {
  EXPECT_EQ(make_protocol("tchain")->name(), "T-Chain");
  EXPECT_EQ(make_protocol("T-Chain")->name(), "T-Chain");
  EXPECT_EQ(make_protocol("bt")->name(), "BitTorrent");
  EXPECT_EQ(make_protocol("random")->name(), "RandomBT");
  EXPECT_THROW(make_protocol("gnutella"), std::invalid_argument);
  EXPECT_EQ(paper_protocols().size(), 4u);
}

TEST(Registry, PieceSizesMatchPaper) {
  EXPECT_EQ(make_protocol("bittorrent")->default_piece_bytes(), 256 * 1024);
  EXPECT_EQ(make_protocol("propshare")->default_piece_bytes(), 256 * 1024);
  EXPECT_EQ(make_protocol("fairtorrent")->default_piece_bytes(), 64 * 1024);
  EXPECT_EQ(make_protocol("tchain")->default_piece_bytes(), 64 * 1024);
}

TEST(BitTorrent, FreeRidersFinishSlowerThanCompliant) {
  auto proto = make_protocol("bittorrent");
  bt::Swarm swarm(small_config(*proto, 20, 0.25), *proto);
  swarm.run();
  const auto& m = swarm.metrics();
  const auto compliant = m.completion_times(F::kCompliant);
  const auto fr = m.completion_times(F::kFreeRiders);
  ASSERT_GT(compliant.count(), 0u);
  // Free-riders exploit optimistic unchokes + seeder altruism: they do
  // finish (the paper's point), but much slower.
  EXPECT_GT(fr.count() + m.unfinished_count(F::kFreeRiders), 0u);
  if (fr.count() > 0) {
    EXPECT_GT(fr.mean(), compliant.mean());
  }
}

TEST(FairTorrent, DeficitsTrackTransfersSymmetrically) {
  FairTorrentProtocol proto;
  bt::Swarm swarm(small_config(proto, 8), proto);
  swarm.run();
  // After completion everyone departed; deficit maps are cleaned up.
  // (behavioural check happens implicitly: the run finished without
  // starving anyone, which requires deficits to rotate service.)
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
}

TEST(FairTorrent, WhitewashingFreeRidersFinishFast) {
  FairTorrentProtocol proto;
  auto cfg = small_config(proto, 20, 0.25);
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  const auto& m = swarm.metrics();
  const auto fr = m.completion_times(F::kFreeRiders);
  // §IV-C: simple whitewashing lets FairTorrent free-riders finish.
  EXPECT_EQ(fr.count(), 5u);
  // Within the same order of magnitude as compliant leechers.
  const auto compliant = m.completion_times(F::kCompliant);
  EXPECT_LT(fr.mean(), 10.0 * compliant.mean());
}

TEST(FairTorrent, FasterThanBitTorrentWithoutFreeRiders) {
  // Fig 3(a): FairTorrent's full-rate deficit scheduling beats BT's
  // slot-based choking.
  auto ft = make_protocol("fairtorrent");
  bt::Swarm s1(small_config(*ft, 20), *ft);
  s1.run();
  auto bt_ = make_protocol("bittorrent");
  bt::Swarm s2(small_config(*bt_, 20), *bt_);
  s2.run();
  EXPECT_LT(s1.metrics().completion_times(F::kCompliant).mean(),
            s2.metrics().completion_times(F::kCompliant).mean());
}

TEST(Baselines, RateBasedSchemesRewardFasterUploaders) {
  // TFT and PropShare both allocate service by contribution, so the
  // 1200 Kbps class must finish ahead of the 400 Kbps class on average.
  for (const char* name : {"bittorrent", "propshare"}) {
    auto proto = make_protocol(name);
    auto cfg = small_config(*proto, 30);
    cfg.file_bytes = 96 * cfg.piece_bytes;  // enough pieces for rates to show
    cfg.leecher_upload_kbps = {400, 1200};
    bt::Swarm swarm(cfg, *proto);
    swarm.run();
    util::RunningStats slow, fast;
    for (const auto* rec : swarm.metrics().all()) {
      if (rec->seeder || !rec->finished()) continue;
      (rec->upload_kbps == 400 ? slow : fast).add(rec->completion_time());
    }
    ASSERT_GT(slow.count(), 0u) << name;
    ASSERT_GT(fast.count(), 0u) << name;
    EXPECT_GT(slow.mean(), fast.mean()) << name;
  }
}

TEST(Baselines, FreeRidersInBitTorrentLiveOffOptimisticSlots) {
  // With zero contribution, a free-rider's download rate should be a small
  // fraction of a compliant leecher's — bounded by optimistic unchokes and
  // seeder rotation, not TFT slots.
  auto proto = make_protocol("bittorrent");
  auto cfg = small_config(*proto, 20, 0.25);
  cfg.file_bytes = 96 * cfg.piece_bytes;
  cfg.freerider_whitewash = false;  // isolate the optimistic-slot channel
  cfg.freerider_large_view = false;
  bt::Swarm swarm(cfg, *proto);
  swarm.run();
  const auto& m = swarm.metrics();
  const auto compliant = m.completion_times(F::kCompliant);
  const auto fr = m.completion_times(F::kFreeRiders);
  ASSERT_GT(compliant.count(), 0u);
  // The §III-A1 exploit in action: contributing NOTHING, free-riders still
  // complete the whole file off optimistic unchokes and seeder rotation —
  // merely somewhat slower than compliant peers. (T-Chain's counterpart
  // test asserts zero completions.)
  EXPECT_EQ(fr.count() + m.unfinished_count(F::kFreeRiders), 5u);
  EXPECT_GT(fr.count(), 0u);
  EXPECT_GT(fr.mean(), compliant.mean());
}

TEST(Baselines, UplinkUtilizationIsMeaningful) {
  for (const auto& name : paper_protocols()) {
    auto proto = make_protocol(name);
    bt::Swarm swarm(small_config(*proto, 16), *proto);
    swarm.run();
    const double u = swarm.metrics().mean_uplink_utilization(
        F::kCompliant, swarm.end_time());
    EXPECT_GT(u, 0.2) << name;
    EXPECT_LE(u, 1.0) << name;
  }
}

}  // namespace
}  // namespace tc::protocols
