// §II-B4 departure handling, exercised deterministically against the live
// protocol: donors leaving mid-exchange (key escrow), payees leaving
// (reassignment), and requestors leaving (obligation death).
#include <gtest/gtest.h>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/tchain.h"

namespace tc::protocols {
namespace {

using F = analysis::SwarmMetrics::PeerFilter;

bt::SwarmConfig cfg_for(std::size_t leechers, std::uint64_t seed) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.file_bytes = 2 * util::kMiB;
  cfg.piece_bytes = 64 * util::kKiB;
  cfg.seed = seed;
  cfg.max_sim_time = 20'000.0;
  return cfg;
}

TEST(TChainDepartures, RandomDeparturesNeverWedgeTheSwarm) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TChainProtocol proto;
    auto cfg = cfg_for(24, seed);
    bt::Swarm swarm(cfg, proto);
    util::Rng chaos(seed * 1337);
    // Remove a random active leecher every 7 s for a while — donors,
    // requestors and payees alike get yanked.
    for (int k = 1; k <= 8; ++k) {
      swarm.simulator().schedule_at(7.0 * k, [&swarm, &chaos] {
        std::vector<bt::PeerId> live;
        for (bt::PeerId id : swarm.active_peers()) {
          const bt::Peer* p = swarm.peer(id);
          if (p != nullptr && !p->seeder && !p->have.complete())
            live.push_back(id);
        }
        if (!live.empty()) swarm.depart(live[chaos.index(live.size())]);
      });
    }
    swarm.run();
    // Whoever remained finished; the transaction table drained.
    std::size_t stayed_unfinished = 0;
    for (const auto* rec : swarm.metrics().all()) {
      if (rec->seeder) continue;
      if (rec->depart_time >= 0 && !rec->finished()) continue;  // yanked
      if (!rec->finished()) ++stayed_unfinished;
    }
    EXPECT_EQ(stayed_unfinished, 0u) << "seed " << seed;
    EXPECT_EQ(proto.transactions().size(), 0u) << "seed " << seed;
    EXPECT_EQ(proto.chains().active_count(), 0u) << "seed " << seed;
  }
}

TEST(TChainDepartures, KeyEscrowHappensWhenDonorsLeave) {
  // Aggressive departures of nearly-complete peers (likely donors with
  // outstanding AwaitKey transactions) must produce escrow events without
  // wedging anything.
  TChainProtocol proto;
  auto cfg = cfg_for(30, 5);
  bt::Swarm swarm(cfg, proto);
  for (int k = 1; k <= 12; ++k) {
    swarm.simulator().schedule_at(4.0 * k, [&swarm] {
      // Depart the peer with the most pieces (the busiest donor).
      bt::PeerId best = net::kNoPeer;
      std::size_t most = 0;
      for (bt::PeerId id : swarm.active_peers()) {
        const bt::Peer* p = swarm.peer(id);
        if (p == nullptr || p->seeder || p->have.complete()) continue;
        if (p->have.count() >= most) {
          most = p->have.count();
          best = id;
        }
      }
      if (best != net::kNoPeer) swarm.depart(best);
    });
  }
  swarm.run();
  // The mechanism exists and fired (or the run legitimately avoided it,
  // which at this departure pressure is not plausible).
  EXPECT_GT(proto.stats().keys_escrowed + proto.stats().payee_reassignments,
            0u);
  EXPECT_EQ(proto.transactions().size(), 0u);
}

TEST(TChainDepartures, ReassignmentKeepsChainsAlive) {
  TChainProtocol proto;
  auto cfg = cfg_for(30, 6);
  bt::Swarm swarm(cfg, proto);
  // Departure chaos targeting random peers (payees among them).
  util::Rng chaos(99);
  for (int k = 1; k <= 10; ++k) {
    swarm.simulator().schedule_at(5.0 * k, [&swarm, &chaos] {
      std::vector<bt::PeerId> live;
      for (bt::PeerId id : swarm.active_peers()) {
        const bt::Peer* p = swarm.peer(id);
        if (p != nullptr && !p->seeder) live.push_back(id);
      }
      if (!live.empty()) swarm.depart(live[chaos.index(live.size())]);
    });
  }
  swarm.run();
  EXPECT_GT(proto.stats().payee_reassignments, 0u);
  // Everyone who wasn't forcibly departed finished.
  std::size_t stayed_unfinished = 0;
  for (const auto* rec : swarm.metrics().all()) {
    if (rec->seeder || rec->finished()) continue;
    if (rec->depart_time >= 0) continue;  // yanked by the chaos schedule
    ++stayed_unfinished;
  }
  EXPECT_EQ(stayed_unfinished, 0u);
}

TEST(TChainDepartures, WhitewashStormIsSurvivable) {
  // Free-riders whitewashing at maximum rate (after every banked piece,
  // §IV-C) while large-viewing: protocol state must stay consistent.
  TChainProtocol proto;
  auto cfg = cfg_for(24, 7);
  cfg.freerider_fraction = 0.5;
  cfg.freerider_whitewash = true;
  cfg.freerider_large_view = true;
  cfg.freerider_stall_timeout = 400.0;
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  EXPECT_EQ(swarm.metrics().unfinished_count(F::kCompliant), 0u);
  EXPECT_EQ(swarm.metrics().completion_times(F::kFreeRiders).count(), 0u);
  EXPECT_EQ(proto.transactions().size(), 0u);
}

}  // namespace
}  // namespace tc::protocols
