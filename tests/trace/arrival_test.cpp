#include "src/trace/arrival.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tc::trace {
namespace {

TEST(FlashCrowd, AllWithinWindowAndSorted) {
  util::Rng rng(1);
  FlashCrowdArrivals model(10.0);
  const auto t = model.generate(500, rng);
  ASSERT_EQ(t.size(), 500u);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  EXPECT_GE(t.front(), 0.0);
  EXPECT_LT(t.back(), 10.0);
}

TEST(FlashCrowd, SpreadsAcrossWindow) {
  util::Rng rng(2);
  FlashCrowdArrivals model(10.0);
  const auto t = model.generate(1000, rng);
  // Roughly uniform: each half should hold ~500.
  const auto mid = std::lower_bound(t.begin(), t.end(), 5.0) - t.begin();
  EXPECT_NEAR(static_cast<double>(mid), 500.0, 80.0);
}

TEST(Poisson, MeanInterarrivalMatchesRate) {
  util::Rng rng(3);
  PoissonArrivals model(2.0);  // 2 peers/s
  const auto t = model.generate(10000, rng);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  EXPECT_NEAR(t.back() / 10000.0, 0.5, 0.03);
}

TEST(RedHatTrace, RateDecaysFromPeak) {
  RedHatTraceArrivals model;
  EXPECT_GT(model.rate_at(0.0), model.rate_at(200'000.0));
  EXPECT_GE(model.rate_at(2'000'000.0),
            RedHatTraceArrivals::Params().floor_rate * 0.99);
}

TEST(RedHatTrace, GeneratesRequestedCountSorted) {
  util::Rng rng(4);
  RedHatTraceArrivals model;
  const auto t = model.generate(2000, rng);
  ASSERT_EQ(t.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
}

TEST(RedHatTrace, FrontLoaded) {
  util::Rng rng(5);
  RedHatTraceArrivals model;
  const auto t = model.generate(2000, rng);
  // More arrivals in the first e-folding than in the next equal span.
  const double span = RedHatTraceArrivals::Params().decay_seconds;
  const auto first = std::lower_bound(t.begin(), t.end(), span) - t.begin();
  const auto second =
      std::lower_bound(t.begin(), t.end(), 2 * span) - t.begin() - first;
  EXPECT_GT(first, second);
}

TEST(ArrivalModels, Names) {
  util::Rng rng(1);
  EXPECT_EQ(FlashCrowdArrivals().name(), "flash-crowd");
  EXPECT_EQ(PoissonArrivals(1.0).name(), "poisson");
  EXPECT_EQ(RedHatTraceArrivals().name(), "redhat9-like");
}

}  // namespace
}  // namespace tc::trace
