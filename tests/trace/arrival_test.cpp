#include "src/trace/arrival.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tc::trace {
namespace {

TEST(FlashCrowd, AllWithinWindowAndSorted) {
  util::Rng rng(1);
  FlashCrowdArrivals model(10.0);
  const auto t = model.generate(500, rng);
  ASSERT_EQ(t.size(), 500u);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  EXPECT_GE(t.front(), 0.0);
  EXPECT_LT(t.back(), 10.0);
}

TEST(FlashCrowd, SpreadsAcrossWindow) {
  util::Rng rng(2);
  FlashCrowdArrivals model(10.0);
  const auto t = model.generate(1000, rng);
  // Roughly uniform: each half should hold ~500.
  const auto mid = std::lower_bound(t.begin(), t.end(), 5.0) - t.begin();
  EXPECT_NEAR(static_cast<double>(mid), 500.0, 80.0);
}

TEST(Poisson, MeanInterarrivalMatchesRate) {
  util::Rng rng(3);
  PoissonArrivals model(2.0);  // 2 peers/s
  const auto t = model.generate(10000, rng);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  EXPECT_NEAR(t.back() / 10000.0, 0.5, 0.03);
}

TEST(RedHatTrace, RateDecaysFromPeak) {
  RedHatTraceArrivals model;
  EXPECT_GT(model.rate_at(0.0), model.rate_at(200'000.0));
  EXPECT_GE(model.rate_at(2'000'000.0),
            RedHatTraceArrivals::Params().floor_rate * 0.99);
}

TEST(RedHatTrace, GeneratesRequestedCountSorted) {
  util::Rng rng(4);
  RedHatTraceArrivals model;
  const auto t = model.generate(2000, rng);
  ASSERT_EQ(t.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
}

TEST(RedHatTrace, FrontLoaded) {
  util::Rng rng(5);
  RedHatTraceArrivals model;
  const auto t = model.generate(2000, rng);
  // More arrivals in the first e-folding than in the next equal span.
  const double span = RedHatTraceArrivals::Params().decay_seconds;
  const auto first = std::lower_bound(t.begin(), t.end(), span) - t.begin();
  const auto second =
      std::lower_bound(t.begin(), t.end(), 2 * span) - t.begin() - first;
  EXPECT_GT(first, second);
}

TEST(ArrivalModels, Names) {
  util::Rng rng(1);
  EXPECT_EQ(FlashCrowdArrivals().name(), "flash-crowd");
  EXPECT_EQ(PoissonArrivals(1.0).name(), "poisson");
  EXPECT_EQ(RedHatTraceArrivals().name(), "redhat9-like");
  EXPECT_EQ(ExponentialSessions(60.0).name(), "exp-sessions");
  EXPECT_EQ(LogNormalSessions(60.0, 1.0).name(), "lognormal-sessions");
}

TEST(SessionModels, ExponentialMeanMatches) {
  util::Rng rng(11);
  ExponentialSessions model(120.0);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double d = model.duration(rng);
    EXPECT_GT(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 120.0, 5.0);
}

TEST(SessionModels, LogNormalMedianAndTail) {
  util::Rng rng(12);
  LogNormalSessions model(100.0, 1.0);
  std::vector<double> d(20'000);
  for (auto& x : d) x = model.duration(rng);
  std::sort(d.begin(), d.end());
  // Median of exp(N(log 100, 1)) is 100; the tail is heavy (mean > median).
  EXPECT_NEAR(d[d.size() / 2], 100.0, 10.0);
  double mean = 0.0;
  for (double x : d) mean += x;
  mean /= static_cast<double>(d.size());
  EXPECT_GT(mean, d[d.size() / 2] * 1.3);
}

}  // namespace
}  // namespace tc::trace
