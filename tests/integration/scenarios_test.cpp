// Cross-protocol integration scenarios: determinism, forced mid-swarm
// departures (§II-B4 recovery), churn with replacement, and conservation
// invariants that must hold for every incentive scheme.
#include <gtest/gtest.h>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/registry.h"
#include "src/protocols/tchain.h"

namespace tc {
namespace {

using F = analysis::SwarmMetrics::PeerFilter;

bt::SwarmConfig scenario_config(bt::Protocol& proto, std::size_t leechers) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.piece_bytes = proto.default_piece_bytes();
  cfg.file_bytes = 32 * cfg.piece_bytes;
  cfg.seed = 21;
  cfg.max_sim_time = 50'000.0;
  cfg.freerider_stall_timeout = 800.0;
  return cfg;
}

class AllProtocols : public ::testing::TestWithParam<const char*> {};

TEST_P(AllProtocols, ByteConservationAcrossSwarm) {
  auto proto = protocols::make_protocol(GetParam());
  bt::Swarm swarm(scenario_config(*proto, 16), *proto);
  swarm.run();
  // Sum of all uploads equals sum of all downloads (per-peer recorded).
  double up = 0, down = 0;
  for (const auto* rec : swarm.metrics().all()) {
    up += rec->bytes_uploaded;
    down += rec->bytes_downloaded;
  }
  EXPECT_NEAR(up, down, 1.0) << GetParam();
  EXPECT_GT(up, 0.0);
}

TEST_P(AllProtocols, EveryCompletedLeecherDownloadedWholeFile) {
  auto proto = protocols::make_protocol(GetParam());
  auto cfg = scenario_config(*proto, 16);
  bt::Swarm swarm(cfg, *proto);
  swarm.run();
  for (const auto* rec : swarm.metrics().all()) {
    if (rec->seeder || !rec->finished()) continue;
    EXPECT_GE(rec->pieces_downloaded, 32) << GetParam();
    // Bytes cover at least the file (duplicates/aborts may add more).
    EXPECT_GE(rec->bytes_downloaded, static_cast<double>(cfg.file_bytes) * 0.99)
        << GetParam();
  }
}

TEST_P(AllProtocols, SurvivesForcedMidSwarmDepartures) {
  auto proto = protocols::make_protocol(GetParam());
  auto cfg = scenario_config(*proto, 24);
  bt::Swarm swarm(cfg, *proto);
  // Yank five leechers out mid-download, whatever they are doing.
  for (int k = 1; k <= 5; ++k) {
    swarm.simulator().schedule_at(15.0 * k, [&swarm] {
      for (bt::PeerId id : swarm.active_peers()) {
        const bt::Peer* p = swarm.peer(id);
        if (p != nullptr && !p->seeder && !p->have.complete() &&
            !p->have.empty()) {
          swarm.depart(id);
          return;
        }
      }
    });
  }
  swarm.run();
  // Everyone who stayed still finishes.
  std::size_t stayed_unfinished = 0;
  for (const auto* rec : swarm.metrics().all()) {
    if (rec->seeder) continue;
    const bool departed_early = rec->depart_time >= 0 && !rec->finished();
    if (!departed_early && !rec->finished()) ++stayed_unfinished;
  }
  EXPECT_EQ(stayed_unfinished, 0u) << GetParam();
}

TEST_P(AllProtocols, ChurnWithReplacementKeepsServing) {
  auto proto = protocols::make_protocol(GetParam());
  auto cfg = scenario_config(*proto, 20);
  cfg.file_bytes = 8 * cfg.piece_bytes;  // small file, fast churn
  cfg.replace_on_finish = true;
  cfg.max_sim_time = 400.0;
  bt::Swarm swarm(cfg, *proto);
  swarm.run();
  // Population is maintained and throughput is nonzero.
  EXPECT_EQ(swarm.active_leecher_count(), 20u) << GetParam();
  EXPECT_GT(swarm.metrics().mean_download_throughput(400.0), 0.0) << GetParam();
  // Many generations completed within the horizon.
  std::size_t finished = swarm.metrics().completion_times(F::kAll).count();
  EXPECT_GT(finished, 20u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocols,
                         ::testing::Values("bittorrent", "propshare",
                                           "fairtorrent", "tchain"));

TEST(Scenarios, TChainSurvivesSeederlessPeriodDepartures) {
  // Heavy departure pressure specifically on T-Chain's transaction cleanup:
  // every few seconds the leecher with the most pieces leaves.
  protocols::TChainProtocol proto;
  auto cfg = scenario_config(proto, 30);
  bt::Swarm swarm(cfg, proto);
  for (int k = 1; k <= 10; ++k) {
    swarm.simulator().schedule_at(8.0 * k, [&swarm] {
      bt::PeerId best = net::kNoPeer;
      std::size_t most = 0;
      for (bt::PeerId id : swarm.active_peers()) {
        const bt::Peer* p = swarm.peer(id);
        if (p == nullptr || p->seeder || p->have.complete()) continue;
        if (p->have.count() >= most) {
          most = p->have.count();
          best = id;
        }
      }
      if (best != net::kNoPeer) swarm.depart(best);
    });
  }
  swarm.run();
  // No dangling transactions at the end.
  EXPECT_EQ(proto.transactions().size(), 0u);
  // Chain census was maintained consistently (active never negative etc.
  // enforced by types; check it drained).
  EXPECT_EQ(proto.chains().active_count(), 0u);
}

TEST(Scenarios, MixedBandwidthClassesFinishInOrder) {
  // Faster classes should on average finish earlier (paper's saw-tooth).
  protocols::TChainProtocol proto;
  auto cfg = scenario_config(proto, 30);
  cfg.leecher_upload_kbps = {400, 1200};
  bt::Swarm swarm(cfg, proto);
  swarm.run();
  util::RunningStats slow, fast;
  for (const auto* rec : swarm.metrics().all()) {
    if (rec->seeder || !rec->finished()) continue;
    (rec->upload_kbps == 400 ? slow : fast).add(rec->completion_time());
  }
  ASSERT_GT(slow.count(), 0u);
  ASSERT_GT(fast.count(), 0u);
  EXPECT_GT(slow.mean(), fast.mean());
}

TEST(Scenarios, SeedIsolationBetweenRuns) {
  // Two protocols run back-to-back with the same seed must not interfere
  // (no global state).
  auto run = [](const char* name) {
    auto proto = protocols::make_protocol(name);
    bt::Swarm swarm(scenario_config(*proto, 12), *proto);
    swarm.run();
    return swarm.metrics().completion_times(F::kCompliant).mean();
  };
  const double a1 = run("tchain");
  (void)run("bittorrent");
  const double a2 = run("tchain");
  EXPECT_DOUBLE_EQ(a1, a2);
}

}  // namespace
}  // namespace tc
