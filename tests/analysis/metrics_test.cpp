#include "src/analysis/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tc::analysis {
namespace {

using F = SwarmMetrics::PeerFilter;

TEST(SwarmMetrics, RecordLifecycle) {
  SwarmMetrics m;
  auto& r = m.record(1);
  r.join_time = 10;
  r.finish_time = 110;
  EXPECT_EQ(m.find(1), &m.record(1));
  EXPECT_EQ(m.find(2), nullptr);
  EXPECT_TRUE(r.finished());
  EXPECT_DOUBLE_EQ(r.completion_time(), 100.0);
}

TEST(SwarmMetrics, CompletionTimesFilter) {
  SwarmMetrics m;
  auto& seeder = m.record(1);
  seeder.seeder = true;
  seeder.finish_time = 1;  // seeders never counted
  auto& compliant = m.record(2);
  compliant.join_time = 0;
  compliant.finish_time = 50;
  auto& fr = m.record(3);
  fr.freerider = true;
  fr.join_time = 0;
  fr.finish_time = 500;
  auto& unfinished = m.record(4);
  unfinished.join_time = 0;

  EXPECT_EQ(m.completion_times(F::kCompliant).count(), 1u);
  EXPECT_DOUBLE_EQ(m.completion_times(F::kCompliant).mean(), 50.0);
  EXPECT_EQ(m.completion_times(F::kFreeRiders).count(), 1u);
  EXPECT_EQ(m.completion_times(F::kAll).count(), 2u);
  EXPECT_EQ(m.unfinished_count(F::kCompliant), 1u);
  EXPECT_EQ(m.unfinished_count(F::kAll), 1u);
}

TEST(SwarmMetrics, RekeyPreservesRecord) {
  SwarmMetrics m;
  auto& r = m.record(5);
  r.pieces_downloaded = 7;
  m.rekey(5, 99);
  EXPECT_EQ(m.find(5), nullptr);
  ASSERT_NE(m.find(99), nullptr);
  EXPECT_EQ(m.find(99)->pieces_downloaded, 7);
  EXPECT_EQ(m.find(99)->whitewash_count, 1);
  EXPECT_THROW(m.rekey(5, 100), std::invalid_argument);
}

TEST(SwarmMetrics, UplinkUtilization) {
  SwarmMetrics m;
  auto& r = m.record(1);
  r.upload_kbps = 800;  // = 100,000 bytes/s
  r.join_time = 0;
  r.finish_time = 100;
  r.bytes_uploaded = 0.8 * util::kbps_to_bytes_per_sec(800) * 100;
  EXPECT_NEAR(m.mean_uplink_utilization(F::kCompliant, 1000), 0.8, 1e-9);
}

TEST(SwarmMetrics, UtilizationUsesEndTimeForUnfinished) {
  SwarmMetrics m;
  auto& r = m.record(1);
  r.upload_kbps = 800;
  r.join_time = 0;
  r.bytes_uploaded = util::kbps_to_bytes_per_sec(800) * 50;  // full rate 50s
  EXPECT_NEAR(m.mean_uplink_utilization(F::kCompliant, 100), 0.5, 1e-9);
}

TEST(SwarmMetrics, FairnessFactors) {
  SwarmMetrics m;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    auto& r = m.record(i);
    r.join_time = 0;
    r.finish_time = i;  // finish order = id
    r.pieces_downloaded = 10;
    r.pieces_uploaded = (i == 4) ? 0 : 10 * static_cast<std::int64_t>(i);
  }
  auto d = m.fairness_factors(0);
  ASSERT_EQ(d.count(), 4u);
  // Peer 4 uploaded nothing -> +inf factor.
  EXPECT_TRUE(std::isinf(d.percentile(1.0)));
  // last_n keeps latest finishers only.
  EXPECT_EQ(m.fairness_factors(2).count(), 2u);
}

TEST(SwarmMetrics, PieceTraces) {
  SwarmMetrics m;
  m.record(7);  // rekey below requires an existing record
  EXPECT_FALSE(m.tracing(7));
  m.trace_encrypted(7, 1, 0.5);  // ignored: not enabled
  m.enable_piece_trace(7);
  EXPECT_TRUE(m.tracing(7));
  m.trace_encrypted(7, 1, 1.0);
  m.trace_completed(7, 1, 2.0);
  const auto* tl = m.timeline(7);
  ASSERT_NE(tl, nullptr);
  ASSERT_EQ(tl->encrypted_received.size(), 1u);
  ASSERT_EQ(tl->completed.size(), 1u);
  EXPECT_DOUBLE_EQ(tl->encrypted_received[0].first, 1.0);
  // Traces migrate across whitewash.
  m.rekey(7, 8);
  EXPECT_TRUE(m.tracing(8));
  EXPECT_FALSE(m.tracing(7));
}

TEST(SwarmMetrics, DownloadThroughput) {
  SwarmMetrics m;
  auto& r = m.record(1);
  r.join_time = 0;
  r.bytes_downloaded = 5000;
  r.finish_time = 50;
  // 5000 bytes over 50 s of residence within horizon 1000.
  EXPECT_NEAR(m.mean_download_throughput(1000), 100.0, 1e-9);
  // Residence clamped to horizon.
  auto& r2 = m.record(2);
  r2.join_time = 0;
  r2.bytes_downloaded = 1000;  // never finished
  EXPECT_NEAR(m.mean_download_throughput(100), (100.0 + 10.0) / 2, 1e-9);
}

TEST(OptimalCompletionTime, KumarRossBound) {
  // Seeder 100 B/s, 4 leechers at 100 B/s, file 1000 B:
  // max(1000/100, 4*1000/500) = max(10, 8) = 10.
  EXPECT_DOUBLE_EQ(
      optimal_completion_time(1000, 100, {100, 100, 100, 100}), 10.0);
  // Many slow leechers: aggregate bound dominates.
  EXPECT_DOUBLE_EQ(optimal_completion_time(1000, 1000, {10, 10}),
                   2.0 * 1000 / 1020.0);
  EXPECT_THROW(optimal_completion_time(1000, 0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace tc::analysis
