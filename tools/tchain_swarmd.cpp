// tchain-swarmd: a verified localhost T-Chain swarm. Spins up a tracker
// plus N peer nodes (node 1 seeds) over real loopback TCP, runs the live
// protocol to completion, prints per-peer download times, and verifies
// the run's full event trace against the protocol invariant catalogue.
//
//   tchain-swarmd [-n PEERS] [--pieces N] [--piece-kb KB] [--seed S]
//                 [--deadline SECONDS] [--pending-cap K]
//                 [--trace-csv FILE] [--trace-json FILE] [--quiet]
//
// Exit code: 0 = every leecher completed and the checker PASSed,
// 1 = a peer failed to complete before the deadline, 2 = invariant
// violations (or an unsound trace), 3 = setup error.
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "src/check/invariants.h"
#include "src/obs/export.h"
#include "src/rt/swarm.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  const tc::util::Flags flags(argc, argv);
  if (flags.has("help") || flags.has("h")) {
    std::cout << "usage: tchain-swarmd [-n PEERS] [--pieces N] "
                 "[--piece-kb KB] [--seed S]\n"
                 "                     [--deadline SECONDS] "
                 "[--pending-cap K]\n"
                 "                     [--trace-csv FILE] "
                 "[--trace-json FILE] [--quiet]\n";
    return 0;
  }

  tc::rt::SwarmOptions opts;
  opts.peers = static_cast<std::size_t>(
      flags.get_int("peers", flags.get_int("n", 16)));
  opts.piece_count = static_cast<std::uint32_t>(flags.get_int("pieces", 32));
  opts.piece_bytes =
      static_cast<std::uint32_t>(flags.get_int("piece-kb", 16) * 1024);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.deadline_seconds = flags.get_double("deadline", 30.0);
  opts.pending_cap = static_cast<int>(flags.get_int("pending-cap", 2));
  opts.watchdog_seconds =
      flags.get_double("watchdog", opts.watchdog_seconds);
  opts.max_retries =
      static_cast<int>(flags.get_int("retries", opts.max_retries));
  opts.seeder_slots = static_cast<std::size_t>(
      flags.get_int("seeder-slots", static_cast<std::int64_t>(opts.seeder_slots)));
  const bool quiet = flags.get_bool("quiet");

  if (opts.peers < 2 || opts.piece_count == 0 || opts.piece_bytes == 0) {
    std::cerr << "tchain-swarmd: need at least 2 peers and a non-empty "
                 "file\n";
    return 3;
  }

  tc::rt::SwarmResult res;
  try {
    res = tc::rt::run_local_swarm(opts);
  } catch (const std::exception& e) {
    std::cerr << "tchain-swarmd: " << e.what() << "\n";
    return 3;
  }

  if (!quiet) {
    std::cout << "swarm: " << opts.peers << " peers, " << opts.piece_count
              << " pieces x " << opts.piece_bytes / 1024
              << " KiB, seed " << opts.seed << "\n";
    for (const tc::rt::PeerStat& p : res.peers) {
      std::cout << "  peer " << p.id << (p.seeder ? " (seeder)" : "")
                << ": ";
      if (p.seeder) {
        std::cout << "serving\n";
      } else if (p.complete) {
        std::cout << "complete at " << p.finish_seconds << " s\n";
      } else {
        std::cout << "INCOMPLETE\n";
      }
    }
    std::cout << "wall: " << res.wall_seconds << " s, events: "
              << res.events_recorded << " (" << res.events_dropped
              << " dropped by ring)\n";
    tc::check::write_report(std::cout, res.check);
  }

  const std::string csv = flags.get_string("trace-csv", "");
  if (!csv.empty()) {
    std::ofstream out(csv);
    if (!out) {
      std::cerr << "tchain-swarmd: cannot write " << csv << "\n";
      return 3;
    }
    tc::obs::write_event_csv(out, res.events);
  }
  const std::string json = flags.get_string("trace-json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::cerr << "tchain-swarmd: cannot write " << json << "\n";
      return 3;
    }
    tc::obs::write_chrome_trace(out, res.events);
  }

  if (!res.check.clean()) return 2;
  if (!res.all_complete) return 1;
  return 0;
}
