// tchain-verify: offline protocol invariant verification of exported event
// traces (the CSVs written by --trace-csv / obs::write_event_csv).
//
//   tchain-verify trace.run0.csv [trace.run1.csv ...]
//     --dropped N       events the producer's ring dropped for this trace
//                       (record extra "obs.events.dropped"); any N > 0
//                       downgrades the verdict to UNSOUND
//     --pending-cap K   flow-control cap to check against (default 2)
//     --max-findings N  findings kept/printed per trace (default 64)
//
// Exit code: 0 = every trace PASSed, 1 = violations found, 2 = I/O or
// parse error, 3 = no violations but at least one trace was UNSOUND.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/check/invariants.h"
#include "src/check/replay.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  const tc::util::Flags flags(argc, argv);
  const auto& files = flags.positional();
  if (files.empty()) {
    std::cerr << "usage: tchain-verify TRACE.csv [TRACE.csv ...] "
                 "[--dropped N] [--pending-cap K] [--max-findings N]\n";
    return 2;
  }

  tc::check::CheckerOptions opts;
  opts.pending_cap = static_cast<int>(flags.get_int("pending-cap", 2));
  opts.max_findings =
      static_cast<std::size_t>(flags.get_int("max-findings", 64));
  const auto dropped =
      static_cast<std::uint64_t>(flags.get_int("dropped", 0));

  bool any_violation = false;
  bool any_unsound = false;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "tchain-verify: cannot open " << path << "\n";
      return 2;
    }
    std::vector<tc::obs::TraceEvent> events;
    try {
      events = tc::check::read_event_csv(in);
    } catch (const std::exception& e) {
      std::cerr << "tchain-verify: " << path << ": " << e.what() << "\n";
      return 2;
    }
    const tc::check::CheckReport report =
        tc::check::check_events(events, dropped, opts);
    std::cout << path << ":\n";
    tc::check::write_report(std::cout, report, opts.max_findings);
    if (report.total_violations + report.possible_violations > 0) {
      any_violation = true;
    }
    if (!report.sound) any_unsound = true;
  }
  if (any_violation) return 1;
  return any_unsound ? 3 : 0;
}
