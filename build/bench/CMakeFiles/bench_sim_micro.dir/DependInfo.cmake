
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sim_micro.cpp" "bench/CMakeFiles/bench_sim_micro.dir/bench_sim_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_sim_micro.dir/bench_sim_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bt/CMakeFiles/tc_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
