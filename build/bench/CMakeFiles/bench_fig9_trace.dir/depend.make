# Empty dependencies file for bench_fig9_trace.
# This may be replaced when dependencies are built.
