file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_trace.dir/bench_fig9_trace.cpp.o"
  "CMakeFiles/bench_fig9_trace.dir/bench_fig9_trace.cpp.o.d"
  "bench_fig9_trace"
  "bench_fig9_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
