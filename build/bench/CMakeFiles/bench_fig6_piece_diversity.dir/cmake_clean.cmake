file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_piece_diversity.dir/bench_fig6_piece_diversity.cpp.o"
  "CMakeFiles/bench_fig6_piece_diversity.dir/bench_fig6_piece_diversity.cpp.o.d"
  "bench_fig6_piece_diversity"
  "bench_fig6_piece_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_piece_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
