# Empty dependencies file for bench_fig6_piece_diversity.
# This may be replaced when dependencies are built.
