# Empty dependencies file for bench_fig7_freeriders.
# This may be replaced when dependencies are built.
