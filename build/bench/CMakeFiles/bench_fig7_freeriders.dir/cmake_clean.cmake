file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_freeriders.dir/bench_fig7_freeriders.cpp.o"
  "CMakeFiles/bench_fig7_freeriders.dir/bench_fig7_freeriders.cpp.o.d"
  "bench_fig7_freeriders"
  "bench_fig7_freeriders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_freeriders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
