file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_oppseed.dir/bench_fig11_oppseed.cpp.o"
  "CMakeFiles/bench_fig11_oppseed.dir/bench_fig11_oppseed.cpp.o.d"
  "bench_fig11_oppseed"
  "bench_fig11_oppseed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_oppseed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
