file(REMOVE_RECURSE
  "CMakeFiles/bench_bootstrap_model.dir/bench_bootstrap_model.cpp.o"
  "CMakeFiles/bench_bootstrap_model.dir/bench_bootstrap_model.cpp.o.d"
  "bench_bootstrap_model"
  "bench_bootstrap_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bootstrap_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
