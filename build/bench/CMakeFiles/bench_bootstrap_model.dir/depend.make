# Empty dependencies file for bench_bootstrap_model.
# This may be replaced when dependencies are built.
