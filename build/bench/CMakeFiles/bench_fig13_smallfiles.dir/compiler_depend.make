# Empty compiler generated dependencies file for bench_fig13_smallfiles.
# This may be replaced when dependencies are built.
