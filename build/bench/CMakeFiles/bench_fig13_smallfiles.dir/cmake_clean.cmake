file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_smallfiles.dir/bench_fig13_smallfiles.cpp.o"
  "CMakeFiles/bench_fig13_smallfiles.dir/bench_fig13_smallfiles.cpp.o.d"
  "bench_fig13_smallfiles"
  "bench_fig13_smallfiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_smallfiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
