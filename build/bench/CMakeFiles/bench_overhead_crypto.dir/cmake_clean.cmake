file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_crypto.dir/bench_overhead_crypto.cpp.o"
  "CMakeFiles/bench_overhead_crypto.dir/bench_overhead_crypto.cpp.o.d"
  "bench_overhead_crypto"
  "bench_overhead_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
