# Empty compiler generated dependencies file for bench_overhead_crypto.
# This may be replaced when dependencies are built.
