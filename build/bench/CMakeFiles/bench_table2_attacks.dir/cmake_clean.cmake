file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_attacks.dir/bench_table2_attacks.cpp.o"
  "CMakeFiles/bench_table2_attacks.dir/bench_table2_attacks.cpp.o.d"
  "bench_table2_attacks"
  "bench_table2_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
