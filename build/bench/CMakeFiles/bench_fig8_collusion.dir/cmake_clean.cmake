file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_collusion.dir/bench_fig8_collusion.cpp.o"
  "CMakeFiles/bench_fig8_collusion.dir/bench_fig8_collusion.cpp.o.d"
  "bench_fig8_collusion"
  "bench_fig8_collusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
