# Empty compiler generated dependencies file for bench_fig3_no_freeriders.
# This may be replaced when dependencies are built.
