file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_chains.dir/bench_fig10_chains.cpp.o"
  "CMakeFiles/bench_fig10_chains.dir/bench_fig10_chains.cpp.o.d"
  "bench_fig10_chains"
  "bench_fig10_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
