file(REMOVE_RECURSE
  "CMakeFiles/tc_trace.dir/arrival.cpp.o"
  "CMakeFiles/tc_trace.dir/arrival.cpp.o.d"
  "libtc_trace.a"
  "libtc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
