# Empty dependencies file for tc_trace.
# This may be replaced when dependencies are built.
