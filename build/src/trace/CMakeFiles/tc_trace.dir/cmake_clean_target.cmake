file(REMOVE_RECURSE
  "libtc_trace.a"
)
