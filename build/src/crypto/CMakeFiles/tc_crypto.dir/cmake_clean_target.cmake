file(REMOVE_RECURSE
  "libtc_crypto.a"
)
