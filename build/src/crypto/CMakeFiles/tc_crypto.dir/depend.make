# Empty dependencies file for tc_crypto.
# This may be replaced when dependencies are built.
