file(REMOVE_RECURSE
  "CMakeFiles/tc_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/tc_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/tc_crypto.dir/cipher.cpp.o"
  "CMakeFiles/tc_crypto.dir/cipher.cpp.o.d"
  "CMakeFiles/tc_crypto.dir/hmac.cpp.o"
  "CMakeFiles/tc_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/tc_crypto.dir/sha256.cpp.o"
  "CMakeFiles/tc_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/tc_crypto.dir/xtea.cpp.o"
  "CMakeFiles/tc_crypto.dir/xtea.cpp.o.d"
  "libtc_crypto.a"
  "libtc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
