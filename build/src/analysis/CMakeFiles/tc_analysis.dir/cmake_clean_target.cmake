file(REMOVE_RECURSE
  "libtc_analysis.a"
)
