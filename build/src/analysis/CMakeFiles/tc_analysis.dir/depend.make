# Empty dependencies file for tc_analysis.
# This may be replaced when dependencies are built.
