file(REMOVE_RECURSE
  "CMakeFiles/tc_analysis.dir/metrics.cpp.o"
  "CMakeFiles/tc_analysis.dir/metrics.cpp.o.d"
  "libtc_analysis.a"
  "libtc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
