# Empty dependencies file for tc_protocols.
# This may be replaced when dependencies are built.
