file(REMOVE_RECURSE
  "libtc_protocols.a"
)
