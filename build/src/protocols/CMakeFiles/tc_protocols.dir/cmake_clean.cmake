file(REMOVE_RECURSE
  "CMakeFiles/tc_protocols.dir/choking.cpp.o"
  "CMakeFiles/tc_protocols.dir/choking.cpp.o.d"
  "CMakeFiles/tc_protocols.dir/fairtorrent.cpp.o"
  "CMakeFiles/tc_protocols.dir/fairtorrent.cpp.o.d"
  "CMakeFiles/tc_protocols.dir/indirect.cpp.o"
  "CMakeFiles/tc_protocols.dir/indirect.cpp.o.d"
  "CMakeFiles/tc_protocols.dir/registry.cpp.o"
  "CMakeFiles/tc_protocols.dir/registry.cpp.o.d"
  "CMakeFiles/tc_protocols.dir/tchain.cpp.o"
  "CMakeFiles/tc_protocols.dir/tchain.cpp.o.d"
  "libtc_protocols.a"
  "libtc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
