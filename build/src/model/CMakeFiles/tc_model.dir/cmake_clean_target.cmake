file(REMOVE_RECURSE
  "libtc_model.a"
)
