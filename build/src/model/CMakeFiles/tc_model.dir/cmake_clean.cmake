file(REMOVE_RECURSE
  "CMakeFiles/tc_model.dir/bootstrap_model.cpp.o"
  "CMakeFiles/tc_model.dir/bootstrap_model.cpp.o.d"
  "libtc_model.a"
  "libtc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
