# Empty compiler generated dependencies file for tc_model.
# This may be replaced when dependencies are built.
