file(REMOVE_RECURSE
  "libtc_bt.a"
)
