file(REMOVE_RECURSE
  "CMakeFiles/tc_bt.dir/bitfield.cpp.o"
  "CMakeFiles/tc_bt.dir/bitfield.cpp.o.d"
  "CMakeFiles/tc_bt.dir/swarm.cpp.o"
  "CMakeFiles/tc_bt.dir/swarm.cpp.o.d"
  "libtc_bt.a"
  "libtc_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
