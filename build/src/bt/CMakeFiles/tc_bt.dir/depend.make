# Empty dependencies file for tc_bt.
# This may be replaced when dependencies are built.
