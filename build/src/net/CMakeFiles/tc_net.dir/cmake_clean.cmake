file(REMOVE_RECURSE
  "CMakeFiles/tc_net.dir/message.cpp.o"
  "CMakeFiles/tc_net.dir/message.cpp.o.d"
  "CMakeFiles/tc_net.dir/tcp.cpp.o"
  "CMakeFiles/tc_net.dir/tcp.cpp.o.d"
  "CMakeFiles/tc_net.dir/tracker.cpp.o"
  "CMakeFiles/tc_net.dir/tracker.cpp.o.d"
  "libtc_net.a"
  "libtc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
