file(REMOVE_RECURSE
  "libtc_net.a"
)
