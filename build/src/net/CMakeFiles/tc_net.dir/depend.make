# Empty dependencies file for tc_net.
# This may be replaced when dependencies are built.
