
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/tc_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/tc_net.dir/message.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/tc_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/tc_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/tracker.cpp" "src/net/CMakeFiles/tc_net.dir/tracker.cpp.o" "gcc" "src/net/CMakeFiles/tc_net.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
