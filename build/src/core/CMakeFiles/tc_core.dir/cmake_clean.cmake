file(REMOVE_RECURSE
  "CMakeFiles/tc_core.dir/chain_registry.cpp.o"
  "CMakeFiles/tc_core.dir/chain_registry.cpp.o.d"
  "CMakeFiles/tc_core.dir/exchange.cpp.o"
  "CMakeFiles/tc_core.dir/exchange.cpp.o.d"
  "CMakeFiles/tc_core.dir/pending.cpp.o"
  "CMakeFiles/tc_core.dir/pending.cpp.o.d"
  "CMakeFiles/tc_core.dir/policy.cpp.o"
  "CMakeFiles/tc_core.dir/policy.cpp.o.d"
  "CMakeFiles/tc_core.dir/transaction.cpp.o"
  "CMakeFiles/tc_core.dir/transaction.cpp.o.d"
  "libtc_core.a"
  "libtc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
