
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chain_registry.cpp" "src/core/CMakeFiles/tc_core.dir/chain_registry.cpp.o" "gcc" "src/core/CMakeFiles/tc_core.dir/chain_registry.cpp.o.d"
  "/root/repo/src/core/exchange.cpp" "src/core/CMakeFiles/tc_core.dir/exchange.cpp.o" "gcc" "src/core/CMakeFiles/tc_core.dir/exchange.cpp.o.d"
  "/root/repo/src/core/pending.cpp" "src/core/CMakeFiles/tc_core.dir/pending.cpp.o" "gcc" "src/core/CMakeFiles/tc_core.dir/pending.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/tc_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/tc_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/transaction.cpp" "src/core/CMakeFiles/tc_core.dir/transaction.cpp.o" "gcc" "src/core/CMakeFiles/tc_core.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/tc_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tc_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
