file(REMOVE_RECURSE
  "CMakeFiles/tc_util.dir/bytes.cpp.o"
  "CMakeFiles/tc_util.dir/bytes.cpp.o.d"
  "CMakeFiles/tc_util.dir/flags.cpp.o"
  "CMakeFiles/tc_util.dir/flags.cpp.o.d"
  "CMakeFiles/tc_util.dir/logging.cpp.o"
  "CMakeFiles/tc_util.dir/logging.cpp.o.d"
  "CMakeFiles/tc_util.dir/rng.cpp.o"
  "CMakeFiles/tc_util.dir/rng.cpp.o.d"
  "CMakeFiles/tc_util.dir/stats.cpp.o"
  "CMakeFiles/tc_util.dir/stats.cpp.o.d"
  "CMakeFiles/tc_util.dir/table.cpp.o"
  "CMakeFiles/tc_util.dir/table.cpp.o.d"
  "libtc_util.a"
  "libtc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
