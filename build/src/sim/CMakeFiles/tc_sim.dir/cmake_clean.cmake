file(REMOVE_RECURSE
  "CMakeFiles/tc_sim.dir/bandwidth.cpp.o"
  "CMakeFiles/tc_sim.dir/bandwidth.cpp.o.d"
  "CMakeFiles/tc_sim.dir/simulator.cpp.o"
  "CMakeFiles/tc_sim.dir/simulator.cpp.o.d"
  "libtc_sim.a"
  "libtc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
