# Empty dependencies file for tc_sim.
# This may be replaced when dependencies are built.
