file(REMOVE_RECURSE
  "libtc_sim.a"
)
