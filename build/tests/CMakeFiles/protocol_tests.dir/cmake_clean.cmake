file(REMOVE_RECURSE
  "CMakeFiles/protocol_tests.dir/protocols/baselines_test.cpp.o"
  "CMakeFiles/protocol_tests.dir/protocols/baselines_test.cpp.o.d"
  "CMakeFiles/protocol_tests.dir/protocols/indirect_test.cpp.o"
  "CMakeFiles/protocol_tests.dir/protocols/indirect_test.cpp.o.d"
  "CMakeFiles/protocol_tests.dir/protocols/tchain_departure_test.cpp.o"
  "CMakeFiles/protocol_tests.dir/protocols/tchain_departure_test.cpp.o.d"
  "CMakeFiles/protocol_tests.dir/protocols/tchain_test.cpp.o"
  "CMakeFiles/protocol_tests.dir/protocols/tchain_test.cpp.o.d"
  "protocol_tests"
  "protocol_tests.pdb"
  "protocol_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
