# Empty dependencies file for protocol_tests.
# This may be replaced when dependencies are built.
