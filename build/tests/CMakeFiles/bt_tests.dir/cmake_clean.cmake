file(REMOVE_RECURSE
  "CMakeFiles/bt_tests.dir/bt/bitfield_test.cpp.o"
  "CMakeFiles/bt_tests.dir/bt/bitfield_test.cpp.o.d"
  "CMakeFiles/bt_tests.dir/bt/streaming_test.cpp.o"
  "CMakeFiles/bt_tests.dir/bt/streaming_test.cpp.o.d"
  "CMakeFiles/bt_tests.dir/bt/swarm_test.cpp.o"
  "CMakeFiles/bt_tests.dir/bt/swarm_test.cpp.o.d"
  "bt_tests"
  "bt_tests.pdb"
  "bt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
