# Empty compiler generated dependencies file for bt_tests.
# This may be replaced when dependencies are built.
