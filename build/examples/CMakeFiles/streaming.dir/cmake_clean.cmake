file(REMOVE_RECURSE
  "CMakeFiles/streaming.dir/streaming.cpp.o"
  "CMakeFiles/streaming.dir/streaming.cpp.o.d"
  "streaming"
  "streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
