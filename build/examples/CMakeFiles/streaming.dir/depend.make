# Empty dependencies file for streaming.
# This may be replaced when dependencies are built.
