# Empty dependencies file for swarm_compare.
# This may be replaced when dependencies are built.
