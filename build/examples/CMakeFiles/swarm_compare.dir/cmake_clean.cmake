file(REMOVE_RECURSE
  "CMakeFiles/swarm_compare.dir/swarm_compare.cpp.o"
  "CMakeFiles/swarm_compare.dir/swarm_compare.cpp.o.d"
  "swarm_compare"
  "swarm_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
