file(REMOVE_RECURSE
  "CMakeFiles/tcp_triangle.dir/tcp_triangle.cpp.o"
  "CMakeFiles/tcp_triangle.dir/tcp_triangle.cpp.o.d"
  "tcp_triangle"
  "tcp_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
