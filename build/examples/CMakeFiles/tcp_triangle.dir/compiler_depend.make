# Empty compiler generated dependencies file for tcp_triangle.
# This may be replaced when dependencies are built.
