// Figure 9: trace-driven ("continuous stream") arrivals, free-rider
// fraction swept 0..50%. Paper: all methods similar up to ~10%
// free-riders; beyond that T-Chain clearly wins — at 50% the baselines'
// compliant completion time is ~5x T-Chain's. Completion times are
// measured over the first `measure` compliant finishers, excluding the
// first `warmup` to skip startup transients (paper: 1000 / 500).
#include <algorithm>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const auto seeds =
      static_cast<std::size_t>(flags.get_int("seeds", full ? 10 : 2));
  const std::size_t population =
      static_cast<std::size_t>(flags.get_int("peers", full ? 2000 : 300));
  const std::size_t warmup =
      static_cast<std::size_t>(flags.get_int("warmup", full ? 500 : 60));
  const std::size_t measure =
      static_cast<std::size_t>(flags.get_int("measure", full ? 500 : 120));

  bench::banner("Figure 9 (trace-driven arrivals)",
                "similar until ~10% free-riders; at 50% the baselines are "
                "~5x slower than T-Chain for compliant leechers");

  const std::vector<double> fracs = {0.0, 0.1, 0.25, 0.4, 0.5};
  const auto protos = protocols::paper_protocols();

  bench::Sweep sweep(bench::base_config(population, file_mb * util::kMiB));
  sweep.protocols(protos)
      .seeds(seeds)
      .axis("freeriders", fracs, [](bench::RunSpec& s, double frac) {
        s.config.freerider_fraction = frac;
        s.config.wait_for_freeriders = false;  // steady-state compliant focus
      })
      .for_each([&](bench::RunSpec& s) {
        // Arrivals are part of the spec and depend only on the seed, so
        // they stay identical at any --jobs level.
        trace::RedHatTraceArrivals::Params p;
        p.peak_rate = full ? 0.5 : 0.4;
        p.decay_seconds = full ? 36'000 : 3'000;
        util::Rng arr_rng(s.config.seed * 977);
        s.arrivals = trace::RedHatTraceArrivals(p).generate(population, arr_rng);
        // Steady-state window: completion times of compliant finishers
        // [warmup, warmup+measure) in finish order.
        s.inspect = [warmup, measure](bt::Swarm& swarm, bt::Protocol&,
                                      bench::RunRecord& rec) {
          std::vector<std::pair<double, double>> fin;  // (finish, duration)
          for (const auto* r : swarm.metrics().all()) {
            if (r->seeder || r->freerider || !r->finished()) continue;
            fin.emplace_back(r->finish_time, r->completion_time());
          }
          std::sort(fin.begin(), fin.end());
          util::RunningStats window;
          for (std::size_t i = warmup; i < fin.size() && i < warmup + measure;
               ++i) {
            window.add(fin[i].second);
          }
          rec.add_extra("window_mean",
                        window.count() ? window.mean() : -1.0);
        };
      });
  const auto records = bench::run(sweep, flags);

  util::AsciiTable t({"freeriders (%)", "protocol", "compliant mean (s)",
                      "ci95"});
  std::size_t i = 0;
  for (double frac : fracs) {
    for (const auto& name : protos) {
      util::RunningStats mean_s;
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto& r = records.at(i++);
        if (!r.ok) continue;
        const double w = r.extra_value("window_mean", -1.0);
        if (w >= 0) mean_s.add(w);
      }
      t.add_row({util::format_double(100 * frac, 0), name,
                 util::format_double(mean_s.mean(), 1),
                 "+-" + util::format_double(mean_s.ci95_half_width(), 1)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
