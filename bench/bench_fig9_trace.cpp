// Figure 9: trace-driven ("continuous stream") arrivals, free-rider
// fraction swept 0..50%. Paper: all methods similar up to ~10%
// free-riders; beyond that T-Chain clearly wins — at 50% the baselines'
// compliant completion time is ~5x T-Chain's. Completion times are
// measured over the first `measure` compliant finishers, excluding the
// first `warmup` to skip startup transients (paper: 1000 / 500).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const auto seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", full ? 10 : 2));
  const std::size_t population =
      static_cast<std::size_t>(flags.get_int("peers", full ? 2000 : 300));
  const std::size_t warmup =
      static_cast<std::size_t>(flags.get_int("warmup", full ? 500 : 60));
  const std::size_t measure =
      static_cast<std::size_t>(flags.get_int("measure", full ? 500 : 120));

  bench::banner("Figure 9 (trace-driven arrivals)",
                "similar until ~10% free-riders; at 50% the baselines are "
                "~5x slower than T-Chain for compliant leechers");

  util::AsciiTable t({"freeriders (%)", "protocol", "compliant mean (s)",
                      "ci95"});

  for (double frac : {0.0, 0.1, 0.25, 0.4, 0.5}) {
    for (const auto& name : protocols::paper_protocols()) {
      util::RunningStats mean_s;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        auto proto = protocols::make_protocol(name);
        auto cfg = bench::base_config(*proto, population,
                                      file_mb * util::kMiB, s);
        cfg.freerider_fraction = frac;
        cfg.wait_for_freeriders = false;  // steady-state compliant focus

        trace::RedHatTraceArrivals::Params p;
        p.peak_rate = full ? 0.5 : 0.4;
        p.decay_seconds = full ? 36'000 : 3'000;
        util::Rng arr_rng(s * 977);
        auto arrivals =
            trace::RedHatTraceArrivals(p).generate(population, arr_rng);

        bt::Swarm swarm(cfg, *proto, std::move(arrivals));
        swarm.run();
        // Steady-state window: completion times of finishers
        // [warmup, warmup+measure) in finish order.
        std::vector<std::pair<double, double>> finishers;  // (finish, time)
        for (const auto* rec : swarm.metrics().all()) {
          if (rec->seeder || rec->freerider || !rec->finished()) continue;
          finishers.emplace_back(rec->finish_time, rec->completion_time());
        }
        std::sort(finishers.begin(), finishers.end());
        util::RunningStats window;
        for (std::size_t i = warmup;
             i < finishers.size() && i < warmup + measure; ++i) {
          window.add(finishers[i].second);
        }
        if (window.count() > 0) mean_s.add(window.mean());
      }
      t.add_row({util::format_double(100 * frac, 0), name,
                 util::format_double(mean_s.mean(), 1),
                 "+-" + util::format_double(mean_s.ci95_half_width(), 1)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
