// Figure 10: number of active chains over time, no free-riders.
// (a) flash crowd (paper: 600 leechers) — chains climb until the fastest
//     bandwidth class finishes, then decay in a saw-tooth as each class
//     departs; (b) trace-driven — chains track the active-leecher count.
#include "bench/common.h"

namespace {

void run_census(const char* label, tc::bt::SwarmConfig cfg,
                std::vector<tc::util::SimTime> arrivals,
                const tc::util::Flags& flags, bool indirect_only) {
  using namespace tc;
  protocols::TChainProtocol proto;
  cfg.piece_bytes = proto.default_piece_bytes();
  cfg.allow_direct_reciprocity = !indirect_only;
  bt::Swarm swarm(cfg, proto, std::move(arrivals));

  // Sample the active-leecher count alongside the protocol's chain census.
  std::vector<std::pair<double, std::size_t>> leecher_series;
  struct Sampler {
    bt::Swarm* s;
    std::vector<std::pair<double, std::size_t>>* out;
    void operator()() const {
      out->emplace_back(s->simulator().now(), s->active_leecher_count());
      s->simulator().schedule_in(5.0, *this);
    }
  };
  swarm.simulator().schedule_in(5.0, Sampler{&swarm, &leecher_series});
  swarm.run();

  const auto& census = proto.chains().census();
  util::AsciiTable t({"time (s)", "active chains", "active leechers"});
  const std::size_t rows = 14;
  for (std::size_t k = 0; k < rows; ++k) {
    const std::size_t i = census.empty() ? 0 : k * (census.size() - 1) / (rows - 1);
    if (i >= census.size()) break;
    std::size_t leechers = 0;
    for (const auto& [time, n] : leecher_series) {
      if (time <= census[i].t) leechers = n;
    }
    t.add_row({util::format_double(census[i].t, 0),
               std::to_string(census[i].active_chains),
               std::to_string(leechers)});
  }
  std::cout << label << "\n";
  bench::print_table(t, flags);
  std::cout << "chains created: " << proto.chains().total_created()
            << " (seeder " << proto.chains().created_by_seeder()
            << ", leechers " << proto.chains().created_by_leechers()
            << "), mean terminated length "
            << util::format_double(proto.chains().mean_terminated_length(), 1)
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 150));
  const bool indirect_only = flags.get_bool("indirect-only");

  bench::banner("Figure 10 (active chains over time)",
                "(a) flash crowd: chains climb, then saw-tooth down as each "
                "bandwidth class finishes; (b) trace: chains track the "
                "active-leecher population");

  {
    protocols::TChainProtocol probe;
    auto cfg = bench::base_config(probe, n, file_mb * util::kMiB,
                                  static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    run_census("(a) flash crowd", cfg, {}, flags, indirect_only);
  }
  {
    protocols::TChainProtocol probe;
    auto cfg = bench::base_config(probe, n, file_mb * util::kMiB,
                                  static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    trace::RedHatTraceArrivals::Params p;
    p.peak_rate = full ? 0.5 : 0.4;
    p.decay_seconds = full ? 36'000 : 2'000;
    util::Rng arr_rng(11);
    auto arrivals = trace::RedHatTraceArrivals(p).generate(n, arr_rng);
    run_census("(b) trace-driven arrivals", cfg, std::move(arrivals), flags,
               indirect_only);
  }
  return 0;
}
