// Figure 10: number of active chains over time, no free-riders.
// (a) flash crowd (paper: 600 leechers) — chains climb until the fastest
//     bandwidth class finishes, then decay in a saw-tooth as each class
//     departs; (b) trace-driven — chains track the active-leecher count.
//
// The census series comes from obs::ChainView: each run records chain
// trace events (kChainKinds) and the series is reconstructed offline,
// replacing the registry-side accounting the bench used to read.
#include "bench/common.h"
#include "src/obs/chain_view.h"
#include "src/protocols/tchain.h"

namespace {

// Per-panel state filled by the run's setup/inspect hooks.
struct Census {
  std::vector<std::pair<double, std::size_t>> leecher_series;
  std::vector<tc::obs::CensusPoint> census;
  std::size_t total_created = 0, by_seeder = 0, by_leechers = 0;
  double mean_terminated_length = 0;
};

// Self-rescheduling sampler: records the active-leecher count every 5 s.
struct Sampler {
  tc::bt::Swarm* s;
  std::vector<std::pair<double, std::size_t>>* out;
  void operator()() const {
    out->emplace_back(s->simulator().now(), s->active_leecher_count());
    s->simulator().schedule_in(5.0, *this);
  }
};

void attach(tc::bench::RunSpec& spec, Census& out) {
  using namespace tc;
  spec.trace.enabled = true;
  spec.trace.kind_mask = obs::kChainKinds;
  // Roughly 3 chain events per transaction (~one tx per piece delivery)
  // plus census ticks; generously padded so the ring never wraps.
  spec.trace.ring_capacity =
      spec.config.piece_count() * (spec.config.leecher_count + 8) * 3 + 65536;
  spec.setup = [&out](bt::Swarm& swarm) {
    swarm.simulator().schedule_in(5.0, Sampler{&swarm, &out.leecher_series});
  };
  spec.inspect = [&out](bt::Swarm& swarm, bt::Protocol&, bench::RunRecord&) {
    const auto view = obs::ChainView::reconstruct(swarm.obs()->events());
    out.census = view.census();
    out.total_created = view.total_created();
    out.by_seeder = view.created_by_seeder();
    out.by_leechers = view.created_by_leechers();
    out.mean_terminated_length = view.mean_terminated_length();
  };
}

void print_census(const char* label, const Census& c,
                  const tc::util::Flags& flags) {
  using namespace tc;
  util::AsciiTable t({"time (s)", "active chains", "active leechers"});
  const std::size_t rows = 14;
  for (std::size_t k = 0; k < rows; ++k) {
    const std::size_t i =
        c.census.empty() ? 0 : k * (c.census.size() - 1) / (rows - 1);
    if (i >= c.census.size()) break;
    std::size_t leechers = 0;
    for (const auto& [time, n] : c.leecher_series) {
      if (time <= c.census[i].t) leechers = n;
    }
    t.add_row({util::format_double(c.census[i].t, 0),
               std::to_string(c.census[i].active_chains),
               std::to_string(leechers)});
  }
  std::cout << label << "\n";
  bench::print_table(t, flags);
  std::cout << "chains created: " << c.total_created << " (seeder "
            << c.by_seeder << ", leechers " << c.by_leechers
            << "), mean terminated length "
            << util::format_double(c.mean_terminated_length, 1) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 150));
  const bool indirect_only = flags.get_bool("indirect-only");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  bench::banner("Figure 10 (active chains over time)",
                "(a) flash crowd: chains climb, then saw-tooth down as each "
                "bandwidth class finishes; (b) trace: chains track the "
                "active-leecher population");

  auto cfg = bench::base_config(n, file_mb * util::kMiB, seed);
  cfg.allow_direct_reciprocity = !indirect_only;

  Census flash, traced;
  bench::Sweep a(cfg), b(cfg);
  a.protocol("tchain").for_each(
      [&](bench::RunSpec& s) { attach(s, flash); });
  b.protocol("tchain").for_each([&](bench::RunSpec& s) {
    trace::RedHatTraceArrivals::Params p;
    p.peak_rate = full ? 0.5 : 0.4;
    p.decay_seconds = full ? 36'000 : 2'000;
    util::Rng arr_rng(11);
    s.arrivals = trace::RedHatTraceArrivals(p).generate(n, arr_rng);
    attach(s, traced);
  });
  bench::run(bench::concat({&a, &b}), flags);

  print_census("(a) flash crowd", flash, flags);
  print_census("(b) trace-driven arrivals", traced, flags);
  return 0;
}
