// Resilience sweep: completion-time degradation and recovery behaviour
// under injected faults — control-message loss, abrupt crashes under
// lognormal session churn, and transient upload outages. Not a paper
// figure; companion to DESIGN.md "Failure model". The headline check:
// T-Chain's transaction watchdog and §II-B4 escrow keep survivors
// finishing (no hangs, no leaked obligations) even when 10-20% of
// control messages vanish and half of all churn exits are crashes.
#include "bench/common.h"

namespace {

struct Scenario {
  std::string name;
  tc::sim::FaultPlan plan;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 64 : 8);
  const auto leechers =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 200 : 48));
  const auto seeds =
      static_cast<std::size_t>(flags.get_int("seeds", full ? 10 : 3));

  // Loss-only rows isolate the control plane; churn rows add lognormal
  // sessions where half the exits are crashes (no goodbye, no escrow);
  // the last row stacks everything including upload outages.
  std::vector<Scenario> scenarios;
  scenarios.push_back({"baseline", {}});
  for (double loss : full ? std::vector<double>{0.05, 0.10, 0.20}
                          : std::vector<double>{0.10, 0.20}) {
    Scenario s;
    s.name = "loss=" + util::format_double(loss, 2);
    s.plan.control_loss = loss;
    s.plan.control_jitter = 0.02;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "churn";
    s.plan.session_kind = sim::FaultPlan::SessionKind::kLogNormal;
    s.plan.mean_session = 300.0;
    s.plan.session_sigma = 1.0;
    s.plan.crash_fraction = 0.5;
    scenarios.push_back(s);
    s.name = "loss=0.10+churn";
    s.plan.control_loss = 0.10;
    s.plan.control_jitter = 0.02;
    scenarios.push_back(s);
    s.name = "loss=0.10+churn+outages";
    s.plan.outage_rate = 0.002;
    s.plan.outage_mean_duration = 10.0;
    scenarios.push_back(s);
  }

  bench::banner(
      "Resilience sweep (fault injection)",
      "survivors complete under loss/crashes/outages; T-Chain recovers "
      "via tx watchdog + escrow, no transaction leaks");

  // Axis value indexes `scenarios`; the survivor census (leechers that did
  // not churn out, and their completion times) comes from the inspect hook.
  std::vector<double> idx(scenarios.size());
  for (std::size_t k = 0; k < scenarios.size(); ++k) idx[k] = double(k);

  bench::Sweep sweep(bench::base_config(leechers, file_mb * util::kMiB));
  sweep.protocols(protocols::paper_protocols())
      .seeds(seeds)
      .axis("scenario", idx,
            [&scenarios](bench::RunSpec& s, double i) {
              const auto& sc = scenarios[static_cast<std::size_t>(i)];
              s.config.faults = sc.plan;
              s.config.tx_timeout = 15.0;  // read by T-Chain's watchdog only
              s.set_tag("scenario", sc.name);
            })
      .for_each([](bench::RunSpec& s) {
        s.inspect = [](bt::Swarm& swarm, bt::Protocol&,
                       bench::RunRecord& rec) {
          std::size_t survivors = 0, finished = 0;
          double time_sum = 0;
          for (const auto* r : swarm.metrics().all()) {
            if (r->seeder || r->freerider) continue;
            if (r->depart_time >= 0 && !r->finished()) continue;  // churned
            ++survivors;
            if (r->finished()) {
              ++finished;
              time_sum += r->finish_time - r->join_time;
            }
          }
          rec.add_extra("survivors", static_cast<double>(survivors));
          rec.add_extra("surv_finished", static_cast<double>(finished));
          rec.add_extra("surv_time_sum", time_sum);
        };
      });
  const auto records = bench::run(sweep, flags);

  util::AsciiTable t({"scenario", "protocol", "mean (s)", "done/survived",
                      "crashes", "ctl drop", "tx timeouts", "refetches",
                      "keys lost", "escrow rec"});
  std::size_t i = 0;
  for (const auto& sc : scenarios) {
    for (const auto& name : protocols::paper_protocols()) {
      std::size_t survivors = 0, finished = 0, crashes = 0;
      std::uint64_t ctl_sent = 0, ctl_dropped = 0;
      std::uint64_t timeouts = 0, refetches = 0, keys_lost = 0,
                    keys_recovered = 0;
      double time_sum = 0;
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto& rec = records.at(i++);
        if (!rec.ok) continue;
        survivors += static_cast<std::size_t>(rec.extra_value("survivors", 0));
        finished +=
            static_cast<std::size_t>(rec.extra_value("surv_finished", 0));
        time_sum += rec.extra_value("surv_time_sum", 0);
        const auto& rs = rec.result.resilience;
        crashes += rs.crashes;
        ctl_sent += rs.control_sent;
        ctl_dropped += rs.control_dropped;
        timeouts += rs.transactions_timed_out;
        refetches += rs.piece_refetches;
        keys_lost += rs.keys_lost;
        keys_recovered += rs.keys_escrow_recovered;
      }
      const double drop_pct =
          ctl_sent ? 100.0 * static_cast<double>(ctl_dropped) /
                         static_cast<double>(ctl_sent)
                   : 0.0;
      t.add_row({sc.name, name,
                 finished ? util::format_double(
                                time_sum / static_cast<double>(finished), 1)
                          : "never",
                 std::to_string(finished) + "/" + std::to_string(survivors),
                 std::to_string(crashes),
                 util::format_double(drop_pct, 1) + "%",
                 std::to_string(timeouts), std::to_string(refetches),
                 std::to_string(keys_lost), std::to_string(keys_recovered)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
