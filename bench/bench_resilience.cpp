// Resilience sweep: completion-time degradation and recovery behaviour
// under injected faults — control-message loss, abrupt crashes under
// lognormal session churn, and transient upload outages. Not a paper
// figure; companion to DESIGN.md "Failure model". The headline check:
// T-Chain's transaction watchdog and §II-B4 escrow keep survivors
// finishing (no hangs, no leaked obligations) even when 10-20% of
// control messages vanish and half of all churn exits are crashes.
#include "bench/common.h"

namespace {

struct Scenario {
  std::string name;
  tc::sim::FaultPlan plan;
};

struct Outcome {
  tc::util::RunningStats mean_time;   // finished survivors' completion time
  std::size_t survivors = 0;          // leechers that did not churn out
  std::size_t finished = 0;           // ... of which finished
  std::size_t crashes = 0;
  std::size_t ctl_sent = 0, ctl_dropped = 0;
  std::size_t timeouts = 0, refetches = 0;
  std::size_t keys_lost = 0, keys_recovered = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 64 : 8);
  const auto leechers =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 200 : 48));
  const auto seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", full ? 10 : 3));

  // Loss-only rows isolate the control plane; churn rows add lognormal
  // sessions where half the exits are crashes (no goodbye, no escrow);
  // the last row stacks everything including upload outages.
  std::vector<Scenario> scenarios;
  scenarios.push_back({"baseline", {}});
  for (double loss : full ? std::vector<double>{0.05, 0.10, 0.20}
                          : std::vector<double>{0.10, 0.20}) {
    Scenario s;
    s.name = "loss=" + util::format_double(loss, 2);
    s.plan.control_loss = loss;
    s.plan.control_jitter = 0.02;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "churn";
    s.plan.session_kind = sim::FaultPlan::SessionKind::kLogNormal;
    s.plan.mean_session = 300.0;
    s.plan.session_sigma = 1.0;
    s.plan.crash_fraction = 0.5;
    scenarios.push_back(s);
    s.name = "loss=0.10+churn";
    s.plan.control_loss = 0.10;
    s.plan.control_jitter = 0.02;
    scenarios.push_back(s);
    s.name = "loss=0.10+churn+outages";
    s.plan.outage_rate = 0.002;
    s.plan.outage_mean_duration = 10.0;
    scenarios.push_back(s);
  }

  bench::banner(
      "Resilience sweep (fault injection)",
      "survivors complete under loss/crashes/outages; T-Chain recovers "
      "via tx watchdog + escrow, no transaction leaks");

  util::AsciiTable t({"scenario", "protocol", "mean (s)", "done/survived",
                      "crashes", "ctl drop", "tx timeouts", "refetches",
                      "keys lost", "escrow rec"});

  for (const auto& sc : scenarios) {
    for (const auto& name : protocols::paper_protocols()) {
      Outcome o;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        auto proto = protocols::make_protocol(name);
        auto cfg = bench::base_config(*proto, leechers,
                                      file_mb * util::kMiB, s);
        cfg.faults = sc.plan;
        cfg.tx_timeout = 15.0;  // read by T-Chain's watchdog only
        bt::Swarm swarm(cfg, *proto);
        swarm.run();

        const auto& m = swarm.metrics();
        for (const auto* rec : m.all()) {
          if (rec->seeder || rec->freerider) continue;
          if (rec->depart_time >= 0 && !rec->finished()) continue;  // churned
          ++o.survivors;
          if (rec->finished()) {
            ++o.finished;
            o.mean_time.add(rec->finish_time - rec->join_time);
          }
        }
        const auto& rs = m.resilience();
        o.crashes += rs.crashes;
        o.ctl_sent += rs.control_sent;
        o.ctl_dropped += rs.control_dropped;
        o.timeouts += rs.transactions_timed_out;
        o.refetches += rs.piece_refetches;
        o.keys_lost += rs.keys_lost;
        o.keys_recovered += rs.keys_escrow_recovered;
      }
      const double drop_pct =
          o.ctl_sent ? 100.0 * static_cast<double>(o.ctl_dropped) /
                           static_cast<double>(o.ctl_sent)
                     : 0.0;
      t.add_row({sc.name, name,
                 o.mean_time.count() ? util::format_double(o.mean_time.mean(), 1)
                                     : "never",
                 std::to_string(o.finished) + "/" + std::to_string(o.survivors),
                 std::to_string(o.crashes),
                 util::format_double(drop_pct, 1) + "%",
                 std::to_string(o.timeouts), std::to_string(o.refetches),
                 std::to_string(o.keys_lost), std::to_string(o.keys_recovered)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
