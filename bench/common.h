// Shared harness for the figure/table reproduction benches, built on the
// src/exp/ experiment runner (declarative sweeps, thread-pool execution).
//
// Every bench accepts:
//   --full        paper-scale parameters (slow; the paper used 128 MiB
//                 files, swarms up to 1000+, 30 seeds)
//   --seeds N     runs per data point (default 2-3 scaled, 30 full)
//   --file-mb M   shared file size
//   --csv         machine-readable table output
//   --jobs N      worker threads (default: all cores; byte-identical
//                 output at any level)
//   --records-csv / --records-json [PATH|-]
//                 dump the raw per-run RunRecords as CSV / JSON
//   --timing      include wall-clock columns in the record dump (breaks
//                 byte-identity across --jobs levels; off by default)
//   --trace[=PREFIX], --trace-csv[=PREFIX], --trace-limit N
//                 per-run obs event tracing: Chrome trace-event JSON
//                 (load PREFIX.run<i>.json in Perfetto) / raw event CSV /
//                 ring capacity (see exp::apply_trace_flags)
//   --check       verify every run online against the protocol invariant
//                 catalogue (src/check); violations are reported on stderr
//                 and the bench exits 2 without printing its tables
// plus bench-specific sweeps. Scaled defaults are chosen so each bench
// finishes in tens of seconds on one core while preserving the paper's
// qualitative shape (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/exp/runner.h"
#include "src/protocols/registry.h"
#include "src/trace/arrival.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace tc::bench {

using F = analysis::SwarmMetrics::PeerFilter;
using exp::RunRecord;
using exp::RunSpec;
using exp::Sweep;

// Kept as an alias so downstream code keeps compiling; the type itself
// lives in the library now (src/exp/results.h).
using RunResult = exp::RunResult;

// Base config shared by the paper benches. Piece size is left at its
// default here: Sweep::build() sets it per protocol (§IV-A), or pin it
// with Sweep::pin_piece_bytes().
inline bt::SwarmConfig base_config(std::size_t leechers,
                                   util::ByteCount file_bytes,
                                   std::uint64_t seed = 1) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.file_bytes = file_bytes;
  cfg.seed = seed;
  cfg.max_sim_time = 300'000.0;
  return cfg;
}

// The "Optimal" line of Figure 3 (Kumar/Ross bound) for the configured
// heterogeneous leecher classes.
inline double optimal_time(const bt::SwarmConfig& cfg) {
  std::vector<double> ups;
  ups.reserve(cfg.leecher_count);
  for (std::size_t i = 0; i < cfg.leecher_count; ++i) {
    ups.push_back(util::kbps_to_bytes_per_sec(
        cfg.leecher_upload_kbps[i % cfg.leecher_upload_kbps.size()]));
  }
  return analysis::optimal_completion_time(
      static_cast<double>(cfg.file_bytes),
      util::kbps_to_bytes_per_sec(cfg.seeder_upload_kbps), ups);
}

// Per-data-point aggregation: consumes the `seeds` consecutive records
// starting at records[i] (seeds are the innermost sweep axis, so the
// repetitions of one data point are contiguous). Failed runs are skipped
// and counted.
struct PointStats {
  util::RunningStats compliant;  // compliant mean completion times
  util::RunningStats uplink;     // uplink utilization (0..1)
  util::RunningStats fr_mean;    // freerider mean times (finished runs only)
  std::size_t fr_done = 0, fr_total = 0;
  std::size_t failed = 0;
};

inline PointStats accumulate(const std::vector<RunRecord>& records,
                             std::size_t& i, std::size_t seeds) {
  PointStats p;
  for (std::size_t s = 0; s < seeds; ++s) {
    const auto& r = records.at(i++);
    if (!r.ok) {
      ++p.failed;
      continue;
    }
    p.compliant.add(r.result.compliant_mean);
    p.uplink.add(r.result.uplink_utilization);
    if (r.result.freerider_mean >= 0) p.fr_mean.add(r.result.freerider_mean);
    p.fr_done += r.result.freerider_finished;
    p.fr_total += r.result.freerider_finished + r.result.freerider_unfinished;
  }
  return p;
}

// Concatenates the specs of several sweeps (multi-panel figures run all
// their panels through one pool) and re-indexes labels-preserving.
inline std::vector<RunSpec> concat(std::initializer_list<const Sweep*> sweeps) {
  std::vector<RunSpec> specs;
  for (const Sweep* s : sweeps) {
    auto part = s->build();
    for (auto& p : part) specs.push_back(std::move(p));
  }
  return specs;
}

// Runs the specs with --jobs/--quiet from the flags, honouring the shared
// tracing flags (--trace / --trace-csv / --trace-limit), and dumps raw
// records if --records-csv / --records-json were given.
inline std::vector<RunRecord> run(std::vector<RunSpec> specs,
                                  const util::Flags& flags) {
  exp::apply_trace_flags(specs, flags);
  exp::apply_check_flag(specs, flags);
  const auto records =
      exp::run_all(specs, exp::runner_options_from_flags(flags));
  if (flags.get_bool("check")) {
    std::size_t unsound = 0;
    const std::uint64_t violations =
        exp::total_check_violations(records, &unsound);
    if (violations > 0) {
      std::cerr << "[check] " << violations
                << " invariant violation(s) across " << records.size()
                << " run(s)";
      if (unsound > 0) std::cerr << " (" << unsound << " run(s) unsound)";
      std::cerr << "\n";
      std::exit(2);
    }
    if (unsound > 0) {
      std::cerr << "[check] warning: " << unsound
                << " run(s) had lossy verification windows (UNSOUND)\n";
    }
  }
  const bool timing = flags.get_bool("timing");
  for (const char* kind : {"records-csv", "records-json"}) {
    if (!flags.has(kind)) continue;
    const std::string dest = flags.get_string(kind, "-");
    const bool json = std::string(kind) == "records-json";
    if (dest == "-" || dest == "true") {
      json ? exp::write_json(std::cout, records, timing)
           : exp::write_csv(std::cout, records, timing);
    } else {
      std::ofstream out(dest);
      json ? exp::write_json(out, records, timing)
           : exp::write_csv(out, records, timing);
    }
  }
  return records;
}

inline std::vector<RunRecord> run(const Sweep& sweep,
                                  const util::Flags& flags) {
  return run(sweep.build(), flags);
}

inline void print_table(const util::AsciiTable& t, const util::Flags& flags) {
  if (flags.get_bool("csv")) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

// Paper expectation banner: printed above each bench's measured output so
// the terminal shows claim vs. measurement side by side.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " ===\n"
            << "Paper: " << claim << "\n\n";
}

}  // namespace tc::bench
