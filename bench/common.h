// Shared harness for the figure/table reproduction benches.
//
// Every bench accepts:
//   --full        paper-scale parameters (slow; the paper used 128 MiB
//                 files, swarms up to 1000+, 30 seeds)
//   --seeds N     runs per data point (default 2-3 scaled, 30 full)
//   --file-mb M   shared file size
//   --csv         machine-readable output
// plus bench-specific sweeps. Scaled defaults are chosen so each bench
// finishes in tens of seconds on one core while preserving the paper's
// qualitative shape (see EXPERIMENTS.md).
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/protocols/registry.h"
#include "src/protocols/tchain.h"
#include "src/trace/arrival.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace tc::bench {

using F = analysis::SwarmMetrics::PeerFilter;

struct RunResult {
  double compliant_mean = 0.0;       // mean download completion time (s)
  std::size_t compliant_finished = 0;
  std::size_t compliant_unfinished = 0;
  double freerider_mean = -1.0;      // < 0: none finished
  std::size_t freerider_finished = 0;
  std::size_t freerider_unfinished = 0;
  double uplink_utilization = 0.0;   // 0..1 (compliant)
  double end_time = 0.0;
  util::Distribution compliant_times;
  util::Distribution freerider_times;
};

// Runs one swarm to completion and summarizes it. `arrivals` empty =>
// flash crowd.
inline RunResult run_swarm(const bt::SwarmConfig& cfg, bt::Protocol& proto,
                           std::vector<util::SimTime> arrivals = {}) {
  bt::Swarm swarm(cfg, proto, std::move(arrivals));
  swarm.run();
  const auto& m = swarm.metrics();
  RunResult r;
  r.compliant_times = m.completion_times(F::kCompliant);
  r.freerider_times = m.completion_times(F::kFreeRiders);
  r.compliant_mean = r.compliant_times.mean();
  r.compliant_finished = r.compliant_times.count();
  r.compliant_unfinished = m.unfinished_count(F::kCompliant);
  r.freerider_finished = r.freerider_times.count();
  r.freerider_unfinished = m.unfinished_count(F::kFreeRiders);
  if (r.freerider_finished > 0) r.freerider_mean = r.freerider_times.mean();
  r.uplink_utilization =
      m.mean_uplink_utilization(F::kCompliant, swarm.end_time());
  r.end_time = swarm.end_time();
  return r;
}

// Builds a config with the protocol's piece size applied.
inline bt::SwarmConfig base_config(const bt::Protocol& proto,
                                   std::size_t leechers,
                                   util::ByteCount file_bytes,
                                   std::uint64_t seed) {
  bt::SwarmConfig cfg;
  cfg.leecher_count = leechers;
  cfg.file_bytes = file_bytes;
  cfg.piece_bytes = proto.default_piece_bytes();
  cfg.seed = seed;
  cfg.max_sim_time = 300'000.0;
  return cfg;
}

// The "Optimal" line of Figure 3 (Kumar/Ross bound) for the configured
// heterogeneous leecher classes.
inline double optimal_time(const bt::SwarmConfig& cfg) {
  std::vector<double> ups;
  ups.reserve(cfg.leecher_count);
  for (std::size_t i = 0; i < cfg.leecher_count; ++i) {
    ups.push_back(util::kbps_to_bytes_per_sec(
        cfg.leecher_upload_kbps[i % cfg.leecher_upload_kbps.size()]));
  }
  return analysis::optimal_completion_time(
      static_cast<double>(cfg.file_bytes),
      util::kbps_to_bytes_per_sec(cfg.seeder_upload_kbps), ups);
}

inline void print_table(const util::AsciiTable& t, const util::Flags& flags) {
  if (flags.get_bool("csv")) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

// Paper expectation banner: printed above each bench's measured output so
// the terminal shows claim vs. measurement side by side.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " ===\n"
            << "Paper: " << claim << "\n\n";
}

}  // namespace tc::bench
