// Figure 8: the collusion (Sybil) attack against T-Chain — all free-riders
// send false reception reports for each other. Paper: colluding
// free-riders CAN then complete, but ~40x slower than compliant leechers
// (sub-dial-up effective rate), and compliant leechers are essentially
// unaffected (compare Figures 7(a) and 8(a)).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 16);
  const auto seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", full ? 30 : 2));
  const double frac = flags.get_double("freeriders", 0.25);

  std::vector<std::size_t> swarms = full
      ? std::vector<std::size_t>{200, 400, 600, 800, 1000}
      : std::vector<std::size_t>{50, 100, 150, 200};

  bench::banner("Figure 8 (collusion against T-Chain)",
                "with false receipts colluders complete, but 10-40x slower "
                "than compliant leechers; compliant performance unchanged "
                "vs Figure 7(a)");

  util::AsciiTable t({"swarm", "mode", "compliant mean (s)",
                      "freerider mean (s)", "freeriders done", "slowdown x"});

  for (std::size_t n : swarms) {
    for (bool collude : {false, true}) {
      util::RunningStats compliant, fr_mean;
      std::size_t fr_done = 0, fr_total = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        protocols::TChainProtocol proto;
        auto cfg = bench::base_config(proto, n, file_mb * util::kMiB, s);
        cfg.freerider_fraction = frac;
        cfg.freerider_collude = collude;
        cfg.freerider_stall_timeout = 3000.0;
        const auto r = bench::run_swarm(cfg, proto);
        compliant.add(r.compliant_mean);
        if (r.freerider_mean >= 0) fr_mean.add(r.freerider_mean);
        fr_done += r.freerider_finished;
        fr_total += r.freerider_finished + r.freerider_unfinished;
      }
      const double slowdown =
          fr_mean.count() ? fr_mean.mean() / compliant.mean() : 0.0;
      t.add_row({std::to_string(n), collude ? "collusion" : "no collusion",
                 util::format_double(compliant.mean(), 1),
                 fr_mean.count() ? util::format_double(fr_mean.mean(), 1)
                                 : "never",
                 std::to_string(fr_done) + "/" + std::to_string(fr_total),
                 fr_mean.count() ? util::format_double(slowdown, 1) : "-"});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
