// Figure 8: the collusion (Sybil) attack against T-Chain — all free-riders
// send false reception reports for each other. Paper: colluding
// free-riders CAN then complete, but ~40x slower than compliant leechers
// (sub-dial-up effective rate), and compliant leechers are essentially
// unaffected (compare Figures 7(a) and 8(a)).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 16);
  const auto seeds =
      static_cast<std::size_t>(flags.get_int("seeds", full ? 30 : 2));
  const double frac = flags.get_double("freeriders", 0.25);

  const std::vector<double> swarms = full
      ? std::vector<double>{200, 400, 600, 800, 1000}
      : std::vector<double>{50, 100, 150, 200};

  bench::banner("Figure 8 (collusion against T-Chain)",
                "with false receipts colluders complete, but 10-40x slower "
                "than compliant leechers; compliant performance unchanged "
                "vs Figure 7(a)");

  bench::Sweep sweep(bench::base_config(0, file_mb * util::kMiB));
  sweep.protocol("tchain")
      .seeds(seeds)
      .axis("swarm", swarms,
            [frac](bench::RunSpec& s, double n) {
              s.config.leecher_count = static_cast<std::size_t>(n);
              s.config.freerider_fraction = frac;
              s.config.freerider_stall_timeout = 3000.0;
            })
      .axis("collude", {0, 1}, [](bench::RunSpec& s, double c) {
        s.config.freerider_collude = c != 0;
      });
  const auto records = bench::run(sweep, flags);

  util::AsciiTable t({"swarm", "mode", "compliant mean (s)",
                      "freerider mean (s)", "freeriders done", "slowdown x"});
  std::size_t i = 0;
  for (double n : swarms) {
    for (bool collude : {false, true}) {
      const auto p = bench::accumulate(records, i, seeds);
      const double slowdown =
          p.fr_mean.count() ? p.fr_mean.mean() / p.compliant.mean() : 0.0;
      t.add_row({exp::format_axis_value(n),
                 collude ? "collusion" : "no collusion",
                 util::format_double(p.compliant.mean(), 1),
                 p.fr_mean.count() ? util::format_double(p.fr_mean.mean(), 1)
                                   : "never",
                 std::to_string(p.fr_done) + "/" + std::to_string(p.fr_total),
                 p.fr_mean.count() ? util::format_double(slowdown, 1) : "-"});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
