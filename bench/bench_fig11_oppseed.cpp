// Figure 11: opportunistic seeding.
// (a) Cumulative chains created by the seeder vs. by leechers in a flash
//     crowd — paper: leechers opportunistically seed heavily right after
//     startup (the seeder cannot satisfy all newcomers), then nearly stop.
// (b) Fraction of chains created by opportunistic seeding under trace
//     arrivals as the free-rider share grows — paper: more free-riders
//     terminate more chains, so leechers compensate with more
//     opportunistic seeding.
// --no-oppseed ablates the mechanism to show the utilization gap it closes.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 150));
  const bool oppseed = !flags.get_bool("no-oppseed");

  bench::banner("Figure 11 (opportunistic seeding)",
                "(a) a burst of leecher-created chains right after startup, "
                "then ~zero; (b) the opportunistic fraction grows with the "
                "free-rider share");

  // ---- (a) cumulative creation by initiator, flash crowd --------------------
  {
    protocols::TChainProtocol proto;
    auto cfg = bench::base_config(proto, n, file_mb * util::kMiB, 1);
    cfg.opportunistic_seeding = oppseed;
    bt::Swarm swarm(cfg, proto);
    swarm.run();
    const auto& census = proto.chains().census();
    util::AsciiTable t({"time (s)", "cumulative by seeder",
                        "cumulative by leechers"});
    const std::size_t rows = 12;
    for (std::size_t k = 0; k < rows && !census.empty(); ++k) {
      const std::size_t i = k * (census.size() - 1) / (rows - 1);
      t.add_row({util::format_double(census[i].t, 0),
                 std::to_string(census[i].cumulative_seeder),
                 std::to_string(census[i].cumulative_leecher)});
    }
    std::cout << "(a) flash crowd, opportunistic seeding "
              << (oppseed ? "ON" : "OFF (ablation)") << "\n";
    bench::print_table(t, flags);
    const auto& m = swarm.metrics();
    std::cout << "mean completion "
              << util::format_double(
                     m.completion_times(bench::F::kCompliant).mean(), 1)
              << " s, uplink utilization "
              << util::format_double(
                     100 * m.mean_uplink_utilization(bench::F::kCompliant,
                                                     swarm.end_time()),
                     1)
              << "%\n\n";
  }

  // ---- (b) opportunistic fraction vs free-rider share, trace ----------------
  {
    util::AsciiTable t({"freeriders (%)", "by seeder", "by leechers",
                        "opportunistic fraction"});
    for (double frac : {0.0, 0.25, 0.5}) {
      protocols::TChainProtocol proto;
      auto cfg = bench::base_config(proto, n, file_mb * util::kMiB, 2);
      cfg.freerider_fraction = frac;
      cfg.opportunistic_seeding = oppseed;
      cfg.wait_for_freeriders = false;
      trace::RedHatTraceArrivals::Params p;
      p.peak_rate = full ? 0.5 : 0.4;
      p.decay_seconds = full ? 36'000 : 2'000;
      util::Rng arr_rng(13);
      auto arrivals = trace::RedHatTraceArrivals(p).generate(n, arr_rng);
      bt::Swarm swarm(cfg, proto, std::move(arrivals));
      swarm.run();
      t.add_row({util::format_double(100 * frac, 0),
                 std::to_string(proto.chains().created_by_seeder()),
                 std::to_string(proto.chains().created_by_leechers()),
                 util::format_double(proto.chains().opportunistic_fraction(), 3)});
    }
    std::cout << "(b) trace-driven arrivals\n";
    bench::print_table(t, flags);
  }
  return 0;
}
