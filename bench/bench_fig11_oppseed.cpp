// Figure 11: opportunistic seeding.
// (a) Cumulative chains created by the seeder vs. by leechers in a flash
//     crowd — paper: leechers opportunistically seed heavily right after
//     startup (the seeder cannot satisfy all newcomers), then nearly stop.
// (b) Fraction of chains created by opportunistic seeding under trace
//     arrivals as the free-rider share grows — paper: more free-riders
//     terminate more chains, so leechers compensate with more
//     opportunistic seeding.
// --no-oppseed ablates the mechanism to show the utilization gap it closes.
#include "bench/common.h"
#include "src/obs/chain_view.h"
#include "src/protocols/tchain.h"

namespace {

struct ChainStats {
  std::vector<tc::obs::CensusPoint> census;
  std::uint64_t by_seeder = 0, by_leechers = 0;
  double opp_fraction = 0;
};

// Cumulative creation counts come from the obs::ChainView reconstruction
// of the run's chain trace; the opportunistic fraction still reads the
// registry scalar (it is not census-derived).
void read_chains(tc::bench::RunSpec& spec, ChainStats& out) {
  spec.trace.enabled = true;
  spec.trace.kind_mask = tc::obs::kChainKinds;
  spec.trace.ring_capacity =
      spec.config.piece_count() * (spec.config.leecher_count + 8) * 3 + 65536;
  spec.inspect = [&out](tc::bt::Swarm& swarm, tc::bt::Protocol& proto,
                        tc::bench::RunRecord&) {
    const auto* tchain =
        dynamic_cast<const tc::protocols::TChainProtocol*>(&proto);
    if (tchain == nullptr) return;
    const auto view = tc::obs::ChainView::reconstruct(swarm.obs()->events());
    out.census = view.census();
    out.by_seeder = view.created_by_seeder();
    out.by_leechers = view.created_by_leechers();
    out.opp_fraction = tchain->chains().opportunistic_fraction();
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 150));
  const bool oppseed = !flags.get_bool("no-oppseed");

  bench::banner("Figure 11 (opportunistic seeding)",
                "(a) a burst of leecher-created chains right after startup, "
                "then ~zero; (b) the opportunistic fraction grows with the "
                "free-rider share");

  const std::vector<double> fracs = {0.0, 0.25, 0.5};

  // Panel (a): flash crowd, seed 1. Panel (b): one run per free-rider
  // share, trace arrivals, seed 2. All through one pool.
  ChainStats flash;
  std::vector<ChainStats> traced(fracs.size());

  auto cfg_a = bench::base_config(n, file_mb * util::kMiB, 1);
  cfg_a.opportunistic_seeding = oppseed;
  bench::Sweep a(cfg_a);
  a.protocol("tchain").for_each(
      [&](bench::RunSpec& s) { read_chains(s, flash); });

  auto cfg_b = bench::base_config(n, file_mb * util::kMiB, 2);
  cfg_b.opportunistic_seeding = oppseed;
  cfg_b.wait_for_freeriders = false;
  bench::Sweep b(cfg_b);
  b.protocol("tchain").axis(
      "freeriders", fracs, [&, full](bench::RunSpec& s, double frac) {
        s.config.freerider_fraction = frac;
        trace::RedHatTraceArrivals::Params p;
        p.peak_rate = full ? 0.5 : 0.4;
        p.decay_seconds = full ? 36'000 : 2'000;
        util::Rng arr_rng(13);
        s.arrivals = trace::RedHatTraceArrivals(p).generate(n, arr_rng);
      });
  std::size_t slot = 0;
  b.for_each([&](bench::RunSpec& s) { read_chains(s, traced.at(slot++)); });

  const auto records = bench::run(bench::concat({&a, &b}), flags);

  {
    util::AsciiTable t({"time (s)", "cumulative by seeder",
                        "cumulative by leechers"});
    const auto& census = flash.census;
    const std::size_t rows = 12;
    for (std::size_t k = 0; k < rows && !census.empty(); ++k) {
      const std::size_t i = k * (census.size() - 1) / (rows - 1);
      t.add_row({util::format_double(census[i].t, 0),
                 std::to_string(census[i].cumulative_seeder),
                 std::to_string(census[i].cumulative_leecher)});
    }
    std::cout << "(a) flash crowd, opportunistic seeding "
              << (oppseed ? "ON" : "OFF (ablation)") << "\n";
    bench::print_table(t, flags);
    const auto& r = records.at(0).result;
    std::cout << "mean completion "
              << util::format_double(r.compliant_mean, 1)
              << " s, uplink utilization "
              << util::format_double(100 * r.uplink_utilization, 1) << "%\n\n";
  }
  {
    util::AsciiTable t({"freeriders (%)", "by seeder", "by leechers",
                        "opportunistic fraction"});
    for (std::size_t k = 0; k < fracs.size(); ++k) {
      t.add_row({util::format_double(100 * fracs[k], 0),
                 std::to_string(traced[k].by_seeder),
                 std::to_string(traced[k].by_leechers),
                 util::format_double(traced[k].opp_fraction, 3)});
    }
    std::cout << "(b) trace-driven arrivals\n";
    bench::print_table(t, flags);
  }
  return 0;
}
