// §III-C overhead: google-benchmark microbenchmarks for the cryptographic
// machinery T-Chain adds to BitTorrent. The paper (citing Dandelion [14])
// budgets 0.715 ms to encrypt a 128 KB piece and concludes <1.2% total
// encryption overhead and ~0.02% storage overhead for a 1 GB file; the
// REPORT lines printed at the end restate those ratios with this machine's
// measured numbers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "src/crypto/cipher.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/net/message.h"

namespace {

using namespace tc;

util::Bytes make_piece(std::size_t len) {
  util::Bytes b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  return b;
}

void BM_ChaCha20EncryptPiece(benchmark::State& state) {
  const auto piece = make_piece(static_cast<std::size_t>(state.range(0)));
  const auto cipher = crypto::make_cipher(crypto::CipherKind::kChaCha20);
  crypto::KeySource keys(1);
  const auto key = keys.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher->encrypt(key, piece));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20EncryptPiece)->Arg(64 << 10)->Arg(128 << 10)->Arg(256 << 10);

void BM_XteaCtrEncryptPiece(benchmark::State& state) {
  const auto piece = make_piece(static_cast<std::size_t>(state.range(0)));
  const auto cipher = crypto::make_cipher(crypto::CipherKind::kXteaCtr);
  crypto::KeySource keys(1);
  const auto key = keys.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher->encrypt(key, piece));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_XteaCtrEncryptPiece)->Arg(64 << 10)->Arg(128 << 10);

void BM_Sha256PieceHash(benchmark::State& state) {
  const auto piece = make_piece(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(piece));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256PieceHash)->Arg(64 << 10)->Arg(128 << 10);

void BM_ReceiptMac(benchmark::State& state) {
  const util::Bytes key(32, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::receipt_mac(key, 123, 1, 2, 3));
  }
}
BENCHMARK(BM_ReceiptMac);

void BM_KeyGeneration(benchmark::State& state) {
  crypto::KeySource keys(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.next());
  }
}
BENCHMARK(BM_KeyGeneration);

void BM_EncryptedPieceCodec(benchmark::State& state) {
  net::EncryptedPieceMsg m;
  m.tx = 1;
  m.chain = 2;
  m.donor = 3;
  m.requestor = 4;
  m.payee = 5;
  m.piece = 6;
  m.ciphertext = make_piece(64 << 10);
  const net::Message msg{m};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_message(net::encode_message(msg)));
  }
}
BENCHMARK(BM_EncryptedPieceCodec);

// Printed after the benchmark table: the §III-C ratios with our numbers.
struct OverheadReport {
  ~OverheadReport() {
    const std::size_t piece = 128 << 10;
    const auto data = make_piece(piece);
    const auto cipher = crypto::make_cipher(crypto::CipherKind::kChaCha20);
    crypto::KeySource keys(1);
    const auto key = keys.next();
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int reps = 200;
    for (int i = 0; i < reps; ++i)
      benchmark::DoNotOptimize(cipher->encrypt(key, data));
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      reps;
    // 1 GiB file, every piece encrypted once + decrypted once; transfer at
    // 8 Mbps (paper's comparison point).
    const double pieces_per_gib = (1024.0 * 1024 * 1024) / piece;
    const double crypto_seconds = 2.0 * pieces_per_gib * ms / 1000.0;
    const double transfer_seconds = (1024.0 * 8.0) / 8.0;  // 1 GiB at 8 Mbps
    std::printf(
        "\nREPORT (paper §III-C): encrypt 128 KiB piece: %.3f ms "
        "(paper cites 0.715 ms)\n"
        "REPORT: 1 GiB encrypt+decrypt: %.1f s vs %.0f s transfer at 8 Mbps "
        "-> %.2f%% overhead (paper: <1.2%%)\n"
        "REPORT: per-piece key+nonce storage: 44 B -> %.4f%% of a 1 GiB file "
        "with 128 KiB pieces (paper: ~0.02%%)\n",
        ms, crypto_seconds, transfer_seconds,
        100.0 * crypto_seconds / transfer_seconds,
        100.0 * (44.0 * pieces_per_gib) / (1024.0 * 1024 * 1024));
  }
} report_on_exit;

}  // namespace

BENCHMARK_MAIN();
