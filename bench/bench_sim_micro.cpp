// Simulator micro-costs (infrastructure bench): event-queue throughput,
// fluid bandwidth-model updates, bitfield/LRF selection, tracker sampling.
#include <benchmark/benchmark.h>

#include "src/bt/bitfield.h"
#include "src/net/tracker.h"
#include "src/sim/bandwidth.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace {

using namespace tc;

void BM_EventScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < n; ++i) {
      s.schedule_at((i * 2654435761u) % 1000, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    std::vector<sim::Simulator::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i)
      ids.push_back(s.schedule_at(i, [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventCancellation);

void BM_BandwidthFlowChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::BandwidthModel bw(s);
    for (sim::NodeId u = 1; u <= 20; ++u) bw.set_capacity(u, 100'000.0);
    int completed = 0;
    for (int i = 0; i < 2000; ++i) {
      bw.start_flow(1 + static_cast<sim::NodeId>(i % 20),
                    100 + static_cast<sim::NodeId>(i % 50), 65536.0,
                    [&](sim::FlowId) { ++completed; });
    }
    s.run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BandwidthFlowChurn);

void BM_BitfieldMissingFrom(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  bt::Bitfield mine(pieces), theirs(pieces);
  for (std::size_t i = 0; i < pieces; ++i) {
    if (rng.bernoulli(0.5)) mine.set(static_cast<bt::PieceIndex>(i));
    if (rng.bernoulli(0.7)) theirs.set(static_cast<bt::PieceIndex>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mine.missing_from(theirs));
  }
}
BENCHMARK(BM_BitfieldMissingFrom)->Arg(512)->Arg(2048);

void BM_TrackerNeighborList(benchmark::State& state) {
  net::Tracker tracker(50);
  for (net::PeerId p = 1; p <= static_cast<net::PeerId>(state.range(0)); ++p)
    tracker.announce(p);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.neighbor_list(1, rng));
  }
}
BENCHMARK(BM_TrackerNeighborList)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
