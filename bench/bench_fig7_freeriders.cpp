// Figure 7: flash crowd with 25% free-riders mounting the large-view
// exploit + whitewashing. (a) compliant leechers' completion times —
// paper: BitTorrent/PropShare/FairTorrent degrade by ~28-33%, T-Chain is
// unaffected; (b) free-riders' completion times — paper: they succeed in
// all three baselines (FairTorrent fastest via whitewashing) and NOT A
// SINGLE free-rider completes under T-Chain.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 16);
  const auto seeds =
      static_cast<std::size_t>(flags.get_int("seeds", full ? 30 : 2));
  const double frac = flags.get_double("freeriders", 0.25);

  std::vector<double> swarms = full
      ? std::vector<double>{200, 400, 600, 800, 1000}
      : std::vector<double>{50, 100, 150, 200};
  if (flags.has("swarm")) {
    swarms = {static_cast<double>(flags.get_int("swarm", 100))};
  }

  bench::banner("Figure 7 (25% free-riders, flash crowd)",
                "compliant: baselines degrade ~30%, T-Chain protected; "
                "free-riders: succeed in baselines (FairTorrent fastest), "
                "zero complete under T-Chain");

  const auto protos = protocols::paper_protocols();

  // Two sweeps through one pool: the attacked swarm and a same-seed
  // no-free-rider baseline for the degradation column.
  bench::Sweep attacked(bench::base_config(0, file_mb * util::kMiB));
  attacked.protocols(protos)
      .seeds(seeds)
      .axis("swarm", swarms, [frac](bench::RunSpec& s, double n) {
        s.config.leecher_count = static_cast<std::size_t>(n);
        s.config.freerider_fraction = frac;
        s.set_tag("freeriders", exp::format_axis_value(frac));
      });
  bench::Sweep baseline(bench::base_config(0, file_mb * util::kMiB));
  baseline.protocols(protos)
      .seeds(seeds)
      .axis("swarm", swarms, [](bench::RunSpec& s, double n) {
        s.config.leecher_count = static_cast<std::size_t>(n);
        s.set_tag("freeriders", "0");
      });

  const auto records = bench::run(bench::concat({&attacked, &baseline}), flags);

  util::AsciiTable t({"swarm", "protocol", "compliant mean (s)", "ci95",
                      "freerider mean (s)", "freeriders done",
                      "no-freerider mean (s)"});
  std::size_t i = 0;                          // walks the attacked records
  std::size_t j = swarms.size() * protos.size() * seeds;  // baseline records
  for (double n : swarms) {
    for (const auto& name : protos) {
      const auto a = bench::accumulate(records, i, seeds);
      const auto b = bench::accumulate(records, j, seeds);
      t.add_row({exp::format_axis_value(n), name,
                 util::format_double(a.compliant.mean(), 1),
                 "+-" + util::format_double(a.compliant.ci95_half_width(), 1),
                 a.fr_mean.count() ? util::format_double(a.fr_mean.mean(), 1)
                                   : "never",
                 std::to_string(a.fr_done) + "/" + std::to_string(a.fr_total),
                 util::format_double(b.compliant.mean(), 1)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
