// Figure 7: flash crowd with 25% free-riders mounting the large-view
// exploit + whitewashing. (a) compliant leechers' completion times —
// paper: BitTorrent/PropShare/FairTorrent degrade by ~28-33%, T-Chain is
// unaffected; (b) free-riders' completion times — paper: they succeed in
// all three baselines (FairTorrent fastest via whitewashing) and NOT A
// SINGLE free-rider completes under T-Chain.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 16);
  const auto seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", full ? 30 : 2));
  const double frac = flags.get_double("freeriders", 0.25);

  std::vector<std::size_t> swarms = full
      ? std::vector<std::size_t>{200, 400, 600, 800, 1000}
      : std::vector<std::size_t>{50, 100, 150, 200};

  bench::banner("Figure 7 (25% free-riders, flash crowd)",
                "compliant: baselines degrade ~30%, T-Chain protected; "
                "free-riders: succeed in baselines (FairTorrent fastest), "
                "zero complete under T-Chain");

  util::AsciiTable t({"swarm", "protocol", "compliant mean (s)", "ci95",
                      "freerider mean (s)", "freeriders done",
                      "no-freerider mean (s)"});

  for (std::size_t n : swarms) {
    for (const auto& name : protocols::paper_protocols()) {
      util::RunningStats compliant, baseline;
      util::RunningStats fr_mean;
      std::size_t fr_done = 0, fr_total = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        // With free-riders.
        auto proto = protocols::make_protocol(name);
        auto cfg = bench::base_config(*proto, n, file_mb * util::kMiB, s);
        cfg.freerider_fraction = frac;
        const auto r = bench::run_swarm(cfg, *proto);
        compliant.add(r.compliant_mean);
        if (r.freerider_mean >= 0) fr_mean.add(r.freerider_mean);
        fr_done += r.freerider_finished;
        fr_total += r.freerider_finished + r.freerider_unfinished;

        // Baseline (same seed, no free-riders) for the degradation column.
        auto proto0 = protocols::make_protocol(name);
        auto cfg0 = bench::base_config(*proto0, n, file_mb * util::kMiB, s);
        baseline.add(bench::run_swarm(cfg0, *proto0).compliant_mean);
      }
      t.add_row({std::to_string(n), name,
                 util::format_double(compliant.mean(), 1),
                 "+-" + util::format_double(compliant.ci95_half_width(), 1),
                 fr_mean.count() ? util::format_double(fr_mean.mean(), 1)
                                 : "never",
                 std::to_string(fr_done) + "/" + std::to_string(fr_total),
                 util::format_double(baseline.mean(), 1)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
