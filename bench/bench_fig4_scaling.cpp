// Figure 4: T-Chain scaling. (a) file-size effect at fixed population
// (paper: 600 leechers, 32 MB..1024 MB — completion time grows linearly);
// (b) swarm-size effect at fixed file (paper: 128 MB, 10..10,000 leechers
// — completion time converges to a constant).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto seeds =
      static_cast<std::size_t>(flags.get_int("seeds", full ? 30 : 2));
  const std::size_t leechers =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 100));
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);

  const std::vector<double> sizes_mb = full
      ? std::vector<double>{32, 64, 128, 256, 512, 1024}
      : std::vector<double>{2, 4, 8, 16, 32};
  const std::vector<double> swarms = full
      ? std::vector<double>{10, 50, 100, 500, 1000, 5000, 10000}
      : std::vector<double>{10, 25, 50, 100, 200, 400};

  bench::banner("Figure 4 (T-Chain scaling)",
                "(a) completion time increases linearly with file size; "
                "(b) completion time converges and stays nearly constant "
                "with swarm size (seeder-dominated below ~200 leechers)");

  // (a) file-size sweep at fixed population.
  bench::Sweep by_file(bench::base_config(leechers, 0));
  by_file.protocol("tchain")
      .seeds(seeds)
      .axis("file_mb", sizes_mb, [](bench::RunSpec& s, double mb) {
        s.config.file_bytes = static_cast<util::ByteCount>(mb) * util::kMiB;
      });
  // (b) swarm-size sweep at fixed file.
  bench::Sweep by_swarm(bench::base_config(0, file_mb * util::kMiB));
  by_swarm.protocol("tchain")
      .seeds(seeds)
      .axis("swarm", swarms, [](bench::RunSpec& s, double n) {
        s.config.leecher_count = static_cast<std::size_t>(n);
      });

  const auto records = bench::run(bench::concat({&by_file, &by_swarm}), flags);
  std::size_t i = 0;

  {
    util::AsciiTable t({"file (MiB)", "mean completion (s)", "ci95",
                        "sec per MiB"});
    for (double mb : sizes_mb) {
      const auto p = bench::accumulate(records, i, seeds);
      t.add_row({exp::format_axis_value(mb),
                 util::format_double(p.compliant.mean(), 1),
                 "+-" + util::format_double(p.compliant.ci95_half_width(), 1),
                 util::format_double(p.compliant.mean() / mb, 2)});
    }
    std::cout << "(a) file-size effect, " << leechers << " leechers\n";
    bench::print_table(t, flags);
  }
  {
    util::AsciiTable t({"leechers", "mean completion (s)", "ci95"});
    for (double n : swarms) {
      const auto p = bench::accumulate(records, i, seeds);
      t.add_row({exp::format_axis_value(n),
                 util::format_double(p.compliant.mean(), 1),
                 "+-" + util::format_double(p.compliant.ci95_half_width(), 1)});
    }
    std::cout << "\n(b) swarm-size effect, " << file_mb << " MiB file\n";
    bench::print_table(t, flags);
  }
  return 0;
}
