// Figure 4: T-Chain scaling. (a) file-size effect at fixed population
// (paper: 600 leechers, 32 MB..1024 MB — completion time grows linearly);
// (b) swarm-size effect at fixed file (paper: 128 MB, 10..10,000 leechers
// — completion time converges to a constant).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", full ? 30 : 2));

  bench::banner("Figure 4 (T-Chain scaling)",
                "(a) completion time increases linearly with file size; "
                "(b) completion time converges and stays nearly constant "
                "with swarm size (seeder-dominated below ~200 leechers)");

  // ---- (a) file size sweep -------------------------------------------------
  {
    const std::size_t leechers =
        static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 100));
    std::vector<int> sizes_mb = full
        ? std::vector<int>{32, 64, 128, 256, 512, 1024}
        : std::vector<int>{2, 4, 8, 16, 32};
    util::AsciiTable t({"file (MiB)", "mean completion (s)", "ci95",
                        "sec per MiB"});
    for (int mb : sizes_mb) {
      util::RunningStats mean_s;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        protocols::TChainProtocol proto;
        auto cfg = bench::base_config(proto, leechers, mb * util::kMiB, s);
        mean_s.add(bench::run_swarm(cfg, proto).compliant_mean);
      }
      t.add_row({std::to_string(mb), util::format_double(mean_s.mean(), 1),
                 "+-" + util::format_double(mean_s.ci95_half_width(), 1),
                 util::format_double(mean_s.mean() / mb, 2)});
    }
    std::cout << "(a) file-size effect, " << leechers << " leechers\n";
    bench::print_table(t, flags);
  }

  // ---- (b) swarm size sweep -------------------------------------------------
  {
    const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
    std::vector<std::size_t> swarms = full
        ? std::vector<std::size_t>{10, 50, 100, 500, 1000, 5000, 10000}
        : std::vector<std::size_t>{10, 25, 50, 100, 200, 400};
    util::AsciiTable t({"leechers", "mean completion (s)", "ci95"});
    for (std::size_t n : swarms) {
      util::RunningStats mean_s;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        protocols::TChainProtocol proto;
        auto cfg = bench::base_config(proto, n, file_mb * util::kMiB, s);
        mean_s.add(bench::run_swarm(cfg, proto).compliant_mean);
      }
      t.add_row({std::to_string(n), util::format_double(mean_s.mean(), 1),
                 "+-" + util::format_double(mean_s.ci95_half_width(), 1)});
    }
    std::cout << "\n(b) swarm-size effect, " << file_mb << " MiB file\n";
    bench::print_table(t, flags);
  }
  return 0;
}
