// Figure 13: small files under high churn. 1000-leecher flash crowd where
// a finished leecher is immediately replaced by a newcomer; the shared
// file has 1..50 pieces; mean download throughput of compliant leechers
// over the first 1000 s. Paper: (a) without free-riders, BT-family
// throughput collapses below ~5 pieces (T-Chain best there); between 5-30
// pieces RandomBT/FairTorrent beat T-Chain (encryption/key overhead);
// (b) with 50% free-riders T-Chain wins at every size.
#include "bench/common.h"

namespace {

void sweep(double freerider_frac, const tc::util::Flags& flags,
           std::size_t population, double horizon) {
  using namespace tc;
  const std::vector<int> piece_counts = {1, 2, 3, 5, 10, 20, 30, 50};
  std::vector<std::string> protos = {"randombt", "bittorrent", "propshare",
                                     "fairtorrent", "tchain"};
  util::AsciiTable t({"pieces", "protocol", "mean throughput (Kbps)"});
  for (int pieces : piece_counts) {
    for (const auto& name : protos) {
      auto proto = protocols::make_protocol(name);
      // Small file: `pieces` x 64 KiB exchange units for every protocol
      // (the paper's small-file experiment varies the piece count).
      bt::SwarmConfig cfg;
      cfg.leecher_count = population;
      cfg.piece_bytes = 64 * util::kKiB;
      cfg.file_bytes = pieces * cfg.piece_bytes;
      cfg.seed = 5;
      cfg.freerider_fraction = freerider_frac;
      cfg.replace_on_finish = true;
      cfg.max_sim_time = horizon;
      bt::Swarm swarm(cfg, *proto);
      swarm.run();
      const double bps = swarm.metrics().mean_download_throughput(horizon);
      t.add_row({std::to_string(pieces), name,
                 util::format_double(util::bytes_per_sec_to_kbps(bps), 1)});
    }
  }
  bench::print_table(t, flags);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::size_t population =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 1000 : 120));
  const double horizon = flags.get_double("horizon", 1000.0);

  bench::banner("Figure 13 (small files, high churn)",
                "(a) 0% free-riders: baselines collapse below ~5 pieces, "
                "T-Chain best there, RandomBT/FairTorrent best at 5-30 "
                "pieces; (b) 50% free-riders: T-Chain best at every size");

  std::cout << "(a) no free-riders\n";
  sweep(0.0, flags, population, horizon);
  std::cout << "\n(b) 50% free-riders\n";
  sweep(0.5, flags, population, horizon);
  return 0;
}
