// Figure 13: small files under high churn. 1000-leecher flash crowd where
// a finished leecher is immediately replaced by a newcomer; the shared
// file has 1..50 pieces; mean download throughput of compliant leechers
// over the first 1000 s. Paper: (a) without free-riders, BT-family
// throughput collapses below ~5 pieces (T-Chain best there); between 5-30
// pieces RandomBT/FairTorrent beat T-Chain (encryption/key overhead);
// (b) with 50% free-riders T-Chain wins at every size.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::size_t population =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 1000 : 120));
  const double horizon = flags.get_double("horizon", 1000.0);

  bench::banner("Figure 13 (small files, high churn)",
                "(a) 0% free-riders: baselines collapse below ~5 pieces, "
                "T-Chain best there, RandomBT/FairTorrent best at 5-30 "
                "pieces; (b) 50% free-riders: T-Chain best at every size");

  const std::vector<double> piece_counts = {1, 2, 3, 5, 10, 20, 30, 50};
  const std::vector<std::string> protos = {"randombt", "bittorrent",
                                           "propshare", "fairtorrent",
                                           "tchain"};
  const std::vector<double> fracs = {0.0, 0.5};

  // Small file: `pieces` x 64 KiB exchange units for every protocol (the
  // paper's small-file experiment varies the piece count), hence the
  // pinned piece size.
  bt::SwarmConfig base;
  base.leecher_count = population;
  base.piece_bytes = 64 * util::kKiB;
  base.seed = 5;
  base.replace_on_finish = true;
  base.max_sim_time = horizon;

  bench::Sweep sweep(base);
  sweep.protocols(protos)
      .pin_piece_bytes(true)
      .axis("freeriders", fracs,
            [](bench::RunSpec& s, double frac) {
              s.config.freerider_fraction = frac;
            })
      .axis("pieces", piece_counts,
            [](bench::RunSpec& s, double pieces) {
              s.config.file_bytes =
                  static_cast<util::ByteCount>(pieces) * s.config.piece_bytes;
            })
      .for_each([horizon](bench::RunSpec& s) {
        s.inspect = [horizon](bt::Swarm& swarm, bt::Protocol&,
                              bench::RunRecord& rec) {
          rec.add_extra("throughput_bps",
                        swarm.metrics().mean_download_throughput(horizon));
        };
      });
  const auto records = bench::run(sweep, flags);

  std::size_t i = 0;
  for (double frac : fracs) {
    util::AsciiTable t({"pieces", "protocol", "mean throughput (Kbps)"});
    for (double pieces : piece_counts) {
      for (const auto& name : protos) {
        const auto& r = records.at(i++);
        const double bps = r.ok ? r.extra_value("throughput_bps", 0.0) : 0.0;
        t.add_row({exp::format_axis_value(pieces), name,
                   util::format_double(util::bytes_per_sec_to_kbps(bps), 1)});
      }
    }
    std::cout << (frac == 0.0 ? "(a) no free-riders"
                              : "\n(b) 50% free-riders")
              << "\n";
    bench::print_table(t, flags);
  }
  return 0;
}
