// Figure 5: per-piece transfer timelines for the slowest (400 Kbps) and
// fastest (1200 Kbps) leechers under T-Chain — encrypted-piece arrivals vs.
// decryption-key arrivals. Paper: steady upload to the leecher; key delay
// small; for the 400 Kbps leecher the key line's slope is bounded by its
// own (smaller) upload bandwidth.
#include <unordered_map>

#include "bench/common.h"

namespace {

void print_timeline(const tc::analysis::PieceTimeline* tl, const char* label,
                    std::size_t buckets, const tc::util::Flags& flags) {
  using namespace tc;
  if (tl == nullptr || tl->encrypted_received.empty()) {
    std::cout << label << ": no trace captured\n";
    return;
  }
  const double t_end =
      std::max(tl->encrypted_received.back().first,
               tl->completed.empty() ? 0.0 : tl->completed.back().first);
  util::AsciiTable t({"elapsed (s)", "encrypted received", "decrypted (key)"});
  for (std::size_t b = 1; b <= buckets; ++b) {
    const double cutoff = t_end * static_cast<double>(b) / static_cast<double>(buckets);
    std::size_t enc = 0, dec = 0;
    for (const auto& [time, piece] : tl->encrypted_received)
      if (time <= cutoff) ++enc;
    for (const auto& [time, piece] : tl->completed)
      if (time <= cutoff) ++dec;
    t.add_row({util::format_double(cutoff, 1), std::to_string(enc),
               std::to_string(dec)});
  }
  std::cout << label << " (join-relative series of " << tl->completed.size()
            << " pieces)\n";
  bench::print_table(t, flags);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const auto leechers =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 150));

  bench::banner("Figure 5 (piece transfer timelines)",
                "encrypted pieces arrive at a steady rate; decryption keys "
                "trail closely; for the slowest (400 Kbps) leecher the key "
                "series lags more because reciprocation is bounded by its "
                "own upload bandwidth");

  // One run; the setup hook arms the extreme-peer traces and the inspect
  // hook copies the two timelines out of the swarm before it is destroyed.
  analysis::PieceTimeline slow_tl, fast_tl;
  bool have_slow = false, have_fast = false;

  bench::Sweep sweep(bench::base_config(
      leechers, file_mb * util::kMiB,
      static_cast<std::uint64_t>(flags.get_int("seed", 1))));
  sweep.protocol("tchain").for_each([&](bench::RunSpec& s) {
    s.setup = [](bt::Swarm& swarm) { swarm.set_trace_extremes(true); };
    s.inspect = [&](bt::Swarm& swarm, bt::Protocol&, bench::RunRecord&) {
      if (const auto* tl = swarm.metrics().timeline(swarm.traced_slow_peer())) {
        slow_tl = *tl;
        have_slow = true;
      }
      if (const auto* tl = swarm.metrics().timeline(swarm.traced_fast_peer())) {
        fast_tl = *tl;
        have_fast = true;
      }
    };
  });
  bench::run(sweep, flags);

  print_timeline(have_slow ? &slow_tl : nullptr, "(a) 400 Kbps leecher", 12,
                 flags);
  std::cout << "\n";
  print_timeline(have_fast ? &fast_tl : nullptr, "(b) 1200 Kbps leecher", 12,
                 flags);

  // Key-delay summary: time between an encrypted piece and its key.
  for (auto [tl, have, label] :
       {std::tuple{&slow_tl, have_slow, "400Kbps"},
        {&fast_tl, have_fast, "1200Kbps"}}) {
    if (!have) continue;
    std::unordered_map<std::uint32_t, double> enc_at;
    for (const auto& [time, piece] : tl->encrypted_received) enc_at[piece] = time;
    util::RunningStats delay;
    for (const auto& [time, piece] : tl->completed) {
      const auto it = enc_at.find(piece);
      if (it != enc_at.end() && time >= it->second) delay.add(time - it->second);
    }
    std::cout << "\nmean key delay for " << label << " leecher: "
              << util::format_double(delay.mean(), 2) << " s (max "
              << util::format_double(delay.max(), 2) << ")\n";
  }
  return 0;
}
