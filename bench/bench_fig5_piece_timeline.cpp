// Figure 5: per-piece transfer timelines for the slowest (400 Kbps) and
// fastest (1200 Kbps) leechers under T-Chain — encrypted-piece arrivals vs.
// decryption-key arrivals. Paper: steady upload to the leecher; key delay
// small; for the 400 Kbps leecher the key line's slope is bounded by its
// own (smaller) upload bandwidth.
#include "bench/common.h"

namespace {

void print_timeline(const tc::analysis::PieceTimeline* tl, const char* label,
                    std::size_t buckets, const tc::util::Flags& flags) {
  using namespace tc;
  if (tl == nullptr || tl->encrypted_received.empty()) {
    std::cout << label << ": no trace captured\n";
    return;
  }
  const double t_end =
      std::max(tl->encrypted_received.back().first,
               tl->completed.empty() ? 0.0 : tl->completed.back().first);
  util::AsciiTable t({"elapsed (s)", "encrypted received", "decrypted (key)"});
  for (std::size_t b = 1; b <= buckets; ++b) {
    const double cutoff = t_end * static_cast<double>(b) / static_cast<double>(buckets);
    std::size_t enc = 0, dec = 0;
    for (const auto& [time, piece] : tl->encrypted_received)
      if (time <= cutoff) ++enc;
    for (const auto& [time, piece] : tl->completed)
      if (time <= cutoff) ++dec;
    t.add_row({util::format_double(cutoff, 1), std::to_string(enc),
               std::to_string(dec)});
  }
  std::cout << label << " (join-relative series of " << tl->completed.size()
            << " pieces)\n";
  bench::print_table(t, flags);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const auto leechers =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 150));

  bench::banner("Figure 5 (piece transfer timelines)",
                "encrypted pieces arrive at a steady rate; decryption keys "
                "trail closely; for the slowest (400 Kbps) leecher the key "
                "series lags more because reciprocation is bounded by its "
                "own upload bandwidth");

  protocols::TChainProtocol proto;
  auto cfg = bench::base_config(proto, leechers, file_mb * util::kMiB,
                                static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  bt::Swarm swarm(cfg, proto);
  swarm.set_trace_extremes(true);
  swarm.run();

  const auto slow = swarm.traced_slow_peer();
  const auto fast = swarm.traced_fast_peer();
  print_timeline(swarm.metrics().timeline(slow), "(a) 400 Kbps leecher", 12,
                 flags);
  std::cout << "\n";
  print_timeline(swarm.metrics().timeline(fast), "(b) 1200 Kbps leecher", 12,
                 flags);

  // Key-delay summary: time between an encrypted piece and its key.
  for (auto [id, label] : {std::pair{slow, "400Kbps"}, {fast, "1200Kbps"}}) {
    const auto* tl = swarm.metrics().timeline(id);
    if (tl == nullptr) continue;
    std::unordered_map<std::uint32_t, double> enc_at;
    for (const auto& [time, piece] : tl->encrypted_received) enc_at[piece] = time;
    util::RunningStats delay;
    for (const auto& [time, piece] : tl->completed) {
      const auto it = enc_at.find(piece);
      if (it != enc_at.end() && time >= it->second) delay.add(time - it->second);
    }
    std::cout << "\nmean key delay for " << label << " leecher: "
              << util::format_double(delay.mean(), 2) << " s (max "
              << util::format_double(delay.max(), 2) << ")\n";
  }
  return 0;
}
