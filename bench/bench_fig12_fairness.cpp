// Figure 12: fairness CDF — fairness factor = pieces downloaded / pieces
// uploaded per compliant leecher (last 500 finishers, trace arrivals).
// Paper: (a) without free-riders all four methods are fair (CDF
// concentrated at 1.0), T-Chain/FairTorrent tightest; (b) with 25%
// free-riders only T-Chain stays concentrated at 1 — the others diverge.
#include "bench/common.h"

namespace {

void fairness_cdf(double freerider_frac, const tc::util::Flags& flags,
                  bool full, int file_mb, std::size_t population,
                  std::size_t last_n) {
  using namespace tc;
  util::AsciiTable t({"protocol", "p10", "p25", "median", "p75", "p90",
                      "frac in [0.8,1.25]"});
  for (const auto& name : protocols::paper_protocols()) {
    auto proto = protocols::make_protocol(name);
    auto cfg = bench::base_config(*proto, population, file_mb * util::kMiB, 3);
    cfg.freerider_fraction = freerider_frac;
    cfg.wait_for_freeriders = false;
    trace::RedHatTraceArrivals::Params p;
    p.peak_rate = full ? 1.0 : 0.8;
    p.decay_seconds = full ? 36'000 : 4'000;
    util::Rng arr_rng(17);
    auto arrivals = trace::RedHatTraceArrivals(p).generate(population, arr_rng);
    bt::Swarm swarm(cfg, *proto, std::move(arrivals));
    swarm.run();

    auto d = swarm.metrics().fairness_factors(last_n);
    if (d.empty()) {
      t.add_row({name, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    // Clamp infinities (downloaded without uploading) to the chart edge.
    util::Distribution clamped;
    std::size_t in_band = 0;
    for (double x : d.samples()) {
      const double v = std::min(x, 2.5);
      clamped.add(v);
      if (v >= 0.8 && v <= 1.25) ++in_band;
    }
    t.add_row({name, util::format_double(clamped.percentile(0.10), 2),
               util::format_double(clamped.percentile(0.25), 2),
               util::format_double(clamped.median(), 2),
               util::format_double(clamped.percentile(0.75), 2),
               util::format_double(clamped.percentile(0.90), 2),
               util::format_double(
                   static_cast<double>(in_band) /
                       static_cast<double>(clamped.count()),
                   2)});
  }
  bench::print_table(t, flags);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = static_cast<int>(flags.get_int("file-mb", full ? 128 : 8));
  const std::size_t population =
      static_cast<std::size_t>(flags.get_int("peers", full ? 1500 : 250));
  const std::size_t last_n =
      static_cast<std::size_t>(flags.get_int("last", full ? 500 : 120));

  bench::banner("Figure 12 (fairness factor CDF)",
                "(a) all methods fair without free-riders; (b) with 25% "
                "free-riders only T-Chain stays concentrated at factor 1");

  std::cout << "(a) no free-riders\n";
  fairness_cdf(0.0, flags, full, file_mb, population, last_n);
  std::cout << "\n(b) 25% free-riders\n";
  fairness_cdf(0.25, flags, full, file_mb, population, last_n);
  return 0;
}
