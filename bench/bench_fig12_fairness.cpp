// Figure 12: fairness CDF — fairness factor = pieces downloaded / pieces
// uploaded per compliant leecher (last 500 finishers, trace arrivals).
// Paper: (a) without free-riders all four methods are fair (CDF
// concentrated at 1.0), T-Chain/FairTorrent tightest; (b) with 25%
// free-riders only T-Chain stays concentrated at 1 — the others diverge.
#include <algorithm>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const std::size_t population =
      static_cast<std::size_t>(flags.get_int("peers", full ? 1500 : 250));
  const std::size_t last_n =
      static_cast<std::size_t>(flags.get_int("last", full ? 500 : 120));

  bench::banner("Figure 12 (fairness factor CDF)",
                "(a) all methods fair without free-riders; (b) with 25% "
                "free-riders only T-Chain stays concentrated at factor 1");

  const std::vector<double> fracs = {0.0, 0.25};
  const auto protos = protocols::paper_protocols();

  bench::Sweep sweep(bench::base_config(population, file_mb * util::kMiB, 3));
  sweep.protocols(protos)
      .axis("freeriders", fracs,
            [](bench::RunSpec& s, double frac) {
              s.config.freerider_fraction = frac;
              s.config.wait_for_freeriders = false;
            })
      .for_each([&](bench::RunSpec& s) {
        trace::RedHatTraceArrivals::Params p;
        p.peak_rate = full ? 1.0 : 0.8;
        p.decay_seconds = full ? 36'000 : 4'000;
        util::Rng arr_rng(17);
        s.arrivals =
            trace::RedHatTraceArrivals(p).generate(population, arr_rng);
        // Fairness percentiles from the last `last_n` compliant finishers;
        // infinities (downloaded without uploading) clamp to the chart edge.
        s.inspect = [last_n](bt::Swarm& swarm, bt::Protocol&,
                             bench::RunRecord& rec) {
          auto d = swarm.metrics().fairness_factors(last_n);
          if (d.empty()) return;
          util::Distribution clamped;
          std::size_t in_band = 0;
          for (double x : d.samples()) {
            const double v = std::min(x, 2.5);
            clamped.add(v);
            if (v >= 0.8 && v <= 1.25) ++in_band;
          }
          rec.add_extra("fair_p10", clamped.percentile(0.10));
          rec.add_extra("fair_p25", clamped.percentile(0.25));
          rec.add_extra("fair_median", clamped.median());
          rec.add_extra("fair_p75", clamped.percentile(0.75));
          rec.add_extra("fair_p90", clamped.percentile(0.90));
          rec.add_extra("fair_in_band",
                        static_cast<double>(in_band) /
                            static_cast<double>(clamped.count()));
        };
      });
  const auto records = bench::run(sweep, flags);

  std::size_t i = 0;
  for (double frac : fracs) {
    util::AsciiTable t({"protocol", "p10", "p25", "median", "p75", "p90",
                        "frac in [0.8,1.25]"});
    for (const auto& name : protos) {
      const auto& r = records.at(i++);
      if (!r.ok || r.extra_value("fair_median", -1.0) < 0) {
        t.add_row({name, "-", "-", "-", "-", "-", "-"});
        continue;
      }
      t.add_row({name, util::format_double(r.extra_value("fair_p10", 0), 2),
                 util::format_double(r.extra_value("fair_p25", 0), 2),
                 util::format_double(r.extra_value("fair_median", 0), 2),
                 util::format_double(r.extra_value("fair_p75", 0), 2),
                 util::format_double(r.extra_value("fair_p90", 0), 2),
                 util::format_double(r.extra_value("fair_in_band", 0), 2)});
    }
    std::cout << (frac == 0.0 ? "(a) no free-riders"
                              : "\n(b) 25% free-riders")
              << "\n";
    bench::print_table(t, flags);
  }
  return 0;
}
