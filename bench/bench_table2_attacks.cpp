// Table II: incentive schemes vs. attack vectors. Each (protocol, attack)
// cell is scored by a scenario micro-simulation: a flash crowd with 25%
// free-riders configured for that specific attack. Scoring follows the
// paper's legend — Good: free-riders gain (almost) nothing; Medium: they
// succeed but substantially slower than compliant leechers; Bad: they
// free-ride effectively.
//
// --ablate-k additionally sweeps T-Chain's flow-control cap k (DESIGN.md §6).
#include "bench/common.h"

namespace {

using namespace tc;

struct AttackSetup {
  const char* name;
  bool large_view;
  bool whitewash;
  bool collude;
};

constexpr AttackSetup kAttacks[] = {
    {"exploit-altruism", false, false, false},
    {"large-view", true, false, false},
    {"whitewash", false, true, false},
    {"large-view+whitewash", true, true, false},
    {"collusion", true, true, true},
};

const char* verdict(std::size_t fr_done, std::size_t fr_total,
                    double fr_mean, double compliant_mean) {
  if (fr_total == 0) return "n/a";
  const double done_frac =
      static_cast<double>(fr_done) / static_cast<double>(fr_total);
  if (done_frac < 0.05) return "Good";
  if (fr_mean > 3.0 * compliant_mean) return "Medium";
  return "Bad";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 32 : 8);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 400 : 200));

  bench::banner("Table II (incentive schemes vs. attacks)",
                "T-Chain: Good against altruism-exploitation, cheating, "
                "large-view, whitewash/Sybil; collusion only degrades to "
                "Medium (colluders crawl). Baselines: exploitable.");

  const auto protos = protocols::table2_protocols();
  const std::size_t n_attacks = std::size(kAttacks);

  // One sweep point per attack: the axis value indexes kAttacks.
  std::vector<double> attack_idx(n_attacks);
  for (std::size_t i = 0; i < n_attacks; ++i) attack_idx[i] = double(i);

  bench::Sweep sweep(bench::base_config(n, file_mb * util::kMiB, 7));
  sweep.protocols(protos).axis(
      "attack", attack_idx, [](bench::RunSpec& s, double idx) {
        const auto& atk = kAttacks[static_cast<std::size_t>(idx)];
        s.config.freerider_fraction = 0.25;
        s.config.freerider_large_view = atk.large_view;
        s.config.freerider_whitewash = atk.whitewash;
        s.config.freerider_collude = atk.collude;
        s.config.freerider_stall_timeout = 2500.0;
        s.set_tag("attack", atk.name);
      });
  auto specs = sweep.build();

  // --ablate-k: T-Chain's flow-control cap k (paper fixes k=2), appended
  // to the same pool.
  const bool ablate = flags.get_bool("ablate-k");
  const std::vector<int> ks = {1, 2, 4, 8};
  if (ablate) {
    bench::Sweep ab(bench::base_config(n, file_mb * util::kMiB, 7));
    ab.protocol("tchain").axis(
        "k", {1, 2, 4, 8}, [](bench::RunSpec& s, double k) {
          s.config.freerider_fraction = 0.25;
          s.config.pending_cap = static_cast<int>(k);
          s.inspect = [](bt::Swarm& swarm, bt::Protocol&,
                         bench::RunRecord& rec) {
            double fr_bytes = 0;
            std::size_t fr_n = 0;
            for (const auto* r : swarm.metrics().all()) {
              if (!r->seeder && r->freerider) {
                fr_bytes += r->bytes_downloaded;
                ++fr_n;
              }
            }
            rec.add_extra("fr_mib_mean",
                          fr_n ? fr_bytes / static_cast<double>(fr_n) /
                                     static_cast<double>(util::kMiB)
                               : 0.0);
          };
        });
    for (auto& s : ab.build()) specs.push_back(std::move(s));
  }

  const auto records = bench::run(specs, flags);

  util::AsciiTable t({"attack", "protocol", "freeriders done",
                      "fr mean (s)", "compliant mean (s)", "verdict"});
  std::size_t i = 0;
  for (const auto& atk : kAttacks) {
    for (const auto& name : protos) {
      const auto& rec = records.at(i++);
      const auto& r = rec.result;
      const std::size_t fr_total =
          r.freerider_finished + r.freerider_unfinished;
      t.add_row({atk.name, name,
                 std::to_string(r.freerider_finished) + "/" +
                     std::to_string(fr_total),
                 r.freerider_mean >= 0
                     ? util::format_double(r.freerider_mean, 0)
                     : "never",
                 util::format_double(r.compliant_mean, 0),
                 rec.ok ? verdict(r.freerider_finished, fr_total,
                                  r.freerider_mean, r.compliant_mean)
                        : "FAILED"});
    }
  }
  bench::print_table(t, flags);

  if (ablate) {
    std::cout << "\nAblation: T-Chain flow-control cap k (paper fixes k=2)\n";
    util::AsciiTable ak({"k", "compliant mean (s)", "uplink util (%)",
                         "freerider bytes (MiB, mean)"});
    for (int k : ks) {
      const auto& rec = records.at(i++);
      ak.add_row({std::to_string(k),
                  util::format_double(rec.result.compliant_mean, 1),
                  util::format_double(100 * rec.result.uplink_utilization, 1),
                  util::format_double(rec.extra_value("fr_mib_mean", 0.0), 2)});
    }
    bench::print_table(ak, flags);
  }
  return 0;
}
