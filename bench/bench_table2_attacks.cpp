// Table II: incentive schemes vs. attack vectors. Each (protocol, attack)
// cell is scored by a scenario micro-simulation: a flash crowd with 25%
// free-riders configured for that specific attack. Scoring follows the
// paper's legend — Good: free-riders gain (almost) nothing; Medium: they
// succeed but substantially slower than compliant leechers; Bad: they
// free-ride effectively.
//
// --ablate-k additionally sweeps T-Chain's flow-control cap k (DESIGN.md §6).
#include "bench/common.h"

namespace {

using namespace tc;

struct AttackSetup {
  const char* name;
  bool large_view;
  bool whitewash;
  bool collude;
};

constexpr AttackSetup kAttacks[] = {
    {"exploit-altruism", false, false, false},
    {"large-view", true, false, false},
    {"whitewash", false, true, false},
    {"large-view+whitewash", true, true, false},
    {"collusion", true, true, true},
};

const char* verdict(std::size_t fr_done, std::size_t fr_total,
                    double fr_mean, double compliant_mean) {
  if (fr_total == 0) return "n/a";
  const double done_frac =
      static_cast<double>(fr_done) / static_cast<double>(fr_total);
  if (done_frac < 0.05) return "Good";
  if (fr_mean > 3.0 * compliant_mean) return "Medium";
  return "Bad";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 32 : 8);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("leechers", full ? 400 : 200));

  bench::banner("Table II (incentive schemes vs. attacks)",
                "T-Chain: Good against altruism-exploitation, cheating, "
                "large-view, whitewash/Sybil; collusion only degrades to "
                "Medium (colluders crawl). Baselines: exploitable.");

  util::AsciiTable t({"attack", "protocol", "freeriders done",
                      "fr mean (s)", "compliant mean (s)", "verdict"});

  for (const auto& atk : kAttacks) {
    for (const auto& name : protocols::table2_protocols()) {
      auto proto = protocols::make_protocol(name);
      auto cfg = bench::base_config(*proto, n, file_mb * util::kMiB, 7);
      cfg.freerider_fraction = 0.25;
      cfg.freerider_large_view = atk.large_view;
      cfg.freerider_whitewash = atk.whitewash;
      cfg.freerider_collude = atk.collude;
      cfg.freerider_stall_timeout = 2500.0;
      const auto r = bench::run_swarm(cfg, *proto);
      const std::size_t fr_total = r.freerider_finished + r.freerider_unfinished;
      t.add_row({atk.name, name,
                 std::to_string(r.freerider_finished) + "/" +
                     std::to_string(fr_total),
                 r.freerider_mean >= 0 ? util::format_double(r.freerider_mean, 0)
                                       : "never",
                 util::format_double(r.compliant_mean, 0),
                 verdict(r.freerider_finished, fr_total, r.freerider_mean,
                         r.compliant_mean)});
    }
  }
  bench::print_table(t, flags);

  if (flags.get_bool("ablate-k")) {
    std::cout << "\nAblation: T-Chain flow-control cap k (paper fixes k=2)\n";
    util::AsciiTable ak({"k", "compliant mean (s)", "uplink util (%)",
                         "freerider bytes (MiB, mean)"});
    for (int k : {1, 2, 4, 8}) {
      protocols::TChainProtocol proto;
      auto cfg = bench::base_config(proto, n, file_mb * util::kMiB, 7);
      cfg.freerider_fraction = 0.25;
      cfg.pending_cap = k;
      bt::Swarm swarm(cfg, proto);
      swarm.run();
      double fr_bytes = 0;
      std::size_t fr_n = 0;
      for (const auto* rec : swarm.metrics().all()) {
        if (!rec->seeder && rec->freerider) {
          fr_bytes += rec->bytes_downloaded;
          ++fr_n;
        }
      }
      ak.add_row(
          {std::to_string(k),
           util::format_double(
               swarm.metrics().completion_times(bench::F::kCompliant).mean(), 1),
           util::format_double(
               100 * swarm.metrics().mean_uplink_utilization(
                         bench::F::kCompliant, swarm.end_time()),
               1),
           util::format_double(fr_n ? fr_bytes / static_cast<double>(fr_n) /
                                          static_cast<double>(util::kMiB)
                                    : 0.0,
                               2)});
    }
    bench::print_table(ak, flags);
  }
  return 0;
}
