// Figure 6: piece diversity.
// (a) The paper crawls a real BitTorrent swarm for 7 days and reports the
//     mean number of pieces differing between neighbor pairs (612 of 2808,
//     ~22%). We substitute a trace-driven simulated swarm with a crawler
//     that samples pairwise piece-set differences among the neighbors of a
//     randomly chosen peer over time (DESIGN.md §5.2).
// (b) 600 compliant leechers join holding 0..100% random initial pieces;
//     paper: completion time decreases linearly with the pre-owned
//     fraction.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 8);
  const auto seeds =
      static_cast<std::size_t>(flags.get_int("seeds", full ? 30 : 2));
  const auto opts = exp::runner_options_from_flags(flags);

  bench::banner("Figure 6 (piece diversity)",
                "(a) neighbors differ in a substantial fraction of pieces "
                "(~22% in the crawled swarm), so chains can grow; (b) "
                "completion time decreases linearly as leechers pre-own a "
                "larger fraction of pieces");

  // ---- (a) pairwise piece differences over time ---------------------------------
  {
    trace::RedHatTraceArrivals::Params p;
    p.peak_rate = full ? 0.5 : 0.3;
    p.decay_seconds = full ? 36'000 : 2'000;
    util::Rng arr_rng(7);
    auto cfg = bench::base_config(full ? 400 : 120, file_mb * util::kMiB, 1);
    auto arrivals =
        trace::RedHatTraceArrivals(p).generate(cfg.leecher_count, arr_rng);
    const double horizon = arrivals.back() * 1.2;

    util::AsciiTable t({"time (s)", "active leechers", "mean piece diff",
                        "piece diff (%)"});
    bench::Sweep sweep(cfg);
    sweep.protocol("tchain").for_each([&](bench::RunSpec& s) {
      s.arrivals = arrivals;
      // Crawler: every horizon/10, sample pairwise piece differences among
      // the neighbors of a random active leecher.
      s.setup = [&t, horizon](bt::Swarm& swarm) {
        for (int k = 1; k <= 10; ++k) {
          const double when = horizon * k / 10.0;
          swarm.simulator().schedule_at(when, [&swarm, &t, when] {
            const auto ids = swarm.active_peers();
            std::vector<bt::PeerId> leechers;
            for (auto id : ids) {
              const bt::Peer* p2 = swarm.peer(id);
              if (p2 != nullptr && !p2->seeder) leechers.push_back(id);
            }
            if (leechers.size() < 2) return;
            const bt::Peer* vantage =
                swarm.peer(leechers[swarm.rng().index(leechers.size())]);
            util::RunningStats diff;
            const auto& nbrs = vantage->neighbors;
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
              for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
                const bt::Peer* a = swarm.peer(nbrs[i]);
                const bt::Peer* b = swarm.peer(nbrs[j]);
                if (a == nullptr || b == nullptr || a->seeder || b->seeder)
                  continue;
                const auto ab = a->have.missing_from(b->have).size();
                const auto ba = b->have.missing_from(a->have).size();
                diff.add(static_cast<double>(ab + ba));
              }
            }
            if (diff.count() == 0) return;
            t.add_row(
                {util::format_double(when, 0), std::to_string(leechers.size()),
                 util::format_double(diff.mean(), 1),
                 util::format_double(
                     100.0 * diff.mean() /
                         static_cast<double>(swarm.piece_count()),
                     1)});
          });
        }
      };
    });
    exp::run_all(sweep.build(), opts);
    std::cout << "(a) crawler-style piece differences (trace-driven swarm)\n";
    bench::print_table(t, flags);
  }

  // ---- (b) initial piece fraction sweep -------------------------------------
  {
    const std::size_t leechers =
        static_cast<std::size_t>(flags.get_int("leechers", full ? 600 : 100));
    const std::vector<double> fracs = {0.0, 0.2, 0.4, 0.6, 0.8, 0.95};
    bench::Sweep sweep(bench::base_config(leechers, file_mb * util::kMiB));
    sweep.protocol("tchain")
        .seeds(seeds)
        .axis("initial", fracs, [](bench::RunSpec& s, double frac) {
          s.config.initial_piece_fraction = frac;
        });
    const auto records = exp::run_all(sweep.build(), opts);

    util::AsciiTable t({"initial pieces (%)", "mean completion (s)", "ci95"});
    std::size_t i = 0;
    for (double frac : fracs) {
      const auto p = bench::accumulate(records, i, seeds);
      t.add_row({util::format_double(100 * frac, 0),
                 util::format_double(p.compliant.mean(), 1),
                 "+-" + util::format_double(p.compliant.ci95_half_width(), 1)});
    }
    std::cout << "\n(b) effect of initial piece possession\n";
    bench::print_table(t, flags);
  }
  return 0;
}
