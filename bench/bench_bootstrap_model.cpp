// §III-B / Figure 2: analytic bootstrapping dynamics. Iterates the paper's
// difference equations for the BitTorrent-like model (eq. 1) and the
// T-Chain model (eqs. 2-6), prints the un-bootstrapped population over
// time for a flash crowd, and numerically checks Propositions III.1 and
// III.2 on the paper's own example numbers (delta=0.2, omega'~0.495,
// mu=0.5, K=2).
#include <cmath>
#include <iostream>

#include "src/model/bootstrap_model.h"
#include "src/util/flags.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);

  model::ModelParams p;
  p.n = flags.get_double("n", 600);
  p.K = flags.get_double("K", 2);
  p.delta = flags.get_double("delta", 0.2);
  p.M = static_cast<std::size_t>(flags.get_int("M", 100));

  std::cout << "=== Bootstrapping model (paper Sec. III-B) ===\n"
            << "Paper: in a flash crowd T-Chain bootstraps newcomers faster "
               "than BitTorrent's optimistic unchoking whenever K*omega "
               "exceeds delta's effective share (Props. III.1/III.2)\n\n";

  const double w1 = model::omega_prime_uniform(p.M);
  const double w2 = model::omega_double_prime_uniform(p.M);
  std::cout << "omega'  = " << util::format_double(w1, 4)
            << "  (paper approximates 0.495 for M=100)\n"
            << "omega'' = " << util::format_double(w2, 4)
            << "  (log(M)/M = " << util::format_double(std::log(static_cast<double>(p.M)) / static_cast<double>(p.M), 4)
            << ")\n\n";

  // Flash crowd: everyone un-bootstrapped at t=0.
  const double x0 = p.n - 1;
  const auto bt = model::bittorrent_trajectory(p, x0, 60);
  const auto tchain = model::tchain_trajectory(p, x0, 0.0, 60);

  util::AsciiTable t({"slot", "BT un-bootstrapped", "T-Chain x",
                      "T-Chain y", "T-Chain un-bootstrapped"});
  for (std::size_t i = 0; i < bt.size(); i += 5) {
    t.add_row({std::to_string(i), util::format_double(bt[i].x, 1),
               util::format_double(tchain[i].x, 1),
               util::format_double(tchain[i].y, 1),
               util::format_double(tchain[i].x + tchain[i].y, 1)});
  }
  if (flags.get_bool("csv")) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  // Find the slot where each model has bootstrapped 90% of peers.
  auto slots_to_90 = [&](auto& traj) -> int {
    for (std::size_t i = 0; i < traj.size(); ++i) {
      const double un = traj[i].x + traj[i].y;
      if (un <= 0.1 * p.n) return static_cast<int>(i);
    }
    return -1;
  };
  std::cout << "\nslots to bootstrap 90%: BitTorrent-like = "
            << slots_to_90(bt) << ", T-Chain = " << slots_to_90(tchain)
            << "\n\n";

  // Propositions on the paper's example.
  const double mu = 0.5, nu = 0.5;
  std::cout << "Proposition III.1 (short-term, mu=" << mu
            << "): " << (model::prop31_condition(p, mu * p.n / 2, mu * p.n / 2,
                                                 mu * p.n)
                             ? "holds"
                             : "fails")
            << "  [K*omega'*mu = "
            << util::format_double(p.K * w1 * mu, 3)
            << " >= delta = " << p.delta << "]\n";
  std::cout << "Proposition III.2 (long-term, mu=0.1, nu=" << nu << ", K=10): "
            << [&] {
                 auto q = p;
                 q.K = 10;
                 return model::prop32_condition(q, 0.1, nu) ? "holds" : "fails";
               }()
            << "\n";
  return 0;
}
