// Figure 3: average download completion time (a) and average uplink
// utilization (b) vs. swarm size, no free-riders, flash crowd.
// Paper setup: 128 MiB file, swarms 200..1000, BitTorrent / PropShare /
// FairTorrent / T-Chain / Optimal.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 16);
  const auto seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", full ? 30 : 2));

  std::vector<std::size_t> swarms;
  if (full) {
    swarms = {200, 400, 600, 800, 1000};
  } else {
    swarms = {50, 100, 150, 200};
  }
  if (flags.has("swarm")) {
    swarms = {static_cast<std::size_t>(flags.get_int("swarm", 100))};
  }

  bench::banner("Figure 3 (no free-riders)",
                "all methods near-optimal and scalable; T-Chain and "
                "FairTorrent slightly faster / higher uplink utilization "
                "than BitTorrent and PropShare");

  util::AsciiTable t({"swarm", "protocol", "mean completion (s)", "ci95",
                      "uplink util (%)", "optimal (s)"});

  for (std::size_t n : swarms) {
    double opt = 0.0;
    for (const auto& name : protocols::paper_protocols()) {
      util::RunningStats mean_s, util_s;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        auto proto = protocols::make_protocol(name);
        auto cfg = bench::base_config(*proto, n, file_mb * util::kMiB, s);
        opt = bench::optimal_time(cfg);
        const auto r = bench::run_swarm(cfg, *proto);
        mean_s.add(r.compliant_mean);
        util_s.add(r.uplink_utilization);
      }
      t.add_row({std::to_string(n), name,
                 util::format_double(mean_s.mean(), 1),
                 "+-" + util::format_double(mean_s.ci95_half_width(), 1),
                 util::format_double(100 * util_s.mean(), 1),
                 util::format_double(opt, 1)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
