// Figure 3: average download completion time (a) and average uplink
// utilization (b) vs. swarm size, no free-riders, flash crowd.
// Paper setup: 128 MiB file, swarms 200..1000, BitTorrent / PropShare /
// FairTorrent / T-Chain / Optimal.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace tc;
  util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const auto file_mb = flags.get_int("file-mb", full ? 128 : 16);
  const auto seeds =
      static_cast<std::size_t>(flags.get_int("seeds", full ? 30 : 2));

  std::vector<double> swarms;
  if (full) {
    swarms = {200, 400, 600, 800, 1000};
  } else {
    swarms = {50, 100, 150, 200};
  }
  if (flags.has("swarm")) {
    swarms = {static_cast<double>(flags.get_int("swarm", 100))};
  }

  bench::banner("Figure 3 (no free-riders)",
                "all methods near-optimal and scalable; T-Chain and "
                "FairTorrent slightly faster / higher uplink utilization "
                "than BitTorrent and PropShare");

  const auto protos = protocols::paper_protocols();
  bench::Sweep sweep(bench::base_config(0, file_mb * util::kMiB));
  sweep.protocols(protos)
      .seeds(seeds)
      .axis("swarm", swarms, [](bench::RunSpec& s, double n) {
        s.config.leecher_count = static_cast<std::size_t>(n);
      });
  const auto records = bench::run(sweep, flags);

  util::AsciiTable t({"swarm", "protocol", "mean completion (s)", "ci95",
                      "uplink util (%)", "optimal (s)"});
  std::size_t i = 0;
  for (double n : swarms) {
    const auto cfg = bench::base_config(static_cast<std::size_t>(n),
                                        file_mb * util::kMiB);
    const double opt = bench::optimal_time(cfg);
    for (const auto& name : protos) {
      const auto p = bench::accumulate(records, i, seeds);
      t.add_row({exp::format_axis_value(n), name,
                 util::format_double(p.compliant.mean(), 1),
                 "+-" + util::format_double(p.compliant.ci95_half_width(), 1),
                 util::format_double(100 * p.uplink.mean(), 1),
                 util::format_double(opt, 1)});
    }
  }
  bench::print_table(t, flags);
  return 0;
}
