#!/usr/bin/env python3
"""Determinism lint for the simulation tree.

The whole experiment pipeline promises bit-identical output for identical
specs (seeded RNG, spec-order results, no wall-clock in data paths). This
lint bans the constructs that silently break that promise:

  * rand() / srand()            — unseeded global RNG
  * time(...) / clock()         — wall clock in simulation code
  * std::random_device          — nondeterministic seed source
  * std::chrono::system_clock   — wall clock (steady_clock is allowed only
                                  in whitelisted timing/progress code)
  * unseeded std::mt19937       — default-constructed engines draw from an
                                  implementation seed
  * range-for over unordered_{map,set} — iteration order is unspecified;
    feeding it into output, aggregation, or event scheduling makes runs
    diverge across standard libraries. Iterate a sorted copy or an ordered
    container instead.

Escapes:
  * a `// det-ok` comment on the offending line suppresses it (use for
    provably order-insensitive folds, e.g. counting matches);
  * WHITELIST entries suppress a rule for a whole file (timing code that
    is documented as nondeterministic, the RNG implementation itself).

Exit status: 0 clean, 1 findings. Run from the repo root (CI does).
"""

import re
import sys
from pathlib import Path

SCAN_DIRS = ["src", "bench", "tools", "examples"]
EXTENSIONS = {".cpp", ".h"}

# (path-suffix, rule-name) pairs exempted with a reason.
WHITELIST = {
    # The runner's wall-clock throughput summary is stderr-only and
    # documented as nondeterministic (RunRecord::wall_seconds).
    ("src/exp/runner.cpp", "steady_clock"),
    # The seeded RNG implementation wraps the engine type itself.
    ("src/util/rng.h", "mt19937"),
    ("src/util/rng.cpp", "mt19937"),
    # Wall-clock throughput measurement is this microbench's entire job;
    # its output is labelled as machine-dependent.
    ("bench/bench_overhead_crypto.cpp", "steady_clock"),
}

# (dir-prefix, rule-name) pairs exempted for a whole subtree.
WHITELIST_DIRS = {
    # The live deployment runtime serves real sockets; its Reactor is the
    # documented sole wall-clock surface of src/rt (reactor.h), and every
    # trace timestamp flows through Reactor::now().
    ("src/rt/", "steady_clock"),
}

RULES = [
    ("rand", re.compile(r"(?<![\w])s?rand\s*\("), "rand()/srand() is unseeded global state"),
    ("time", re.compile(r"(?<![\w.>])time\s*\(\s*(NULL|nullptr|0|&)"), "time() reads the wall clock"),
    ("clock", re.compile(r"(?<![\w.>:])clock\s*\(\s*\)"), "clock() reads the wall clock"),
    ("random_device", re.compile(r"std::random_device"), "std::random_device is nondeterministic"),
    ("system_clock", re.compile(r"std::chrono::system_clock"), "system_clock reads the wall clock"),
    ("steady_clock", re.compile(r"std::chrono::steady_clock|chrono::steady_clock"), "steady_clock timing belongs in whitelisted progress code only"),
    ("mt19937", re.compile(r"\bstd::mt19937(_64)?\b"), "raw std::mt19937 outside util::Rng risks an unseeded engine"),
]

# Range-for directly over an unordered container member/variable. Two
# patterns: `for (... : name)` where `name` was declared unordered in the
# same file, and the inline `for (... : fn())` case is left to review.
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR = re.compile(r"for\s*\(.*?:\s*(?:this->)?(\w+)\s*\)")

DET_OK = "det-ok"


def strip_comments_keep_lines(text: str) -> list[str]:
    """Remove /* */ and // comment bodies but keep line structure, so the
    scanners don't fire on prose. `det-ok` markers are honoured before
    stripping (the caller checks the raw line)."""
    out = []
    in_block = False
    for raw in text.splitlines():
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # strip // first so "/*" inside a line comment doesn't open a block
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end - start + 2) + line[end + 2:]
        out.append(line)
    return out


def scan_file(path: Path) -> list[str]:
    rel = path.as_posix()
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    code_lines = strip_comments_keep_lines("\n".join(raw_lines))

    findings = []

    def exempt(rule: str, lineno: int) -> bool:
        if DET_OK in raw_lines[lineno - 1]:
            return True
        if any(rel.endswith(suffix) and rule == r for suffix, r in WHITELIST):
            return True
        return any(
            f"/{prefix}" in f"/{rel}" and rule == r
            for prefix, r in WHITELIST_DIRS
        )

    for lineno, line in enumerate(code_lines, start=1):
        for rule, pattern, why in RULES:
            if pattern.search(line) and not exempt(rule, lineno):
                findings.append(f"{rel}:{lineno}: [{rule}] {why}")

    # Pass 2: names declared as unordered containers in this file, then
    # range-for'd. Order-insensitive loops get a `// det-ok`.
    unordered_names = set()
    for line in code_lines:
        for m in UNORDERED_DECL.finditer(line):
            unordered_names.add(m.group(1))
    for lineno, line in enumerate(code_lines, start=1):
        m = RANGE_FOR.search(line)
        if m and m.group(1) in unordered_names and not exempt("unordered-iter", lineno):
            findings.append(
                f"{rel}:{lineno}: [unordered-iter] range-for over unordered "
                f"container '{m.group(1)}' has unspecified order; sort first "
                f"or mark order-insensitive folds with // det-ok"
            )
    return findings


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    findings = []
    for d in SCAN_DIRS:
        for path in sorted((root / d).rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                findings.extend(scan_file(path))
    if findings:
        print(f"determinism lint: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
