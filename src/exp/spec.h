// Declarative experiment specification.
//
// A RunSpec fully describes one swarm run — protocol name, SwarmConfig
// (seed and FaultPlan included), arrival trace — so that executing it is a
// pure function spec -> RunRecord: the runner (src/exp/runner.h) constructs
// a fresh Protocol and Swarm per spec, and no state is shared between runs.
//
// A Sweep expands parameter axes x protocols x seeds into the flat RunSpec
// list the paper's evaluation walks (five protocols, several axes, 30 seeds
// per data point), in a deterministic order: axes in declaration order
// (outermost first), then protocols, then seeds innermost — so consecutive
// records are the seed-repetitions of one data point.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/bt/config.h"
#include "src/exp/results.h"
#include "src/obs/trace.h"
#include "src/util/units.h"

namespace tc::bt {
class Swarm;
class Protocol;
}  // namespace tc::bt

namespace tc::exp {

struct RunSpec {
  std::string protocol = "tchain";   // protocols::make_protocol name
  bt::SwarmConfig config;            // includes seed and FaultPlan
  // Leecher join times; empty => the swarm's 10 s flash crowd default.
  std::vector<util::SimTime> arrivals;
  // Human-readable data-point annotation, e.g. "swarm=200 fr=0.25".
  std::string label;
  // Machine-readable axis coordinates, serialized as CSV columns.
  std::vector<std::pair<std::string, std::string>> tags;

  // Observability (src/obs): when trace.enabled the runner calls
  // Swarm::enable_obs before setup, snapshots the trace registry and event
  // counts into RunRecord::extra ("obs.*" keys) after inspect, and writes
  // the configured exports. Disabled (the default) leaves the run — and
  // its serialized record — byte-identical to a spec without this field.
  obs::TraceConfig trace;

  // Invariant checking (src/check): when true the runner attaches a
  // check::Checker as the trace's EventSink for the run (force-enabling a
  // minimal trace if this spec has none — the sink sees every event before
  // the ring, so the ring can stay tiny) and snapshots the verdict into
  // RunRecord::extra as "check.*" keys ("check.sound", "check.events",
  // "check.violations", "check.warnings", and per-class
  // "check.v.<invariant>"). Off (the default) leaves the run and its record
  // byte-identical to a spec without this field.
  bool check = false;

  // Optional hooks, both run on the worker thread that owns this run and
  // must capture only per-spec state (the determinism and thread-safety
  // contract: disjoint specs touch disjoint data).
  //   setup: after construction, before Swarm::run() — e.g. schedule
  //          samplers on the simulator, enable piece traces.
  //   inspect: after the run, before the record is returned — read
  //            protocol/metrics internals into RunRecord::extra.
  std::function<void(bt::Swarm&)> setup;
  std::function<void(bt::Swarm&, bt::Protocol&, RunRecord&)> inspect;

  void set_tag(const std::string& key, const std::string& value);
  const std::string* tag(const std::string& key) const;
};

// Formats an axis value for tags/labels: integers without decimals,
// fractions with just enough digits ("200", "0.25").
std::string format_axis_value(double v);

class Sweep {
 public:
  // `base` seeds every spec's SwarmConfig (file size, attack knobs, ...).
  explicit Sweep(bt::SwarmConfig base = {});

  Sweep& protocols(std::vector<std::string> names);
  Sweep& protocol(std::string name) { return protocols({std::move(name)}); }

  // Seed repetitions per data point: seeds `first .. first+count-1`.
  Sweep& seeds(std::uint64_t count, std::uint64_t first = 1);

  // Adds a parameter axis. For each value, `apply(spec, value)` patches the
  // spec; the value is also tagged as `name=format_axis_value(value)`.
  // Multiple axes expand as a cartesian product in declaration order.
  Sweep& axis(std::string name, std::vector<double> values,
              std::function<void(RunSpec&, double)> apply);

  // Per-spec finalizer, applied after protocol/seed/axes are set — the
  // place to generate per-seed arrival traces or attach hooks.
  Sweep& for_each(std::function<void(RunSpec&)> fn);

  // Keep base.piece_bytes instead of each protocol's default_piece_bytes()
  // (Figure 13 pins 64 KiB for every protocol).
  Sweep& pin_piece_bytes(bool pin = true);

  // Expands to the flat spec list. Unless pinned, each spec's piece size is
  // the protocol's default (paper §IV-A: 256 KiB BT/PropShare, 64 KiB
  // T-Chain/FairTorrent).
  std::vector<RunSpec> build() const;

  std::size_t run_count() const;

 private:
  struct Axis {
    std::string name;
    std::vector<double> values;
    std::function<void(RunSpec&, double)> apply;
  };

  bt::SwarmConfig base_;
  std::vector<std::string> protocols_ = {"tchain"};
  std::uint64_t seed_count_ = 1;
  std::uint64_t first_seed_ = 1;
  std::vector<Axis> axes_;
  std::vector<std::function<void(RunSpec&)>> finalizers_;
  bool pin_piece_bytes_ = false;
};

}  // namespace tc::exp
