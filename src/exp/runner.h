// Parallel experiment runner.
//
// Executes a list of RunSpecs on a pool of worker threads. The contract:
//
//  * Isolation — every run constructs its own Protocol (via
//    protocols::make_protocol) and its own Swarm; nothing is shared between
//    runs, so scheme state can never leak across seeds (the bug the old
//    bench/common.h run_swarm(cfg, proto&) harness invited).
//  * Determinism — results come back indexed by spec order regardless of
//    thread interleaving, and each run is a pure function of its spec, so
//    --jobs 8 output is byte-identical to --jobs 1.
//  * Fault containment — an exception inside one run produces a failed
//    RunRecord (ok=false, error=what()) and never kills the sweep.
#pragma once

#include <cstddef>
#include <vector>

#include "src/exp/results.h"
#include "src/exp/spec.h"
#include "src/util/flags.h"

namespace tc::exp {

struct RunnerOptions {
  // Worker threads; 0 = std::thread::hardware_concurrency(). 1 runs inline
  // on the calling thread (no pool).
  std::size_t jobs = 0;
  // Suppress the stderr progress/throughput summary. stdout is never
  // written by the runner, so reports stay byte-clean either way.
  bool quiet = false;
};

// Reads the shared runner flags: --jobs N (default 0 = all cores),
// --quiet.
RunnerOptions runner_options_from_flags(const util::Flags& flags);

// Plumbs the shared tracing flags into `specs`:
//   --trace[=PREFIX]      enable obs tracing on every spec and write a
//                         Chrome trace-event JSON (Perfetto-loadable) per
//                         run to PREFIX.run<i>.json (default prefix
//                         "trace"). Specs that already enabled tracing
//                         keep their kind mask; others get kAllKinds.
//   --trace-csv[=PREFIX]  also write the raw event stream per run to
//                         PREFIX.run<i>.csv.
//   --trace-limit N       ring capacity in events (default 1<<20).
// Without any of these flags the specs are left untouched.
void apply_trace_flags(std::vector<RunSpec>& specs, const util::Flags& flags);

// Plumbs the shared --check flag into `specs`: sets RunSpec::check on every
// spec so each run is verified online against the protocol invariant
// catalogue (src/check/invariants.h). Without the flag the specs are left
// untouched.
void apply_check_flag(std::vector<RunSpec>& specs, const util::Flags& flags);

// Sums "check.violations" (and, for unsound runs, "check.possible") across
// records; `unsound` (optional) receives the number of runs whose
// verification window lost events. Records without check extras count 0.
std::uint64_t total_check_violations(const std::vector<RunRecord>& records,
                                     std::size_t* unsound = nullptr);

// The number of threads `opts` resolves to for `spec_count` runs.
std::size_t effective_jobs(const RunnerOptions& opts, std::size_t spec_count);

// Executes one spec synchronously: fresh protocol + swarm, setup hook,
// run, summarize, inspect hook. Exceptions become a failed record.
RunRecord run_one(const RunSpec& spec, std::size_t index = 0);

// Executes every spec and returns records in spec order.
std::vector<RunRecord> run_all(const std::vector<RunSpec>& specs,
                               const RunnerOptions& opts = {});

// Convenience: build + run.
std::vector<RunRecord> run_sweep(const Sweep& sweep,
                                 const RunnerOptions& opts = {});

}  // namespace tc::exp
