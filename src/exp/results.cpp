#include "src/exp/results.h"

#include <cinttypes>
#include <cstdio>

namespace tc::exp {

namespace {

// %.10g keeps full useful precision while staying stable for the
// byte-identity contract (same value -> same text, locale-independent).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

// Union of tag (or extra) keys across the sweep, first-appearance order,
// so the column set is a function of the spec list alone.
template <typename Pairs>
std::vector<std::string> key_union(const std::vector<RunRecord>& records,
                                   Pairs RunRecord::* member) {
  std::vector<std::string> keys;
  for (const auto& r : records) {
    for (const auto& [k, v] : r.*member) {
      bool seen = false;
      for (const auto& existing : keys) {
        if (existing == k) {
          seen = true;
          break;
        }
      }
      if (!seen) keys.push_back(k);
    }
  }
  return keys;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// The scalar result columns shared by both writers: name + getter.
struct ResultColumn {
  const char* name;
  std::string (*get)(const RunRecord&);
};

const ResultColumn kResultColumns[] = {
    {"compliant_mean", [](const RunRecord& r) { return num(r.result.compliant_mean); }},
    {"compliant_finished", [](const RunRecord& r) { return num(r.result.compliant_finished); }},
    {"compliant_unfinished", [](const RunRecord& r) { return num(r.result.compliant_unfinished); }},
    {"freerider_mean", [](const RunRecord& r) { return num(r.result.freerider_mean); }},
    {"freerider_finished", [](const RunRecord& r) { return num(r.result.freerider_finished); }},
    {"freerider_unfinished", [](const RunRecord& r) { return num(r.result.freerider_unfinished); }},
    {"uplink_utilization", [](const RunRecord& r) { return num(r.result.uplink_utilization); }},
    {"end_time", [](const RunRecord& r) { return num(r.result.end_time); }},
    {"sim_events", [](const RunRecord& r) { return num(r.sim_events); }},
    {"crashes", [](const RunRecord& r) { return num(r.result.resilience.crashes); }},
    {"churn_departures", [](const RunRecord& r) { return num(r.result.resilience.churn_departures); }},
    {"control_dropped", [](const RunRecord& r) { return num(r.result.resilience.control_dropped); }},
    {"tx_timeouts", [](const RunRecord& r) { return num(r.result.resilience.transactions_timed_out); }},
    {"keys_lost", [](const RunRecord& r) { return num(r.result.resilience.keys_lost); }},
    {"keys_escrow_recovered", [](const RunRecord& r) { return num(r.result.resilience.keys_escrow_recovered); }},
    {"piece_refetches", [](const RunRecord& r) { return num(r.result.resilience.piece_refetches); }},
};

}  // namespace

const std::string* RunRecord::tag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

double RunRecord::extra_value(const std::string& key, double def) const {
  for (const auto& [k, v] : extra) {
    if (k == key) return v;
  }
  return def;
}

void write_csv(std::ostream& os, const std::vector<RunRecord>& records,
               bool include_timing) {
  const auto tag_keys = key_union(records, &RunRecord::tags);
  const auto extra_keys = key_union(records, &RunRecord::extra);

  os << "index,protocol,seed,label";
  for (const auto& k : tag_keys) os << ',' << csv_escape(k);
  os << ",ok,error";
  for (const auto& col : kResultColumns) os << ',' << col.name;
  for (const auto& k : extra_keys) os << ',' << csv_escape(k);
  if (include_timing) os << ",wall_seconds,events_per_sec";
  os << '\n';

  for (const auto& r : records) {
    os << num(r.index) << ',' << csv_escape(r.protocol) << ',' << num(r.seed)
       << ',' << csv_escape(r.label);
    for (const auto& k : tag_keys) {
      const std::string* v = r.tag(k);
      os << ',' << (v ? csv_escape(*v) : "");
    }
    os << ',' << (r.ok ? "1" : "0") << ',' << csv_escape(r.error);
    for (const auto& col : kResultColumns) os << ',' << col.get(r);
    for (const auto& k : extra_keys) {
      bool found = false;
      for (const auto& [ek, ev] : r.extra) {
        if (ek == k) {
          os << ',' << num(ev);
          found = true;
          break;
        }
      }
      if (!found) os << ',';
    }
    if (include_timing)
      os << ',' << num(r.wall_seconds) << ',' << num(r.events_per_sec());
    os << '\n';
  }
}

void write_json(std::ostream& os, const std::vector<RunRecord>& records,
                bool include_timing) {
  os << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    os << "  {\"index\":" << num(r.index)
       << ",\"protocol\":\"" << json_escape(r.protocol) << "\""
       << ",\"seed\":" << num(r.seed)
       << ",\"label\":\"" << json_escape(r.label) << "\"";
    if (!r.tags.empty()) {
      os << ",\"tags\":{";
      for (std::size_t t = 0; t < r.tags.size(); ++t) {
        if (t) os << ',';
        os << '"' << json_escape(r.tags[t].first) << "\":\""
           << json_escape(r.tags[t].second) << '"';
      }
      os << '}';
    }
    os << ",\"ok\":" << (r.ok ? "true" : "false");
    if (!r.error.empty()) os << ",\"error\":\"" << json_escape(r.error) << "\"";
    for (const auto& col : kResultColumns)
      os << ",\"" << col.name << "\":" << col.get(r);
    for (const auto& [k, v] : r.extra)
      os << ",\"" << json_escape(k) << "\":" << num(v);
    if (include_timing)
      os << ",\"wall_seconds\":" << num(r.wall_seconds)
         << ",\"events_per_sec\":" << num(r.events_per_sec());
    os << '}' << (i + 1 < records.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

}  // namespace tc::exp
