#include "src/exp/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "src/analysis/metrics.h"
#include "src/bt/swarm.h"
#include "src/check/invariants.h"
#include "src/obs/export.h"
#include "src/protocols/registry.h"

namespace tc::exp {

namespace {

using Clock = std::chrono::steady_clock;

RunResult summarize(const bt::Swarm& swarm) {
  using F = analysis::SwarmMetrics::PeerFilter;
  const auto& m = swarm.metrics();
  RunResult r;
  r.compliant_times = m.completion_times(F::kCompliant);
  r.freerider_times = m.completion_times(F::kFreeRiders);
  r.compliant_mean = r.compliant_times.mean();
  r.compliant_finished = r.compliant_times.count();
  r.compliant_unfinished = m.unfinished_count(F::kCompliant);
  r.freerider_finished = r.freerider_times.count();
  r.freerider_unfinished = m.unfinished_count(F::kFreeRiders);
  if (r.freerider_finished > 0) r.freerider_mean = r.freerider_times.mean();
  r.uplink_utilization =
      m.mean_uplink_utilization(F::kCompliant, swarm.end_time());
  r.end_time = swarm.end_time();
  r.resilience = m.resilience();
  return r;
}

// Snapshots a finished checker into the record's "check.*" extras and, on
// violations, writes the findings to stderr in one shot (single write so
// concurrent workers don't interleave).
void record_check(check::Checker& checker, const RunSpec& spec,
                  std::size_t index, RunRecord& rec) {
  const check::CheckReport& rep = checker.finish();
  rec.add_extra("check.sound", rep.sound ? 1 : 0);
  rec.add_extra("check.events", static_cast<double>(rep.events));
  rec.add_extra("check.violations", static_cast<double>(rep.total_violations));
  rec.add_extra("check.possible", static_cast<double>(rep.possible_violations));
  rec.add_extra("check.warnings", static_cast<double>(rep.warnings));
  for (std::size_t c = 0; c < check::kInvariantCount; ++c) {
    if (rep.by_class[c] == 0) continue;
    rec.add_extra(std::string("check.v.") +
                      check::invariant_name(static_cast<check::Invariant>(c)),
                  static_cast<double>(rep.by_class[c]));
  }
  if (rep.total_violations + rep.possible_violations > 0) {
    std::ostringstream os;
    os << "[check] run " << index << " (" << spec.protocol;
    if (!spec.label.empty()) os << " " << spec.label;
    os << " seed=" << spec.config.seed << "):\n";
    check::write_report(os, rep, 5);
    const std::string msg = os.str();
    std::fwrite(msg.data(), 1, msg.size(), stderr);
  }
}

}  // namespace

RunnerOptions runner_options_from_flags(const util::Flags& flags) {
  RunnerOptions opts;
  const auto jobs = flags.get_int("jobs", 0);
  opts.jobs = jobs > 0 ? static_cast<std::size_t>(jobs) : 0;
  opts.quiet = flags.get_bool("quiet");
  return opts;
}

void apply_trace_flags(std::vector<RunSpec>& specs, const util::Flags& flags) {
  const bool want_json = flags.has("trace");
  const bool want_csv = flags.has("trace-csv");
  const bool want_limit = flags.has("trace-limit");
  if (!want_json && !want_csv && !want_limit) return;

  // A bare "--trace" parses as value "true"; anything else is the prefix.
  const auto prefix = [&](const char* flag) {
    const std::string v = flags.get_string(flag, "true");
    return (v == "true" || v == "-") ? std::string("trace") : v;
  };
  const std::string json_prefix = prefix("trace");
  const std::string csv_prefix = prefix("trace-csv");
  const auto limit = flags.get_int("trace-limit", 0);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    obs::TraceConfig& t = specs[i].trace;
    if (!t.enabled) {
      // The spec had no tracing of its own: full event taxonomy.
      t.enabled = true;
      t.kind_mask = obs::kAllKinds;
    }
    if (limit > 0) t.ring_capacity = static_cast<std::size_t>(limit);
    const std::string run = ".run" + std::to_string(i);
    if (want_json) t.export_json = json_prefix + run + ".json";
    if (want_csv) t.export_csv = csv_prefix + run + ".csv";
  }
}

void apply_check_flag(std::vector<RunSpec>& specs, const util::Flags& flags) {
  if (!flags.get_bool("check")) return;
  for (RunSpec& spec : specs) spec.check = true;
}

std::uint64_t total_check_violations(const std::vector<RunRecord>& records,
                                     std::size_t* unsound) {
  std::uint64_t total = 0;
  std::size_t lossy = 0;
  for (const RunRecord& rec : records) {
    total += static_cast<std::uint64_t>(rec.extra_value("check.violations"));
    total += static_cast<std::uint64_t>(rec.extra_value("check.possible"));
    if (rec.extra_value("check.sound", 1.0) == 0.0) ++lossy;
  }
  if (unsound != nullptr) *unsound = lossy;
  return total;
}

std::size_t effective_jobs(const RunnerOptions& opts, std::size_t spec_count) {
  std::size_t jobs = opts.jobs;
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  if (jobs > spec_count) jobs = spec_count;
  return jobs == 0 ? 1 : jobs;
}

RunRecord run_one(const RunSpec& spec, std::size_t index) {
  RunRecord rec;
  rec.index = index;
  rec.protocol = spec.protocol;
  rec.label = spec.label;
  rec.seed = spec.config.seed;
  rec.tags = spec.tags;
  const auto t0 = Clock::now();
  try {
    // The checker must outlive the swarm (the swarm's Trace holds a raw
    // sink pointer), so it is declared first.
    std::unique_ptr<check::Checker> checker;
    if (spec.check) {
      check::CheckerOptions copts;
      copts.pending_cap = spec.config.pending_cap;
      checker = std::make_unique<check::Checker>(copts);
    }
    auto proto = protocols::make_protocol(spec.protocol);
    bt::Swarm swarm(spec.config, *proto, spec.arrivals);
    if (spec.trace.enabled) {
      swarm.enable_obs(spec.trace);
    } else if (checker) {
      // Checking without tracing: the sink sees every event pre-ring, so a
      // minimal throwaway ring is enough.
      obs::TraceConfig minimal;
      minimal.enabled = true;
      minimal.ring_capacity = 1;
      minimal.kind_mask = 0;
      swarm.enable_obs(minimal);
    }
    if (checker) swarm.obs()->set_sink(checker.get());
    if (spec.setup) spec.setup(swarm);
    swarm.run();
    if (checker) record_check(*checker, spec, index, rec);
    rec.result = summarize(swarm);
    rec.sim_events = swarm.simulator().events_processed();
    if (spec.inspect) spec.inspect(swarm, *proto, rec);
    if (const obs::Trace* tr = swarm.obs()) {
      for (const auto& [key, value] : tr->snapshot()) {
        rec.add_extra("obs." + key, value);
      }
      rec.add_extra("obs.sim.peak_pending",
                    static_cast<double>(swarm.simulator().peak_pending()));
      rec.add_extra("obs.sim.cancelled",
                    static_cast<double>(swarm.simulator().cancelled_total()));
      if (!spec.trace.export_json.empty() || !spec.trace.export_csv.empty()) {
        const auto events = tr->events();
        if (!spec.trace.export_json.empty()) {
          std::ofstream out(spec.trace.export_json);
          obs::write_chrome_trace(out, events);
        }
        if (!spec.trace.export_csv.empty()) {
          std::ofstream out(spec.trace.export_csv);
          obs::write_event_csv(out, events);
        }
      }
    }
    rec.ok = true;
  } catch (const std::exception& e) {
    rec.ok = false;
    rec.error = e.what();
  } catch (...) {
    rec.ok = false;
    rec.error = "unknown exception";
  }
  rec.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return rec;
}

std::vector<RunRecord> run_all(const std::vector<RunSpec>& specs,
                               const RunnerOptions& opts) {
  std::vector<RunRecord> records(specs.size());
  if (specs.empty()) return records;

  const std::size_t jobs = effective_jobs(opts, specs.size());
  const auto t0 = Clock::now();

  if (jobs <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i)
      records[i] = run_one(specs[i], i);
  } else {
    // Work-stealing by atomic counter: each worker claims the next unrun
    // spec and writes its record into the spec's own slot, so the result
    // order is spec order no matter how threads interleave.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) return;
        records[i] = run_one(specs[i], i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (!opts.quiet) {
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    std::uint64_t events = 0;
    std::size_t failed = 0;
    for (const auto& r : records) {
      events += r.sim_events;
      if (!r.ok) ++failed;
    }
    std::fprintf(stderr,
                 "[exp] %zu runs on %zu thread%s in %.2fs "
                 "(%.3g sim events, %.3g events/s)%s",
                 records.size(), jobs, jobs == 1 ? "" : "s", wall,
                 static_cast<double>(events),
                 wall > 0 ? static_cast<double>(events) / wall : 0.0,
                 failed ? "" : "\n");
    if (failed) std::fprintf(stderr, ", %zu FAILED\n", failed);
  }
  return records;
}

std::vector<RunRecord> run_sweep(const Sweep& sweep, const RunnerOptions& opts) {
  return run_all(sweep.build(), opts);
}

}  // namespace tc::exp
