#include "src/exp/spec.h"

#include <cmath>
#include <cstdio>

#include "src/protocols/registry.h"

namespace tc::exp {

void RunSpec::set_tag(const std::string& key, const std::string& value) {
  for (auto& [k, v] : tags) {
    if (k == key) {
      v = value;
      return;
    }
  }
  tags.emplace_back(key, value);
}

const std::string* RunSpec::tag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string format_axis_value(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

Sweep::Sweep(bt::SwarmConfig base) : base_(base) {}

Sweep& Sweep::protocols(std::vector<std::string> names) {
  protocols_ = std::move(names);
  return *this;
}

Sweep& Sweep::seeds(std::uint64_t count, std::uint64_t first) {
  seed_count_ = count;
  first_seed_ = first;
  return *this;
}

Sweep& Sweep::axis(std::string name, std::vector<double> values,
                   std::function<void(RunSpec&, double)> apply) {
  axes_.push_back(Axis{std::move(name), std::move(values), std::move(apply)});
  return *this;
}

Sweep& Sweep::for_each(std::function<void(RunSpec&)> fn) {
  finalizers_.push_back(std::move(fn));
  return *this;
}

Sweep& Sweep::pin_piece_bytes(bool pin) {
  pin_piece_bytes_ = pin;
  return *this;
}

std::size_t Sweep::run_count() const {
  std::size_t n = protocols_.size() * seed_count_;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

std::vector<RunSpec> Sweep::build() const {
  std::vector<RunSpec> specs;
  specs.reserve(run_count());

  // Odometer over the axes: axis 0 is outermost.
  std::vector<std::size_t> idx(axes_.size(), 0);
  const auto advance = [&]() -> bool {
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++idx[a] < axes_[a].values.size()) return true;
      idx[a] = 0;
    }
    return false;
  };

  bool more = true;
  while (more) {
    for (const auto& name : protocols_) {
      // One registry query per (axis point, protocol), not per seed.
      const util::ByteCount proto_piece =
          pin_piece_bytes_ ? base_.piece_bytes
                           : protocols::make_protocol(name)->default_piece_bytes();
      for (std::uint64_t s = 0; s < seed_count_; ++s) {
        RunSpec spec;
        spec.protocol = name;
        spec.config = base_;
        spec.config.seed = first_seed_ + s;
        spec.config.piece_bytes = proto_piece;
        std::string label;
        for (std::size_t a = 0; a < axes_.size(); ++a) {
          const double v = axes_[a].values[idx[a]];
          axes_[a].apply(spec, v);
          const std::string text = format_axis_value(v);
          spec.set_tag(axes_[a].name, text);
          if (!label.empty()) label += ' ';
          label += axes_[a].name + '=' + text;
        }
        spec.label = label;
        for (const auto& fn : finalizers_) fn(spec);
        specs.push_back(std::move(spec));
      }
    }
    more = !axes_.empty() && advance();
    if (axes_.empty()) break;
  }
  return specs;
}

}  // namespace tc::exp
