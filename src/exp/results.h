// Per-run results of the experiment runner: the swarm summary every bench
// consumes (moved here from bench/common.h), per-run observability (wall
// time, simulated events, events/sec), and deterministic CSV/JSON writers.
//
// Determinism contract: every field of RunRecord except the wall-clock
// observability (wall_seconds, events_per_sec()) is a pure function of the
// RunSpec that produced it, so two executions of the same sweep — at any
// --jobs level — serialize byte-identically as long as timing columns stay
// excluded (the writers' default).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/metrics.h"
#include "src/util/stats.h"

namespace tc::exp {

// Summary of one swarm run (was bench::RunResult).
struct RunResult {
  double compliant_mean = 0.0;       // mean download completion time (s)
  std::size_t compliant_finished = 0;
  std::size_t compliant_unfinished = 0;
  double freerider_mean = -1.0;      // < 0: none finished
  std::size_t freerider_finished = 0;
  std::size_t freerider_unfinished = 0;
  double uplink_utilization = 0.0;   // 0..1 (compliant)
  double end_time = 0.0;
  util::Distribution compliant_times;
  util::Distribution freerider_times;
  // Fault/recovery counters (all zero for fault-free runs).
  analysis::ResilienceStats resilience;
};

// One executed RunSpec: identity copied from the spec so the record is
// self-describing, outcome, and observability.
struct RunRecord {
  // --- Identity -----------------------------------------------------------
  std::size_t index = 0;             // position in the sweep's spec list
  std::string protocol;
  std::string label;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, std::string>> tags;

  // --- Outcome ------------------------------------------------------------
  // false: the run threw; `error` holds the exception message and `result`
  // is default-constructed. A failed run never aborts the rest of a sweep.
  bool ok = false;
  std::string error;
  RunResult result;

  // Free-form per-run measurements filled by RunSpec::inspect; serialized
  // as extra CSV/JSON columns (union of keys across the sweep).
  std::vector<std::pair<std::string, double>> extra;

  // --- Observability ------------------------------------------------------
  double wall_seconds = 0.0;         // NOT deterministic; excluded from CSV
  std::uint64_t sim_events = 0;      // simulator events processed (deterministic)

  double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(sim_events) / wall_seconds
                              : 0.0;
  }

  const std::string* tag(const std::string& key) const;
  void add_extra(const std::string& key, double value) {
    extra.emplace_back(key, value);
  }
  // Value recorded under `key`, or `def` if the run never measured it.
  double extra_value(const std::string& key, double def = 0.0) const;
};

// Deterministic CSV: identity, outcome, result and extra columns. Tag and
// extra columns are the union across records in first-appearance order.
// `include_timing` appends wall_seconds / events_per_sec — useful
// interactively, but it breaks byte-identity across --jobs levels.
void write_csv(std::ostream& os, const std::vector<RunRecord>& records,
               bool include_timing = false);

// Same content as the CSV, as a JSON array of objects.
void write_json(std::ostream& os, const std::vector<RunRecord>& records,
                bool include_timing = false);

}  // namespace tc::exp
