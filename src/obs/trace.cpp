#include "src/obs/trace.h"

#include <algorithm>

namespace tc::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kPeerJoin: return "peer-join";
    case EventKind::kPeerFinish: return "peer-finish";
    case EventKind::kPeerDepart: return "peer-depart";
    case EventKind::kPeerCrash: return "peer-crash";
    case EventKind::kPeerWhitewash: return "peer-whitewash";
    case EventKind::kPieceSent: return "piece-sent";
    case EventKind::kPieceDelivered: return "piece-delivered";
    case EventKind::kPieceAborted: return "piece-aborted";
    case EventKind::kPieceGranted: return "piece-granted";
    case EventKind::kKeyEscrowed: return "key-escrowed";
    case EventKind::kKeyDelivered: return "key-delivered";
    case EventKind::kKeyLost: return "key-lost";
    case EventKind::kTxOpen: return "tx-open";
    case EventKind::kTxRetry: return "tx-retry";
    case EventKind::kTxTimeout: return "tx-timeout";
    case EventKind::kTxClose: return "tx-close";
    case EventKind::kChainStart: return "chain-start";
    case EventKind::kChainExtend: return "chain-extend";
    case EventKind::kChainBreak: return "chain-break";
    case EventKind::kChoke: return "choke";
    case EventKind::kUnchoke: return "unchoke";
    case EventKind::kFaultControlDrop: return "fault-control-drop";
    case EventKind::kFaultControlJitter: return "fault-control-jitter";
    case EventKind::kFaultOutageBegin: return "fault-outage-begin";
    case EventKind::kFaultOutageEnd: return "fault-outage-end";
    case EventKind::kCensusTick: return "census-tick";
    case EventKind::kCount_: break;
  }
  return "?";
}

const char* chain_break_cause_name(ChainBreakCause c) {
  switch (c) {
    case ChainBreakCause::kNone: return "none";
    case ChainBreakCause::kCompleted: return "completed";
    case ChainBreakCause::kNoPayee: return "no-payee";
    case ChainBreakCause::kFreeriderSink: return "freerider-sink";
    case ChainBreakCause::kDeparture: return "departure";
    case ChainBreakCause::kCrash: return "crash";
    case ChainBreakCause::kWatchdog: return "watchdog";
    case ChainBreakCause::kAborted: return "aborted";
  }
  return "?";
}

EventRing::EventRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void EventRing::push(const TraceEvent& e) {
  ++recorded_;
  if (buf_.size() < capacity_) {
    buf_.push_back(e);
    return;
  }
  buf_[head_] = e;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> EventRing::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  // Once wrapped, head_ points at the oldest event.
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

Trace::Trace(const TraceConfig& cfg)
    : mask_(cfg.kind_mask), ring_(cfg.ring_capacity) {}

std::vector<std::pair<std::string, double>> Trace::snapshot() const {
  auto out = registry_.snapshot();
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    if (kind_counts_[k] == 0) continue;
    out.emplace_back(
        std::string("events.") + event_kind_name(static_cast<EventKind>(k)),
        static_cast<double>(kind_counts_[k]));
  }
  out.emplace_back("events.recorded", static_cast<double>(ring_.recorded()));
  out.emplace_back("events.dropped", static_cast<double>(ring_.dropped()));
  return out;
}

}  // namespace tc::obs
