#include "src/obs/chain_view.h"

namespace tc::obs {

ChainView ChainView::reconstruct(const std::vector<TraceEvent>& events) {
  ChainView v;
  const auto find = [&v](std::uint64_t id) -> ChainRecord* {
    const auto it = v.index_.find(id);
    return it == v.index_.end() ? nullptr : &v.chains_[it->second];
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kChainStart: {
        ChainRecord rec;
        rec.id = e.chain;
        rec.initiator = e.a;
        rec.by_seeder = (e.aux & 1u) != 0;
        rec.created = e.t;
        v.index_[e.chain] = v.chains_.size();
        v.chains_.push_back(rec);
        ++v.active_;
        if (rec.by_seeder) {
          ++v.created_seeder_;
        } else {
          ++v.created_leecher_;
        }
        break;
      }
      case EventKind::kChainExtend: {
        if (ChainRecord* rec = find(e.chain)) {
          ++rec->length;
        } else {
          ++v.orphans_;
        }
        break;
      }
      case EventKind::kChainBreak: {
        ChainRecord* rec = find(e.chain);
        if (rec == nullptr) {
          ++v.orphans_;
          break;
        }
        if (rec->broken()) break;  // terminate is idempotent upstream too
        rec->terminated = e.t;
        rec->cause = static_cast<ChainBreakCause>(e.aux);
        if (v.active_ > 0) --v.active_;
        break;
      }
      case EventKind::kTxOpen: {
        if (e.c == net::kNoPeer) {
          ++v.terminal_txs_;
        } else if (e.c == e.a) {
          ++v.direct_txs_;
        } else {
          ++v.indirect_txs_;
        }
        break;
      }
      case EventKind::kCensusTick: {
        v.census_.push_back(CensusPoint{e.t, v.active_, v.created_seeder_,
                                        v.created_leecher_});
        break;
      }
      default:
        break;  // unrelated kinds are free to share the stream
    }
  }
  return v;
}

const ChainRecord* ChainView::chain(std::uint64_t id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &chains_[it->second];
}

double ChainView::opportunistic_fraction() const {
  const double total = static_cast<double>(total_created());
  return total > 0 ? static_cast<double>(created_leecher_) / total : 0.0;
}

std::map<std::uint32_t, std::size_t> ChainView::length_histogram() const {
  std::map<std::uint32_t, std::size_t> h;
  for (const ChainRecord& c : chains_) {
    if (c.broken()) ++h[c.length];
  }
  return h;
}

double ChainView::mean_terminated_length() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const ChainRecord& c : chains_) {
    if (!c.broken()) continue;
    sum += static_cast<double>(c.length);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::map<ChainBreakCause, std::size_t> ChainView::break_causes() const {
  std::map<ChainBreakCause, std::size_t> out;
  for (const ChainRecord& c : chains_) {
    if (c.broken()) ++out[c.cause];
  }
  return out;
}

std::size_t ChainView::fault_breaks() const {
  std::size_t n = 0;
  for (const ChainRecord& c : chains_) {
    if (!c.broken()) continue;
    if (c.cause == ChainBreakCause::kDeparture ||
        c.cause == ChainBreakCause::kCrash ||
        c.cause == ChainBreakCause::kWatchdog) {
      ++n;
    }
  }
  return n;
}

double ChainView::direct_fraction() const {
  const double enc = static_cast<double>(direct_txs_ + indirect_txs_);
  return enc > 0 ? static_cast<double>(direct_txs_) / enc : 0.0;
}

}  // namespace tc::obs
