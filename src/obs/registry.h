// Named metric registry: counters, gauges, and log-bucketed histograms
// with percentile queries. A Registry is the per-run metric store of the
// observability layer (src/obs/trace.h embeds one); it is snapshotted into
// exp::RunRecord::extra at the end of a traced run.
//
// Snapshots are deterministic: names are kept in sorted (std::map) order
// and histogram percentiles are pure functions of the recorded samples, so
// a traced sweep serializes byte-identically at any --jobs level.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tc::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log-spaced histogram: `per_decade` buckets per factor of 10 covering
// [lo, hi), plus underflow/overflow edge buckets. Memory is O(buckets)
// regardless of sample count, and percentile queries return the geometric
// midpoint of the containing bucket — a bounded relative error of
// 10^(1/(2*per_decade)) - 1 (~7.5% at the default 16/decade), verified
// against the exact util::Distribution percentiles in tests.
class LogHistogram {
 public:
  explicit LogHistogram(double lo = 1e-4, double hi = 1e7,
                        int per_decade = 16);

  void add(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // p in [0,1]. Returns the geometric midpoint of the bucket holding the
  // p-quantile sample, clamped to the observed [min, max].
  double percentile(double p) const;

  std::size_t bucket_count() const { return counts_.size(); }

 private:
  std::size_t bucket_of(double v) const;

  double lo_, hi_;
  int per_decade_;
  // counts_[0] = underflow (< lo, incl. non-positive values);
  // counts_.back() = overflow (>= hi).
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Registry {
 public:
  // Look up or create. References stay valid for the Registry's lifetime
  // (node-based containers).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Flat, deterministic (name-sorted per kind) view: counters and gauges
  // as-is, histograms expanded to <name>.count/.mean/.p50/.p90/.p99/.max.
  std::vector<std::pair<std::string, double>> snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace tc::obs
