#include "src/obs/registry.h"

#include <algorithm>
#include <cmath>

namespace tc::obs {

LogHistogram::LogHistogram(double lo, double hi, int per_decade)
    : lo_(lo), hi_(hi), per_decade_(per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || per_decade < 1) {
    lo_ = 1e-4;
    hi_ = 1e7;
    per_decade_ = 16;
  }
  const auto span = std::log10(hi_ / lo_) * per_decade_;
  const auto buckets = static_cast<std::size_t>(std::ceil(span));
  counts_.assign(buckets + 2, 0);  // + underflow + overflow
}

std::size_t LogHistogram::bucket_of(double v) const {
  if (!(v >= lo_)) return 0;  // underflow; also catches v <= 0 and NaN
  if (v >= hi_) return counts_.size() - 1;
  const auto i = static_cast<std::size_t>(
      std::log10(v / lo_) * static_cast<double>(per_decade_));
  return std::min(i + 1, counts_.size() - 2);
}

void LogHistogram::add(double v) {
  ++counts_[bucket_of(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the p-quantile sample (nearest-rank, 1-based).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen < target) continue;
    double v;
    if (i == 0) {
      v = min_;  // underflow bucket: all we know is they were < lo
    } else if (i == counts_.size() - 1) {
      v = max_;
    } else {
      const double blo = lo_ * std::pow(10.0, static_cast<double>(i - 1) /
                                                  per_decade_);
      const double bhi = blo * std::pow(10.0, 1.0 / per_decade_);
      v = std::sqrt(blo * bhi);  // geometric midpoint
    }
    return std::clamp(v, min_, max_);
  }
  return max_;
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

LogHistogram& Registry::histogram(const std::string& name) {
  return histograms_.try_emplace(name).first->second;
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + 6 * histograms_.size());
  for (const auto& [name, c] : counters_)
    out.emplace_back(name, static_cast<double>(c.value()));
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name + ".count", static_cast<double>(h.count()));
    out.emplace_back(name + ".mean", h.mean());
    out.emplace_back(name + ".p50", h.percentile(0.50));
    out.emplace_back(name + ".p90", h.percentile(0.90));
    out.emplace_back(name + ".p99", h.percentile(0.99));
    out.emplace_back(name + ".max", h.max());
  }
  return out;
}

}  // namespace tc::obs
