// Event tracing for swarm runs: typed TraceEvents recorded into a bounded
// ring-buffer sink, plus an embedded metric Registry (src/obs/registry.h).
//
// Zero-overhead contract: tracing is OFF by default — the Swarm holds a
// null obs::Trace pointer and every instrumentation site is guarded by a
// single pointer test. A disabled run performs no allocation, consumes no
// randomness, and schedules nothing extra, so its output is byte-identical
// to a build without this subsystem. Enabling tracing never perturbs a run
// either: emission only reads simulation state.
//
// The ring sink is bounded: once `ring_capacity` events are held, the
// oldest event is overwritten and counted as dropped. Offline consumers
// (obs::ChainView, the exporters) should size the ring for the kinds they
// enable via the kind mask — see TraceConfig.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/net/message.h"
#include "src/net/peer_id.h"
#include "src/obs/registry.h"
#include "src/util/units.h"

namespace tc::obs {

enum class EventKind : std::uint8_t {
  // Peer lifecycle.
  kPeerJoin,       // a=peer, aux=PeerFlags
  kPeerFinish,     // a=peer (completed the file; departs right after)
  kPeerDepart,     // a=peer (graceful)
  kPeerCrash,      // a=peer (vanished, no goodbye)
  kPeerWhitewash,  // a=old identity, b=fresh identity
  // Piece plane (flow-level, encrypted or not).
  kPieceSent,       // a=uploader, b=receiver, piece, ref=flow id
  kPieceDelivered,  // same roles; the flow completed
  kPieceAborted,    // same roles; an endpoint departed mid-transfer
  kPieceGranted,    // a=receiver, b=source; piece decrypted/plainly received
  // T-Chain key exchange.
  kKeyEscrowed,   // a=donor, b=requestor, c=payee, ref=tx (§II-B4 handoff)
  kKeyDelivered,  // a=donor, b=requestor, ref=tx
  kKeyLost,       // a=donor, b=requestor, ref=tx (key never arrived)
  // Transaction lifecycle.
  kTxOpen,     // a=donor, b=requestor, c=payee (kNoPeer=terminal), ref=tx
  kTxRetry,    // ref=tx; watchdog re-kicked a stalled exchange
  kTxTimeout,  // ref=tx; watchdog exhausted retries, tearing down
  kTxClose,    // ref=tx, aux=final core::TxState
  // Chain structure.
  kChainStart,   // a=initiator, chain, aux=ChainFlags (bit0: by seeder)
  kChainExtend,  // chain, ref=appended tx
  kChainBreak,   // chain, aux=ChainBreakCause
  // Choking (rate-based baseline protocols).
  kChoke,    // a=peer, b=neighbor removed from the unchoke set
  kUnchoke,  // a=peer, b=neighbor added to the unchoke set
  // Fault injections (sim/faults).
  kFaultControlDrop,    // a control-plane message was dropped
  kFaultControlJitter,  // a control-plane message was delayed
  kFaultOutageBegin,    // a=peer, upload capacity dark
  kFaultOutageEnd,      // a=peer, capacity restored
  // Periodic census marker (chain census replay, Figures 10/11).
  kCensusTick,
  kCount_,  // not a kind; array/mask bound
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCount_);
static_assert(kEventKindCount <= 64, "kind mask is a uint64");

const char* event_kind_name(EventKind k);

// aux payload of kPeerJoin.
enum PeerFlags : std::uint8_t {
  kPeerFlagFreerider = 1,
  kPeerFlagColluder = 2,
  kPeerFlagSeeder = 4,
};

// aux payload of kChainBreak: why the chain stopped growing.
enum class ChainBreakCause : std::uint8_t {
  kNone = 0,
  kCompleted,      // terminal (unencrypted) upload ended it — Fig 1c
  kNoPayee,        // no qualified payee anywhere; key settled gratis
  kFreeriderSink,  // requestor swallowed the ciphertext, never reciprocated
  kDeparture,      // a graceful departure killed a live transaction
  kCrash,          // an abrupt crash killed a live transaction
  kWatchdog,       // per-transaction watchdog exhausted its retries
  kAborted,        // upload aborted / chain never got its first transaction
};

const char* chain_break_cause_name(ChainBreakCause c);

struct TraceEvent {
  util::SimTime t = 0.0;
  EventKind kind = EventKind::kPeerJoin;
  std::uint8_t aux = 0;  // kind-dependent small payload (flags, cause, state)
  net::PieceIndex piece = net::kNoPiece;
  net::PeerId a = net::kNoPeer;  // subject (uploader / donor / peer)
  net::PeerId b = net::kNoPeer;  // object (receiver / requestor / neighbor)
  net::PeerId c = net::kNoPeer;  // third party (payee)
  std::uint64_t ref = 0;         // transaction or flow id
  std::uint64_t chain = 0;       // chain id
};

constexpr std::uint64_t kind_bit(EventKind k) {
  return std::uint64_t{1} << static_cast<std::size_t>(k);
}

inline constexpr std::uint64_t kAllKinds = ~std::uint64_t{0};

// The minimal kind set obs::ChainView needs for chain-structure analytics
// (lengths, census replay, break causes).
inline constexpr std::uint64_t kChainKinds =
    kind_bit(EventKind::kChainStart) | kind_bit(EventKind::kChainExtend) |
    kind_bit(EventKind::kChainBreak) | kind_bit(EventKind::kCensusTick);

// kChainKinds plus transaction opens: adds direct-vs-indirect reciprocity
// ratios to the reconstruction.
inline constexpr std::uint64_t kChainAnalysisKinds =
    kChainKinds | kind_bit(EventKind::kTxOpen);

struct TraceConfig {
  bool enabled = false;            // consumed by exp::RunSpec wiring
  std::size_t ring_capacity = std::size_t{1} << 20;
  std::uint64_t kind_mask = kAllKinds;
  // Export destinations, written by exp::run_one after a traced run
  // (empty = don't write). Chrome trace-event JSON / event CSV.
  std::string export_json;
  std::string export_csv;
};

// Online consumer of the full event stream (src/check's invariant checker
// implements this). A sink registered on a Trace observes every emitted
// event *before* the kind mask and the ring, so it is lossless even when
// the ring wraps: verification against a live sink is always sound, while
// verification against a ring snapshot is sound only when dropped() == 0.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
};

// Bounded ring of TraceEvents: grows to `capacity`, then overwrites the
// oldest event (counted as dropped).
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  void push(const TraceEvent& e);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return buf_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(buf_.size());
  }

  // Events oldest -> newest (copies; the ring keeps recording).
  std::vector<TraceEvent> snapshot() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next overwrite position once saturated
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> buf_;
};

// The tracing facade a Swarm owns when observability is on: a kind-masked
// ring sink, per-kind event counters, and the run's metric Registry.
class Trace {
 public:
  explicit Trace(const TraceConfig& cfg = {});

  // Records `e` if its kind passes the mask. The caller stamps `t`. A
  // registered sink sees `e` first, unmasked and before any ring overwrite
  // (see EventSink).
  void emit(const TraceEvent& e) {
    if (sink_ != nullptr) sink_->on_event(e);
    const auto k = static_cast<std::size_t>(e.kind);
    if (((mask_ >> k) & 1u) == 0) return;
    ++kind_counts_[k];
    ring_.push(e);
  }

  // At most one sink; null detaches. The sink must outlive the Trace (or be
  // detached first) and is invoked synchronously from emit().
  void set_sink(EventSink* sink) { sink_ = sink; }
  EventSink* sink() const { return sink_; }

  std::uint64_t kind_mask() const { return mask_; }
  const EventRing& ring() const { return ring_; }
  std::vector<TraceEvent> events() const { return ring_.snapshot(); }

  // Events of `k` accepted by the mask (including any later overwritten by
  // ring wraparound).
  std::uint64_t count(EventKind k) const {
    return kind_counts_[static_cast<std::size_t>(k)];
  }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  // Registry snapshot plus "events.<kind>" counts and ring bookkeeping
  // ("events.recorded", "events.dropped"). Deterministic order.
  std::vector<std::pair<std::string, double>> snapshot() const;

 private:
  std::uint64_t mask_;
  EventSink* sink_ = nullptr;
  EventRing ring_;
  std::array<std::uint64_t, kEventKindCount> kind_counts_{};
  Registry registry_;
};

}  // namespace tc::obs
