// Offline reconstruction of T-Chain triangle chains from a trace-event
// stream (src/obs/trace.h).
//
// The protocol emits kChainStart / kChainExtend / kChainBreak / kTxOpen
// events plus periodic kCensusTick markers; replaying them in emission
// order rebuilds, exactly, the chain bookkeeping the protocol maintained
// live — chain-length distributions, the active-chain census series behind
// Figure 10, cumulative seeder-vs-leecher creation counts behind Figure 11,
// direct-vs-indirect reciprocity ratios, and broken-chain causes
// attributable to sim/faults injections. A cross-check test asserts the
// reconstruction matches core::ChainRegistry's live counters bit-for-bit.
//
// Replay tolerates a wrapped (lossy) ring: events referring to chains whose
// start was overwritten are counted in orphan_events() rather than applied,
// so a truncated stream yields a truncated — never corrupted — view.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/obs/trace.h"

namespace tc::obs {

struct ChainRecord {
  std::uint64_t id = 0;
  net::PeerId initiator = net::kNoPeer;
  bool by_seeder = false;
  util::SimTime created = 0.0;
  util::SimTime terminated = -1.0;  // < 0: still active at stream end
  std::uint32_t length = 0;         // transactions appended
  ChainBreakCause cause = ChainBreakCause::kNone;

  bool broken() const { return terminated >= 0.0; }
};

// One kCensusTick replayed: the live chain population at that instant.
// Field-compatible with what core::ChainRegistry::sample() used to record.
struct CensusPoint {
  util::SimTime t = 0.0;
  std::size_t active_chains = 0;
  std::uint64_t cumulative_seeder = 0;
  std::uint64_t cumulative_leecher = 0;
};

class ChainView {
 public:
  ChainView() = default;

  // Replays `events` (emission order) into a view.
  static ChainView reconstruct(const std::vector<TraceEvent>& events);

  // --- Chain population ----------------------------------------------------
  const std::vector<ChainRecord>& chains() const { return chains_; }
  const ChainRecord* chain(std::uint64_t id) const;

  std::uint64_t total_created() const { return created_seeder_ + created_leecher_; }
  std::uint64_t created_by_seeder() const { return created_seeder_; }
  std::uint64_t created_by_leechers() const { return created_leecher_; }
  double opportunistic_fraction() const;

  std::size_t active_at_end() const { return active_; }

  // --- Length analytics ----------------------------------------------------
  // length -> number of broken chains of that length (sorted by length).
  std::map<std::uint32_t, std::size_t> length_histogram() const;
  double mean_terminated_length() const;

  // --- Break causes --------------------------------------------------------
  std::map<ChainBreakCause, std::size_t> break_causes() const;
  // Breaks caused by failures (departure / crash / watchdog) rather than by
  // the protocol running its natural course.
  std::size_t fault_breaks() const;

  // --- Reciprocity (requires kTxOpen in the trace mask) --------------------
  std::uint64_t direct_txs() const { return direct_txs_; }
  std::uint64_t indirect_txs() const { return indirect_txs_; }
  std::uint64_t terminal_txs() const { return terminal_txs_; }
  // direct / (direct + indirect); 0 when no encrypted tx was seen.
  double direct_fraction() const;

  // --- Census series (Figure 10/11) ----------------------------------------
  const std::vector<CensusPoint>& census() const { return census_; }

  // Events that referenced a chain whose start the ring had dropped.
  std::uint64_t orphan_events() const { return orphans_; }

 private:
  std::vector<ChainRecord> chains_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // id -> chains_ pos
  std::vector<CensusPoint> census_;
  std::size_t active_ = 0;
  std::uint64_t created_seeder_ = 0;
  std::uint64_t created_leecher_ = 0;
  std::uint64_t direct_txs_ = 0;
  std::uint64_t indirect_txs_ = 0;
  std::uint64_t terminal_txs_ = 0;
  std::uint64_t orphans_ = 0;
};

}  // namespace tc::obs
