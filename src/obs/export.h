// Trace exporters.
//
// write_chrome_trace emits the Chrome trace-event JSON format ("traceEvents"
// array, ts/dur in microseconds) that Perfetto and chrome://tracing load
// directly: one track (tid) per peer, piece transfers as complete ("X")
// duration slices on the uploader's track, everything else as instant ("i")
// events. write_event_csv emits the raw stream as a flat CSV timeseries.
//
// Both writers are deterministic: output is a pure function of the event
// vector, events are written in stream order (non-decreasing timestamps),
// and no locale-dependent formatting is used.
#pragma once

#include <ostream>
#include <vector>

#include "src/obs/trace.h"

namespace tc::obs {

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events);

void write_event_csv(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace tc::obs
