#include "src/obs/export.h"

#include <cstdio>
#include <map>
#include <unordered_map>

namespace tc::obs {
namespace {

// Microsecond timestamp for the Chrome trace format. Events are written in
// stream order, so ts is non-decreasing across the file.
double micros(util::SimTime t) { return t * 1e6; }

void write_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  os << buf;
}

// Common "args" payload: whichever optional fields the event carries.
void write_args(std::ostream& os, const TraceEvent& e) {
  os << "\"args\":{";
  bool first = true;
  const auto field = [&](const char* name, std::uint64_t v) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << v;
  };
  if (e.piece != net::kNoPiece) field("piece", e.piece);
  if (e.b != net::kNoPeer) field("b", e.b);
  if (e.c != net::kNoPeer) field("c", e.c);
  if (e.ref != 0) field("ref", e.ref);
  if (e.chain != 0) field("chain", e.chain);
  if (e.kind == EventKind::kChainBreak) {
    if (!first) os << ',';
    first = false;
    os << "\"cause\":\"" << chain_break_cause_name(static_cast<ChainBreakCause>(e.aux))
       << '"';
  } else if (e.aux != 0) {
    field("aux", e.aux);
  }
  os << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events) {
  // Pre-pass: match kPieceSent -> kPieceDelivered / kPieceAborted by flow ref
  // so transfers render as duration slices on the uploader's track.
  std::unordered_map<std::uint64_t, const TraceEvent*> flow_end;
  for (const TraceEvent& e : events) {
    if ((e.kind == EventKind::kPieceDelivered ||
         e.kind == EventKind::kPieceAborted) &&
        e.ref != 0 && !flow_end.count(e.ref)) {
      flow_end.emplace(e.ref, &e);
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };

  // One track per peer: name the threads once, in peer-id order.
  std::map<net::PeerId, bool> peers;
  for (const TraceEvent& e : events) {
    if (e.a != net::kNoPeer) peers[e.a];
  }
  for (const auto& [pid, unused] : peers) {
    (void)unused;
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << pid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"peer " << pid << "\"}}";
  }

  for (const TraceEvent& e : events) {
    const net::PeerId track = e.a == net::kNoPeer ? 0 : e.a;
    if (e.kind == EventKind::kPieceSent) {
      // Complete ("X") slice if the end of this flow is in the stream;
      // otherwise fall through to an instant.
      const auto it = flow_end.find(e.ref);
      if (it != flow_end.end() && it->second->t >= e.t) {
        sep();
        os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << track << ",\"ts\":";
        write_double(os, micros(e.t));
        os << ",\"dur\":";
        write_double(os, micros(it->second->t - e.t));
        os << ",\"name\":\""
           << (it->second->kind == EventKind::kPieceAborted ? "piece (aborted)"
                                                            : "piece")
           << "\",\"cat\":\"piece\",";
        write_args(os, e);
        os << '}';
        continue;
      }
    }
    if (e.kind == EventKind::kPieceDelivered || e.kind == EventKind::kPieceAborted) {
      // Rendered as the end of the paired "X" slice above.
      if (e.ref != 0 && flow_end.count(e.ref)) continue;
    }
    sep();
    os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << track << ",\"ts\":";
    write_double(os, micros(e.t));
    os << ",\"name\":\"" << event_kind_name(e.kind) << "\",\"cat\":\"event\",";
    write_args(os, e);
    os << '}';
  }
  os << "\n]}\n";
}

void write_event_csv(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "t,kind,a,b,c,piece,ref,chain,aux\n";
  for (const TraceEvent& e : events) {
    write_double(os, e.t);
    os << ',' << event_kind_name(e.kind) << ',';
    if (e.a != net::kNoPeer) os << e.a;
    os << ',';
    if (e.b != net::kNoPeer) os << e.b;
    os << ',';
    if (e.c != net::kNoPeer) os << e.c;
    os << ',';
    if (e.piece != net::kNoPiece) os << e.piece;
    os << ',' << e.ref << ',' << e.chain << ',' << static_cast<unsigned>(e.aux)
       << '\n';
  }
}

}  // namespace tc::obs
