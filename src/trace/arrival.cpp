#include "src/trace/arrival.h"

#include <algorithm>
#include <cmath>

namespace tc::trace {

std::vector<SimTime> FlashCrowdArrivals::generate(std::size_t count,
                                                  util::Rng& rng) const {
  std::vector<SimTime> t(count);
  for (auto& x : t) x = rng.uniform(0.0, window_);
  std::sort(t.begin(), t.end());
  return t;
}

std::vector<SimTime> PoissonArrivals::generate(std::size_t count,
                                               util::Rng& rng) const {
  std::vector<SimTime> t;
  t.reserve(count);
  SimTime now = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    now += rng.exponential(rate_);
    t.push_back(now);
  }
  return t;
}

double RedHatTraceArrivals::rate_at(SimTime t) const {
  const double diurnal =
      1.0 + p_.diurnal_amplitude * std::sin(2.0 * M_PI * t / 86'400.0);
  return std::max(p_.floor_rate,
                  p_.peak_rate * std::exp(-t / p_.decay_seconds) * diurnal);
}

std::vector<SimTime> RedHatTraceArrivals::generate(std::size_t count,
                                                   util::Rng& rng) const {
  // Lewis-Shedler thinning against the (conservative) envelope rate.
  const double envelope = p_.peak_rate * (1.0 + p_.diurnal_amplitude);
  std::vector<SimTime> t;
  t.reserve(count);
  SimTime now = 0.0;
  while (t.size() < count) {
    now += rng.exponential(envelope);
    if (rng.uniform() <= rate_at(now) / envelope) t.push_back(now);
  }
  return t;
}

ExponentialSessions::ExponentialSessions(SimTime mean_seconds)
    : mean_(mean_seconds) {}

SimTime ExponentialSessions::duration(util::Rng& rng) const {
  return rng.exponential(1.0 / mean_);
}

LogNormalSessions::LogNormalSessions(SimTime median_seconds, double sigma)
    : mu_(std::log(median_seconds)), sigma_(sigma) {}

SimTime LogNormalSessions::duration(util::Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

}  // namespace tc::trace
