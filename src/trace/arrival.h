// Leecher arrival models used by the paper's evaluation:
//  - flash crowd: all leechers join within the first 10 seconds (§IV-A);
//  - Poisson: constant-rate arrivals (used by the §III-B analytic model);
//  - RedHat-9-like trace: a synthetic stand-in for the RedHat 9 tracker
//    trace [28] the paper replays (see DESIGN.md §5 Substitutions) —
//    release-day surge followed by exponentially decaying arrival rate
//    with diurnal modulation.
//
// Session-duration (churn) models live here too: how long a leecher stays
// before leaving, finished or not. The paper assumes peers stay to
// completion; measured swarms do not, so the fault-injection layer
// (src/sim/faults.*) pairs an arrival model with a session model to drive
// mid-download departures.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace tc::trace {

using util::SimTime;

class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;
  virtual std::string name() const = 0;
  // Join times (seconds, non-decreasing) for `count` leechers.
  virtual std::vector<SimTime> generate(std::size_t count,
                                        util::Rng& rng) const = 0;
};

// All peers join uniformly at random within [0, window).
class FlashCrowdArrivals final : public ArrivalModel {
 public:
  explicit FlashCrowdArrivals(SimTime window = 10.0) : window_(window) {}
  std::string name() const override { return "flash-crowd"; }
  std::vector<SimTime> generate(std::size_t count,
                                util::Rng& rng) const override;

 private:
  SimTime window_;
};

// Homogeneous Poisson process with the given rate (peers/second).
class PoissonArrivals final : public ArrivalModel {
 public:
  explicit PoissonArrivals(double rate_per_sec) : rate_(rate_per_sec) {}
  std::string name() const override { return "poisson"; }
  std::vector<SimTime> generate(std::size_t count,
                                util::Rng& rng) const override;

 private:
  double rate_;
};

// Non-homogeneous Poisson process whose rate decays exponentially from a
// release-day peak, modulated by a diurnal cycle:
//   lambda(t) = peak * exp(-t / decay) * (1 + diurnal * sin(2*pi*t/86400))
// Arrivals are drawn by thinning. Defaults approximate the published
// RedHat 9 swarm's shape (most joins in the first days, long tail).
class RedHatTraceArrivals final : public ArrivalModel {
 public:
  struct Params {
    double peak_rate = 0.5;       // peers/second at release
    double decay_seconds = 36'000; // e-folding time of interest
    double diurnal_amplitude = 0.3;
    double floor_rate = 0.002;    // long-tail trickle
  };

  RedHatTraceArrivals() : p_() {}
  explicit RedHatTraceArrivals(Params p) : p_(p) {}
  std::string name() const override { return "redhat9-like"; }
  std::vector<SimTime> generate(std::size_t count,
                                util::Rng& rng) const override;

  double rate_at(SimTime t) const;

 private:
  Params p_;
};

// --- Session-duration (churn) models ---------------------------------------

class SessionModel {
 public:
  virtual ~SessionModel() = default;
  virtual std::string name() const = 0;
  // How long the peer stays in the swarm from its join (seconds, > 0).
  virtual SimTime duration(util::Rng& rng) const = 0;
};

// Memoryless sessions: classic analytic churn with the given mean.
class ExponentialSessions final : public SessionModel {
 public:
  explicit ExponentialSessions(SimTime mean_seconds);
  std::string name() const override { return "exp-sessions"; }
  SimTime duration(util::Rng& rng) const override;

 private:
  SimTime mean_;
};

// Heavy-tailed sessions: most peers leave early, a few stay very long —
// the shape tracker measurements consistently report. `median_seconds` is
// exp(mu); `sigma` controls the tail weight.
class LogNormalSessions final : public SessionModel {
 public:
  LogNormalSessions(SimTime median_seconds, double sigma);
  std::string name() const override { return "lognormal-sessions"; }
  SimTime duration(util::Rng& rng) const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace tc::trace
