// Non-blocking framed connection on a Reactor: incremental frame parsing
// on the read side (edge-triggered drain into an inbox buffer), buffered
// partial writes on the send side (net::FrameSocket's outbox, flushed on
// EPOLLOUT), and asynchronous dialing (connect() in progress resolves via
// writability + SO_ERROR).
//
// A FrameConn delivers whole decoded net::Message values to its Delegate;
// wire errors — truncated stream, oversized length prefix, undecodable
// frame, connection reset — all funnel into a single on_conn_closed
// notification, after which the connection is defunct. The delegate owns
// the FrameConn and should destroy it from a posted callback, never from
// inside its own notification.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/net/message.h"
#include "src/net/tcp.h"
#include "src/rt/reactor.h"
#include "src/util/bytes.h"

namespace tc::rt {

class FrameConn : public Reactor::Handler {
 public:
  class Delegate {
   public:
    virtual ~Delegate() = default;
    // A dialed connection finished its handshake (accepted connections are
    // open from construction and do not get this callback).
    virtual void on_conn_open(FrameConn& c) { (void)c; }
    virtual void on_message(FrameConn& c, net::Message m) = 0;
    // Peer closed, wire error, or malformed frame. Fired at most once,
    // always from a posted reactor callback (never re-entrantly from
    // send()); the connection is already detached from the reactor.
    virtual void on_conn_closed(FrameConn& c) = 0;
  };

  // Adopts an accepted, connected socket (made non-blocking here).
  FrameConn(Reactor& reactor, net::FrameSocket sock, Delegate* delegate);
  ~FrameConn() override;

  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  // Asynchronous connect to 127.0.0.1-style hosts; on_conn_open (or
  // on_conn_closed) fires from the reactor once the handshake resolves.
  static std::unique_ptr<FrameConn> dial(Reactor& reactor,
                                         const std::string& host,
                                         std::uint16_t port,
                                         Delegate* delegate);

  // Queues one message; unsent bytes drain on writability. Dropped
  // silently if the connection is already closed (the delegate saw or
  // will see on_conn_closed).
  void send(const net::Message& m);

  bool is_open() const { return sock_.valid(); }
  bool dialed() const { return dialed_; }
  std::size_t backlog_bytes() const { return sock_.pending_bytes(); }

  // Owner-assigned identity of the remote peer (kNoPeer until known).
  net::PeerId peer = net::kNoPeer;

  void on_readable() override;
  void on_writable() override;
  void on_error() override;

 private:
  void fail();
  // Extracts complete frames from inbox_; returns false if the connection
  // died while parsing (delegate closed it or a frame was malformed).
  bool parse_frames();

  Reactor& reactor_;
  net::FrameSocket sock_;
  Delegate* delegate_;
  bool dialed_ = false;
  bool connecting_ = false;
  bool closed_notified_ = false;
  util::Bytes inbox_;
  std::size_t inbox_off_ = 0;
};

}  // namespace tc::rt
