#include "src/rt/swarm.h"

#include <functional>
#include <memory>
#include <utility>

#include "src/rt/peer_node.h"
#include "src/rt/reactor.h"
#include "src/rt/swarm_context.h"
#include "src/rt/tracker_service.h"

namespace tc::rt {

SwarmResult run_local_swarm(const SwarmOptions& opts) {
  // Destruction order matters: nodes and the tracker unregister their fds
  // and timers in their destructors, so the reactor must outlive them.
  Reactor reactor;

  obs::TraceConfig tcfg;
  tcfg.enabled = true;
  tcfg.ring_capacity = opts.ring_capacity;
  tcfg.kind_mask = obs::kAllKinds;
  obs::Trace trace(tcfg);

  check::CheckerOptions copts;
  copts.pending_cap = opts.pending_cap;
  check::Checker checker(copts);
  if (opts.online_check) trace.set_sink(&checker);

  SwarmContext ctx(reactor, &trace,
                   SwarmFileMeta::make(opts.piece_count, opts.piece_bytes,
                                       opts.seed),
                   "rt-local-swarm");

  TrackerService::Options topts;
  topts.prune_window = opts.tracker_prune_window;
  topts.seed = opts.seed ^ 0x9e3779b97f4a7c15ull;
  TrackerService tracker(reactor, topts);

  const std::size_t leechers = opts.peers > 0 ? opts.peers - 1 : 0;
  std::size_t completed = 0;
  bool draining = false;

  std::vector<std::unique_ptr<PeerNode>> nodes;
  nodes.reserve(opts.peers);

  // When every leecher holds the file, poll until all donor transactions
  // settle (key releases in flight) before stopping, so the checker sees
  // closed escrows instead of end-of-run warnings.
  static constexpr double kDrainPoll = 0.05;
  static constexpr double kDrainGrace = 2.0;
  std::function<void(double)> drain = [&](double waited) {
    std::size_t open = 0;
    for (const auto& n : nodes) open += n->open_donor_txs();
    if (open == 0 || waited >= kDrainGrace) {
      reactor.stop();
      return;
    }
    reactor.schedule(kDrainPoll, [&drain, waited] {
      drain(waited + kDrainPoll);
    });
  };

  for (std::size_t i = 0; i < opts.peers; ++i) {
    PeerNode::Options popts;
    popts.id = static_cast<net::PeerId>(i + 1);
    popts.seeder = (i == 0);
    popts.tracker_port = tracker.port();
    popts.announce_interval = opts.announce_interval;
    popts.tick_interval = opts.tick_interval;
    popts.watchdog_seconds = opts.watchdog_seconds;
    popts.max_retries = opts.max_retries;
    popts.pending_cap = opts.pending_cap;
    popts.seeder_slots = opts.seeder_slots;
    popts.seed = opts.seed * 1000003ull + popts.id;
    popts.on_complete = [&](net::PeerId) {
      ++completed;
      if (completed >= leechers && !draining) {
        draining = true;
        drain(0.0);
      }
    };
    nodes.push_back(std::make_unique<PeerNode>(ctx, popts));
  }
  for (auto& n : nodes) n->start();

  reactor.schedule(opts.deadline_seconds, [&reactor] { reactor.stop(); });
  if (leechers == 0) reactor.post([&reactor] { reactor.stop(); });

  reactor.run();

  SwarmResult res;
  res.wall_seconds = reactor.now();
  res.all_complete = true;
  for (const auto& n : nodes) {
    PeerStat s;
    s.id = n->id();
    s.seeder = n->seeder();
    s.complete = n->complete();
    s.finish_seconds = n->finish_time();
    if (!s.complete) res.all_complete = false;
    res.peers.push_back(s);
  }

  trace.set_sink(nullptr);
  res.events = trace.events();
  res.events_recorded = trace.ring().recorded();
  res.events_dropped = trace.ring().dropped();
  res.metrics = trace.snapshot();
  if (opts.online_check) {
    res.check = checker.finish();
  } else {
    res.check = check::check_events(res.events, res.events_dropped, copts);
  }
  return res;
}

}  // namespace tc::rt
