#include "src/rt/frame_conn.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace tc::rt {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

FrameConn::FrameConn(Reactor& reactor, net::FrameSocket sock,
                     Delegate* delegate)
    : reactor_(reactor), sock_(std::move(sock)), delegate_(delegate) {
  sock_.set_nonblocking(true);
  reactor_.add(sock_.fd(), this);
}

FrameConn::~FrameConn() {
  if (sock_.valid()) {
    reactor_.remove(sock_.fd());
    sock_.close();
  }
}

std::unique_ptr<FrameConn> FrameConn::dial(Reactor& reactor,
                                           const std::string& host,
                                           std::uint16_t port,
                                           Delegate* delegate) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("dial: socket: ") +
                             std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("dial: bad address: " + host);
  }

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("dial: connect: ") +
                             std::strerror(err));
  }

  auto conn = std::make_unique<FrameConn>(reactor, net::FrameSocket(fd),
                                          delegate);
  conn->dialed_ = true;
  // Even when connect() succeeded synchronously (possible on loopback),
  // resolve through the initial EPOLLOUT edge so on_conn_open is always
  // delivered from the reactor, never from inside dial().
  conn->connecting_ = true;
  return conn;
}

void FrameConn::send(const net::Message& m) {
  if (closed_notified_ || !sock_.valid()) return;
  try {
    // While still connecting, the kernel reports EAGAIN and the bytes stay
    // in the outbox; the post-connect EPOLLOUT edge flushes them.
    sock_.send_frame(net::encode_message(m));
  } catch (const std::exception&) {
    fail();
  }
}

void FrameConn::on_writable() {
  if (closed_notified_ || !sock_.valid()) return;
  if (connecting_) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock_.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      fail();
      return;
    }
    connecting_ = false;
    int one = 1;
    ::setsockopt(sock_.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    delegate_->on_conn_open(*this);
    if (closed_notified_ || !sock_.valid()) return;
  }
  try {
    sock_.flush_pending();
  } catch (const std::exception&) {
    fail();
  }
}

void FrameConn::on_readable() {
  if (closed_notified_ || !sock_.valid()) return;
  bool eof = false;
  // Edge-triggered: drain until EAGAIN or EOF.
  for (;;) {
    const std::size_t old = inbox_.size();
    inbox_.resize(old + kReadChunk);
    const ssize_t n = ::read(sock_.fd(), inbox_.data() + old, kReadChunk);
    if (n > 0) {
      inbox_.resize(old + static_cast<std::size_t>(n));
      continue;
    }
    inbox_.resize(old);
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    fail();
    return;
  }
  if (!parse_frames()) return;
  if (eof) fail();
}

void FrameConn::on_error() {
  if (closed_notified_) return;
  fail();
}

bool FrameConn::parse_frames() {
  for (;;) {
    const std::size_t avail = inbox_.size() - inbox_off_;
    if (avail < 4) break;
    const std::uint8_t* p = inbox_.data() + inbox_off_;
    const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                              (static_cast<std::uint32_t>(p[1]) << 16) |
                              (static_cast<std::uint32_t>(p[2]) << 8) |
                              static_cast<std::uint32_t>(p[3]);
    if (len > net::kMaxFrame) {
      fail();
      return false;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) break;
    util::Bytes payload(p + 4, p + 4 + len);
    inbox_off_ += 4 + static_cast<std::size_t>(len);
    net::Message m;
    try {
      m = net::decode_message(payload);
    } catch (const std::exception&) {
      fail();
      return false;
    }
    delegate_->on_message(*this, std::move(m));
    if (closed_notified_ || !sock_.valid()) return false;
  }
  // Compact the consumed prefix once it dominates the buffer.
  if (inbox_off_ > kReadChunk && inbox_off_ * 2 >= inbox_.size()) {
    inbox_.erase(inbox_.begin(),
                 inbox_.begin() + static_cast<std::ptrdiff_t>(inbox_off_));
    inbox_off_ = 0;
  }
  return true;
}

void FrameConn::fail() {
  if (closed_notified_) return;
  closed_notified_ = true;
  if (sock_.valid()) {
    reactor_.remove(sock_.fd());
    sock_.close();
  }
  // Deferred: fail() can fire from inside send() while the delegate is
  // mid-handler; notifying synchronously would let the delegate mutate
  // state (e.g. erase a neighbor) under its caller's feet.
  reactor_.post([this] { delegate_->on_conn_closed(*this); });
}

}  // namespace tc::rt
