// Tracker hosted on the reactor: accepts peer connections, answers
// announce/renew with a randomized neighbor list (peer id + listening
// port), and prunes members that miss their re-announce window so crashed
// peers drop out of circulation (satellite of the live-runtime PR; the
// membership logic itself lives in net::Tracker).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/net/tcp.h"
#include "src/net/tracker.h"
#include "src/rt/frame_conn.h"
#include "src/rt/reactor.h"
#include "src/util/rng.h"

namespace tc::rt {

class TrackerService : public Reactor::Handler, public FrameConn::Delegate {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0 = ephemeral
    // A peer missing re-announces for this long is pruned (its announce
    // interval is much shorter, so only dead peers age out).
    double prune_window = 2.0;
    std::size_t list_size = 64;
    std::uint64_t seed = 1;
  };

  TrackerService(Reactor& reactor, const Options& opts);
  ~TrackerService() override;

  TrackerService(const TrackerService&) = delete;
  TrackerService& operator=(const TrackerService&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::size_t swarm_size() const { return tracker_.size(); }
  std::size_t pruned_total() const { return pruned_; }

  // Reactor::Handler (listening socket).
  void on_readable() override;

  // FrameConn::Delegate.
  void on_message(FrameConn& c, net::Message m) override;
  void on_conn_closed(FrameConn& c) override;

 private:
  void arm_prune_timer();

  Reactor& reactor_;
  Options opts_;
  net::Listener listener_;
  net::Tracker tracker_;
  // Listening ports by peer id, kept in lockstep with tracker_ membership.
  std::map<net::PeerId, std::uint16_t> ports_;
  std::map<FrameConn*, std::unique_ptr<FrameConn>> conns_;
  util::Rng rng_;
  Reactor::TimerId prune_timer_ = 0;
  std::size_t pruned_ = 0;
};

}  // namespace tc::rt
