// Shared single-process state for a localhost swarm: the torrent metadata
// (deterministic piece data + hashes), the piece cipher, the chain
// registry, a global transaction-id allocator, and the trace every
// PeerNode emits into. In a real multi-host deployment each of these has a
// distributed equivalent (a .torrent file, per-peer tx namespaces, per-peer
// traces merged offline); keeping them shared here gives src/check a
// single totally-ordered event stream to verify online.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/chain_registry.h"
#include "src/crypto/cipher.h"
#include "src/crypto/sha256.h"
#include "src/net/message.h"
#include "src/obs/trace.h"
#include "src/rt/reactor.h"
#include "src/util/bytes.h"

namespace tc::rt {

// The "file" being swarmed: deterministic pseudo-random pieces plus their
// SHA-256 hashes (the .torrent piece table).
struct SwarmFileMeta {
  std::uint32_t piece_count = 0;
  std::uint32_t piece_bytes = 0;
  std::vector<util::Bytes> pieces;
  std::vector<crypto::Digest256> hashes;

  static SwarmFileMeta make(std::uint32_t piece_count,
                            std::uint32_t piece_bytes, std::uint64_t seed);
};

class SwarmContext {
 public:
  SwarmContext(Reactor& reactor, obs::Trace* trace, SwarmFileMeta meta,
               std::string swarm_name);

  Reactor& reactor;
  obs::Trace* trace;  // may be null (untraced run)
  SwarmFileMeta meta;
  std::string swarm_name;
  std::unique_ptr<crypto::SymmetricCipher> cipher;
  core::ChainRegistry chains;

  net::TxId alloc_tx() { return next_tx_++; }

  // Stamps e.t with reactor.now() and forwards to the trace (if any).
  void emit(obs::TraceEvent e);

  // Chain registry + trace in lockstep.
  std::uint64_t start_chain(net::PeerId initiator, bool by_seeder);
  void extend_chain(std::uint64_t chain, net::TxId tx);
  // Idempotent: a chain already terminated (both ends of a transaction may
  // observe the terminal condition) emits nothing the second time.
  void break_chain(std::uint64_t chain, obs::ChainBreakCause cause);

 private:
  net::TxId next_tx_ = 1;
};

}  // namespace tc::rt
