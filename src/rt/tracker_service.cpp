#include "src/rt/tracker_service.h"

#include <algorithm>
#include <utility>
#include <variant>
#include <vector>

namespace tc::rt {

TrackerService::TrackerService(Reactor& reactor, const Options& opts)
    : reactor_(reactor),
      opts_(opts),
      listener_(opts.port, /*nonblocking=*/true),
      tracker_(opts.list_size),
      rng_(opts.seed) {
  reactor_.add(listener_.fd(), this);
  arm_prune_timer();
}

TrackerService::~TrackerService() {
  reactor_.cancel(prune_timer_);
  reactor_.remove(listener_.fd());
}

void TrackerService::arm_prune_timer() {
  prune_timer_ = reactor_.schedule(opts_.prune_window / 2, [this] {
    const auto stale = tracker_.prune(reactor_.now(), opts_.prune_window);
    for (const net::PeerId p : stale) ports_.erase(p);
    pruned_ += stale.size();
    arm_prune_timer();
  });
}

void TrackerService::on_readable() {
  while (auto sock = listener_.try_accept()) {
    auto conn = std::make_unique<FrameConn>(reactor_, std::move(*sock), this);
    FrameConn* raw = conn.get();
    conns_[raw] = std::move(conn);
  }
}

void TrackerService::on_message(FrameConn& c, net::Message m) {
  const auto* ann = std::get_if<net::AnnounceMsg>(&m);
  if (ann == nullptr) return;  // tracker speaks announce/peer-list only
  if (ann->event == net::kAnnounceDepart) {
    tracker_.depart(ann->peer);
    ports_.erase(ann->peer);
    return;
  }
  tracker_.announce(ann->peer, reactor_.now());
  ports_[ann->peer] = ann->port;
  c.peer = ann->peer;

  auto ids = tracker_.neighbor_list(
      ann->peer, rng_, std::max(opts_.list_size, tracker_.size()));
  std::sort(ids.begin(), ids.end());
  net::PeerListMsg reply;
  reply.peers.reserve(ids.size());
  for (const net::PeerId id : ids) {
    const auto it = ports_.find(id);
    if (it == ports_.end()) continue;  // announced via legacy path, no port
    reply.peers.push_back(net::PeerEndpoint{id, it->second});
  }
  c.send(net::Message{std::move(reply)});
}

void TrackerService::on_conn_closed(FrameConn& c) {
  // A vanished connection is not a depart: the peer ages out via prune if
  // it never reconnects, and re-announce is idempotent if it does.
  reactor_.post([this, conn = &c] { conns_.erase(conn); });
}

}  // namespace tc::rt
