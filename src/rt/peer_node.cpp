#include "src/rt/peer_node.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <variant>

#include "src/core/transaction.h"
#include "src/crypto/sha256.h"

namespace tc::rt {

using obs::EventKind;

PeerNode::PeerNode(SwarmContext& ctx, const Options& opts)
    : ctx_(ctx),
      reactor_(ctx.reactor),
      opts_(opts),
      listener_(0, /*nonblocking=*/true),
      have_(ctx.meta.piece_count),
      store_(ctx.meta.piece_count),
      pending_(opts.pending_cap),
      rng_(opts.seed),
      keys_(opts.seed ^ 0x517cc1b727220a95ull) {
  if (opts_.seeder) {
    store_ = ctx_.meta.pieces;
    for (std::uint32_t p = 0; p < ctx_.meta.piece_count; ++p) have_.set(p);
  }
}

PeerNode::~PeerNode() {
  reactor_.cancel(announce_timer_);
  reactor_.cancel(tick_timer_);
  for (auto& [tx, d] : donor_) {
    (void)tx;
    reactor_.cancel(d.watchdog);
  }
  reactor_.remove(listener_.fd());
}

void PeerNode::start() {
  ctx_.emit({.kind = EventKind::kPeerJoin,
             .aux = opts_.seeder ? std::uint8_t{obs::kPeerFlagSeeder}
                                 : std::uint8_t{0},
             .a = opts_.id});
  reactor_.add(listener_.fd(), this);
  announce_tick();
  tick();
}

std::size_t PeerNode::open_donor_txs() const {
  std::size_t n = 0;
  for (const auto& [tx, d] : donor_) {
    (void)tx;
    if (!d.closed) ++n;
  }
  return n;
}

void PeerNode::count(const char* name) {
  if (ctx_.trace != nullptr) ctx_.trace->registry().counter(name).inc();
}

// --- Connection plumbing --------------------------------------------------

void PeerNode::on_readable() {
  while (auto sock = listener_.try_accept()) {
    auto conn = std::make_unique<FrameConn>(reactor_, std::move(*sock), this);
    FrameConn* raw = conn.get();
    conns_[raw] = std::move(conn);
    count("rt.conns_accepted");
  }
}

void PeerNode::dial_tracker() {
  auto conn =
      FrameConn::dial(reactor_, "127.0.0.1", opts_.tracker_port, this);
  tracker_ = conn.get();
  conns_[tracker_] = std::move(conn);
}

void PeerNode::maybe_dial(net::PeerId peer, std::uint16_t port) {
  // Dial discipline: the higher id dials, so each pair keeps exactly one
  // connection (no simultaneous-open dedup needed).
  if (peer >= opts_.id) return;
  if (neighbors_.count(peer) != 0 || dialing_.count(peer) != 0) return;
  auto conn = FrameConn::dial(reactor_, "127.0.0.1", port, this);
  conn->peer = peer;
  conns_[conn.get()] = std::move(conn);
  dialing_.insert(peer);
  count("rt.dials");
}

void PeerNode::on_conn_open(FrameConn& c) {
  if (&c == tracker_) return;  // announce already queued
  c.send(net::Message{net::HandshakeMsg{opts_.id, ctx_.swarm_name}});
  c.send(net::Message{have_.to_message()});
}

void PeerNode::on_conn_closed(FrameConn& c) {
  if (&c == tracker_) tracker_ = nullptr;
  if (c.peer != net::kNoPeer) {
    dialing_.erase(c.peer);
    const auto it = neighbors_.find(c.peer);
    if (it != neighbors_.end() && it->second.conn == &c) neighbors_.erase(it);
  }
  reactor_.post([this, conn = &c] { conns_.erase(conn); });
}

PeerNode::Neighbor* PeerNode::ready_neighbor(net::PeerId peer) {
  const auto it = neighbors_.find(peer);
  if (it == neighbors_.end() || !it->second.ready) return nullptr;
  if (it->second.conn == nullptr || !it->second.conn->is_open()) return nullptr;
  return &it->second;
}

const PeerNode::Neighbor* PeerNode::ready_neighbor(net::PeerId peer) const {
  return const_cast<PeerNode*>(this)->ready_neighbor(peer);
}

// --- Timers ---------------------------------------------------------------

void PeerNode::announce_tick() {
  if (tracker_ == nullptr) dial_tracker();
  tracker_->send(net::Message{net::AnnounceMsg{
      opts_.id, ctx_.swarm_name, listener_.port(), net::kAnnounceRenew}});
  announce_timer_ =
      reactor_.schedule(opts_.announce_interval, [this] { announce_tick(); });
}

void PeerNode::tick() {
  for (auto& [tx, b] : banked_) {
    if (!b.reciprocated) try_reciprocate(tx, b);
  }
  maybe_start_chains();
  for (const auto& [peer, port] : endpoints_) maybe_dial(peer, port);
  tick_timer_ = reactor_.schedule(opts_.tick_interval, [this] { tick(); });
}

void PeerNode::arm_watchdog(DonorTx& d, net::TxId tx) {
  d.watchdog = reactor_.schedule(opts_.watchdog_seconds,
                                 [this, tx] { on_watchdog(tx); });
}

void PeerNode::on_watchdog(net::TxId tx) {
  const auto it = donor_.find(tx);
  if (it == donor_.end() || it->second.closed) return;
  DonorTx& d = it->second;

  if (d.retries >= opts_.max_retries) {
    // Final timeout: break the chain, then settle the key gratis if the
    // requestor is still reachable — a banked buffer whose donor key never
    // arrives would stay encrypted forever, wedging the swarm.
    ctx_.emit({.kind = EventKind::kTxTimeout,
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
    settle_gratis(tx, d, obs::ChainBreakCause::kWatchdog);
    return;
  }

  ++d.retries;
  count("rt.tx_retries");
  ctx_.emit({.kind = EventKind::kTxRetry,
             .piece = d.piece,
             .a = opts_.id,
             .b = d.requestor,
             .ref = tx,
             .chain = d.chain});

  // §II-B4: re-run payee selection; the designated payee may have finished
  // or hit the pending cap.
  const core::PayeeQuery q = payee_query(d.requestor, d.piece);
  const net::PeerId np = core::select_payee(q, rng_);
  if (np == net::kNoPeer) {
    settle_gratis(tx, d, obs::ChainBreakCause::kNoPayee);
    return;
  }
  if (np != d.session->payee()) {
    d.session->reassign_payee(np);
    if (np == opts_.id) {
      duties_.push_back({tx, d.chain, opts_.id, d.requestor, d.piece});
    } else if (Neighbor* pn = ready_neighbor(np)) {
      pn->conn->send(net::Message{
          net::PayeeNotifyMsg{tx, d.chain, opts_.id, d.requestor, d.piece}});
    }
    if (Neighbor* rn = ready_neighbor(d.requestor)) {
      rn->conn->send(net::Message{net::PayeeReassignMsg{tx, np}});
    }
  }
  arm_watchdog(d, tx);
}

// --- Message dispatch -----------------------------------------------------

void PeerNode::on_message(FrameConn& c, net::Message m) {
  if (const auto* v = std::get_if<net::HandshakeMsg>(&m)) {
    handle_handshake(c, *v);
  } else if (const auto* v2 = std::get_if<net::PeerListMsg>(&m)) {
    handle_peer_list(*v2);
  } else if (c.peer == net::kNoPeer) {
    // Everything else requires an identified neighbor.
  } else if (const auto* v3 = std::get_if<net::BitfieldMsg>(&m)) {
    handle_bitfield(c, *v3);
  } else if (const auto* v4 = std::get_if<net::HaveMsg>(&m)) {
    handle_have(c, *v4);
  } else if (const auto* v5 = std::get_if<net::EncryptedPieceMsg>(&m)) {
    handle_encrypted(*v5);
  } else if (const auto* v6 = std::get_if<net::PlainPieceMsg>(&m)) {
    handle_plain(*v6);
  } else if (const auto* v7 = std::get_if<net::ReceiptMsg>(&m)) {
    handle_receipt(*v7);
  } else if (const auto* v8 = std::get_if<net::KeyReleaseMsg>(&m)) {
    handle_key_release(*v8);
  } else if (const auto* v9 = std::get_if<net::PayeeNotifyMsg>(&m)) {
    handle_payee_notify(*v9);
  } else if (const auto* v10 = std::get_if<net::PayeeReassignMsg>(&m)) {
    handle_payee_reassign(*v10);
  }
}

void PeerNode::handle_handshake(FrameConn& c, const net::HandshakeMsg& m) {
  if (m.peer == net::kNoPeer || m.swarm != ctx_.swarm_name) return;
  c.peer = m.peer;
  dialing_.erase(m.peer);
  Neighbor& n = neighbors_[m.peer];
  n.conn = &c;
  n.ready = true;
  if (n.have.size() == 0) {
    n.have = bt::Bitfield(ctx_.meta.piece_count);
    n.claimed = bt::Bitfield(ctx_.meta.piece_count);
  }
  if (!c.dialed()) {
    c.send(net::Message{net::HandshakeMsg{opts_.id, ctx_.swarm_name}});
    c.send(net::Message{have_.to_message()});
  }
}

void PeerNode::handle_bitfield(FrameConn& c, const net::BitfieldMsg& m) {
  const auto it = neighbors_.find(c.peer);
  if (it == neighbors_.end() || m.piece_count != ctx_.meta.piece_count) return;
  it->second.have = bt::Bitfield::from_message(m);
  for (const net::PieceIndex p : it->second.have.to_vector()) {
    it->second.claimed.set(p);
  }
}

void PeerNode::handle_have(FrameConn& c, const net::HaveMsg& m) {
  const auto it = neighbors_.find(c.peer);
  if (it == neighbors_.end() || m.piece >= ctx_.meta.piece_count) return;
  it->second.have.set(m.piece);
  it->second.claimed.set(m.piece);
}

void PeerNode::handle_peer_list(const net::PeerListMsg& m) {
  for (const net::PeerEndpoint& ep : m.peers) {
    if (ep.peer == opts_.id || ep.peer == net::kNoPeer) continue;
    endpoints_[ep.peer] = ep.port;
    maybe_dial(ep.peer, ep.port);
  }
}

// --- Requestor side -------------------------------------------------------

void PeerNode::handle_encrypted(const net::EncryptedPieceMsg& m) {
  if (m.piece >= ctx_.meta.piece_count) return;
  ctx_.emit({.kind = EventKind::kPieceDelivered,
             .piece = m.piece,
             .a = m.donor,
             .b = opts_.id,
             .ref = m.tx,
             .chain = m.chain});
  // This upload may simultaneously be the reciprocation paying for an
  // earlier transaction we are payee of.
  if (m.prev_donor != net::kNoPeer) {
    match_duty_or_stash(m.donor, m.piece, m.prev_donor, m.prev_piece);
  }
  if (banked_.count(m.tx) != 0) return;
  BankedTx b;
  b.chain = m.chain;
  b.donor = m.donor;
  b.payee = m.payee;
  b.piece = m.piece;
  b.buffer = m.ciphertext;
  auto [it, inserted] = banked_.emplace(m.tx, std::move(b));
  if (inserted) try_reciprocate(m.tx, it->second);
}

void PeerNode::handle_plain(const net::PlainPieceMsg& m) {
  if (m.piece >= ctx_.meta.piece_count) return;
  ctx_.emit({.kind = EventKind::kPieceDelivered,
             .piece = m.piece,
             .a = m.donor,
             .b = opts_.id,
             .ref = m.tx,
             .chain = m.chain});
  if (m.prev_donor != net::kNoPeer) {
    match_duty_or_stash(m.donor, m.piece, m.prev_donor, m.prev_piece);
  }
  if (crypto::sha256(m.data) == ctx_.meta.hashes[m.piece]) {
    grant_piece(m.piece, m.data, m.donor);
  }
  // Terminal transactions are closed by the receiver, after the delivery
  // event: closing at send would retire the open upload before the checker
  // matched the delivery that pays for the previous transaction.
  ctx_.break_chain(m.chain, obs::ChainBreakCause::kCompleted);
  ctx_.emit({.kind = EventKind::kTxClose,
             .aux = static_cast<std::uint8_t>(core::TxState::kTerminal),
             .piece = m.piece,
             .a = m.donor,
             .b = opts_.id,
             .ref = m.tx,
             .chain = m.chain});
}

void PeerNode::handle_key_release(const net::KeyReleaseMsg& m) {
  const auto it = banked_.find(m.tx);
  if (it == banked_.end() || it->second.done) return;
  BankedTx& b = it->second;
  for (const util::Bytes& k : b.applied_keys) {
    if (k == m.key) return;
  }
  crypto::SymmetricKey key;
  try {
    key = crypto::SymmetricKey::deserialize(m.key);
  } catch (const std::invalid_argument&) {
    return;
  }
  // XOR keystreams commute: peel this key off regardless of arrival order.
  b.buffer = ctx_.cipher->decrypt(key, b.buffer);
  b.applied_keys.push_back(m.key);

  // Cascade to every forward of this buffer: the forwarded ciphertext was
  // snapshotted before this key arrived, so its holder needs it too.
  for (const net::TxId f : b.forwarded_as) {
    const auto dt = donor_.find(f);
    if (dt == donor_.end()) continue;
    if (Neighbor* n = ready_neighbor(dt->second.requestor)) {
      n->conn->send(net::Message{net::KeyReleaseMsg{f, b.piece, m.key}});
      count("rt.keys_cascaded");
    }
  }

  if (crypto::sha256(b.buffer) == ctx_.meta.hashes[b.piece]) {
    b.done = true;
    grant_piece(b.piece, b.buffer, b.donor);
  }
}

void PeerNode::grant_piece(net::PieceIndex piece, const util::Bytes& data,
                           net::PeerId source) {
  if (have_.get(piece)) return;
  store_[piece] = data;
  have_.set(piece);
  ctx_.emit({.kind = EventKind::kPieceGranted,
             .piece = piece,
             .a = opts_.id,
             .b = source});
  for (auto& [peer, n] : neighbors_) {
    (void)peer;
    if (n.ready && n.conn != nullptr && n.conn->is_open()) {
      n.conn->send(net::Message{net::HaveMsg{piece}});
    }
  }
  if (have_.complete() && finish_t_ < 0) {
    finish_t_ = reactor_.now();
    ctx_.emit({.kind = EventKind::kPeerFinish, .a = opts_.id});
    if (opts_.on_complete) opts_.on_complete(opts_.id);
  }
}

// --- Payee side -----------------------------------------------------------

void PeerNode::handle_payee_notify(const net::PayeeNotifyMsg& m) {
  const PayeeDuty duty{m.tx, m.chain, m.donor, m.requestor, m.piece};
  // The reciprocation may have raced ahead of this notice (it travels on a
  // different TCP connection).
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (it->uploader == duty.requestor && it->prev_donor == duty.donor &&
        it->prev_piece == duty.piece) {
      const StashedRecip s = *it;
      stash_.erase(it);
      send_receipt(duty, s.uploader, s.piece);
      return;
    }
  }
  duties_.push_back(duty);
}

void PeerNode::match_duty_or_stash(net::PeerId uploader, net::PieceIndex piece,
                                   net::PeerId prev_donor,
                                   net::PieceIndex prev_piece) {
  for (auto it = duties_.begin(); it != duties_.end(); ++it) {
    if (it->requestor == uploader && it->donor == prev_donor &&
        it->piece == prev_piece) {
      const PayeeDuty duty = *it;
      duties_.erase(it);
      send_receipt(duty, uploader, piece);
      return;
    }
  }
  stash_.push_back({uploader, prev_donor, prev_piece, piece});
}

void PeerNode::send_receipt(const PayeeDuty& duty, net::PeerId uploader,
                            net::PieceIndex piece_received) {
  net::ReceiptMsg r;
  r.reciprocated_tx = duty.tx;
  r.payee = opts_.id;
  r.requestor = uploader;
  r.piece = piece_received;
  r.mac = net::receipt_mac(core::derive_mac_key(duty.donor, opts_.id),
                           duty.tx, opts_.id, uploader, piece_received);
  count("rt.receipts");
  if (duty.donor == opts_.id) {
    handle_receipt(r);  // direct reciprocity: donor designated itself
    return;
  }
  if (Neighbor* n = ready_neighbor(duty.donor)) {
    n->conn->send(net::Message{r});
  }
  // Donor unreachable: its watchdog reassigns or settles gratis.
}

// --- Donor side -----------------------------------------------------------

void PeerNode::handle_receipt(const net::ReceiptMsg& m) {
  const auto it = donor_.find(m.reciprocated_tx);
  if (it == donor_.end() || it->second.closed) return;
  DonorTx& d = it->second;
  if (!d.session->accept_receipt(m)) return;
  reactor_.cancel(d.watchdog);
  const net::TxId tx = m.reciprocated_tx;
  if (Neighbor* rn = ready_neighbor(d.requestor)) {
    ctx_.emit({.kind = EventKind::kKeyDelivered,
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
    rn->conn->send(net::Message{d.session->key_release()});
    pending_.resolve(d.requestor);
    ctx_.emit({.kind = EventKind::kTxClose,
               .aux = static_cast<std::uint8_t>(core::TxState::kCompleted),
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
  } else {
    ctx_.emit({.kind = EventKind::kKeyLost,
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
    pending_.resolve(d.requestor);
    ctx_.emit({.kind = EventKind::kTxClose,
               .aux = static_cast<std::uint8_t>(core::TxState::kDead),
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
  }
  d.closed = true;
}

void PeerNode::settle_gratis(net::TxId tx, DonorTx& d,
                             obs::ChainBreakCause cause) {
  reactor_.cancel(d.watchdog);
  // Break first: the checker sanctions a gratis key release only once the
  // chain is in teardown.
  ctx_.break_chain(d.chain, cause);
  if (Neighbor* rn = ready_neighbor(d.requestor)) {
    count("rt.tx_gratis");
    ctx_.emit({.kind = EventKind::kKeyDelivered,
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
    rn->conn->send(net::Message{d.session->key_release()});
    // Waive the reciprocation obligation: kNoPeer payee means "settled".
    rn->conn->send(net::Message{net::PayeeReassignMsg{tx, net::kNoPeer}});
    pending_.resolve(d.requestor);
    ctx_.emit({.kind = EventKind::kTxClose,
               .aux = static_cast<std::uint8_t>(core::TxState::kCompleted),
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
  } else {
    count("rt.tx_dead");
    ctx_.emit({.kind = EventKind::kKeyLost,
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
    pending_.resolve(d.requestor);
    ctx_.emit({.kind = EventKind::kTxClose,
               .aux = static_cast<std::uint8_t>(core::TxState::kDead),
               .piece = d.piece,
               .a = opts_.id,
               .b = d.requestor,
               .ref = tx,
               .chain = d.chain});
  }
  d.closed = true;
}

void PeerNode::handle_payee_reassign(const net::PayeeReassignMsg& m) {
  const auto it = banked_.find(m.tx);
  if (it == banked_.end()) return;
  BankedTx& b = it->second;
  if (m.new_payee == net::kNoPeer) {
    b.reciprocated = true;  // gratis settlement: obligation waived
    return;
  }
  b.payee = m.new_payee;
  if (!b.reciprocated) try_reciprocate(m.tx, b);
}

// --- Reciprocation & chain growth ----------------------------------------

void PeerNode::try_reciprocate(net::TxId banked_tx, BankedTx& b) {
  if (b.reciprocated) return;
  if (!ctx_.chains.is_active(b.chain)) {
    // The chain settled (gratis or terminal) while we deliberated.
    b.reciprocated = true;
    return;
  }
  Neighbor* p = ready_neighbor(b.payee);
  if (p == nullptr) return;  // tick retries; the donor's watchdog reassigns

  // Preferred: a completed piece the payee has not claimed.
  const net::PieceIndex give = lrf_unclaimed(p->claimed);
  if (give != net::kNoPiece) {
    if (start_tx(b.payee, give, b.chain, b.donor, b.piece, 0)) {
      b.reciprocated = true;
    }
    return;
  }
  // Newcomer bootstrap (§II-D1): nothing completed to offer — forward this
  // very ciphertext, re-encrypted under a fresh key.
  if (!b.done && !p->claimed.get(b.piece)) {
    if (start_tx(b.payee, b.piece, b.chain, b.donor, b.piece, banked_tx)) {
      b.reciprocated = true;
      count("rt.forwards");
    }
  }
}

core::PayeeQuery PeerNode::payee_query(net::PeerId requestor,
                                       net::PieceIndex piece) const {
  core::PayeeQuery q;
  q.donor = opts_.id;
  q.requestor = requestor;
  q.donor_is_seeder = opts_.seeder || have_.complete();
  const Neighbor* rn = ready_neighbor(requestor);
  q.donor_needs_requestor =
      !q.donor_is_seeder && rn != nullptr && have_.interested_in(rn->have);
  for (const auto& [peer, n] : neighbors_) {
    if (n.ready) q.donor_neighbors.push_back(peer);
  }
  q.payee_ok = [this, requestor, piece](net::PeerId cand) {
    const Neighbor* cn = ready_neighbor(cand);
    if (cn == nullptr) return false;
    if (cn->have.complete()) return false;
    if (!pending_.eligible(cand)) return false;
    // The candidate must need something the requestor can actually serve:
    // the piece in flight (forwardable even while still encrypted), or a
    // piece the requestor holds *decrypted* (its broadcast have set —
    // banked ciphertexts don't count, the requestor can't re-serve them).
    if (!cn->claimed.get(piece)) return true;
    const Neighbor* rn2 = ready_neighbor(requestor);
    return rn2 != nullptr && cn->claimed.interested_in(rn2->have);
  };
  return q;
}

bool PeerNode::start_tx(net::PeerId requestor, net::PieceIndex piece,
                        std::uint64_t chain, net::PeerId prev_donor,
                        net::PieceIndex prev_piece, net::TxId forward_of) {
  Neighbor* rn = ready_neighbor(requestor);
  if (rn == nullptr) return false;
  // Chain heads are selections and must respect the flow-control cap k.
  if (chain == 0 && !pending_.eligible(requestor)) return false;

  const core::PayeeQuery q = payee_query(requestor, piece);
  const net::PeerId payee = core::select_payee(q, rng_);

  if (payee == net::kNoPeer) {
    // Terminal (unencrypted) gift — Fig 1c. Only possible from plaintext,
    // and only toward a neighbor with nothing outstanding.
    if (forward_of != 0) return false;
    if (pending_.pending(requestor) != 0) return false;
    const net::TxId tx = ctx_.alloc_tx();
    std::uint64_t ch = chain;
    if (ch == 0) {
      ch = ctx_.start_chain(opts_.id, q.donor_is_seeder);
      my_chains_.push_back(ch);
    }
    ctx_.emit({.kind = EventKind::kTxOpen,
               .piece = piece,
               .a = opts_.id,
               .b = requestor,
               .c = net::kNoPeer,
               .ref = tx,
               .chain = ch});
    ctx_.extend_chain(ch, tx);
    ctx_.emit({.kind = EventKind::kPieceSent,
               .piece = piece,
               .a = opts_.id,
               .b = requestor,
               .ref = tx,
               .chain = ch});
    rn->conn->send(net::Message{net::PlainPieceMsg{
        tx, ch, opts_.id, piece, prev_donor, prev_piece, store_[piece]}});
    rn->claimed.set(piece);
    count("rt.tx_terminal");
    return true;
  }

  // §II-D1: toward an empty-handed requestor with an indirect payee, pick a
  // piece the payee also lacks, so the requestor can reciprocate by
  // forwarding it.
  net::PieceIndex give = piece;
  if (forward_of == 0 && payee != opts_.id && rn->have.empty()) {
    const auto pn = neighbors_.find(payee);
    if (pn != neighbors_.end()) {
      if (const auto bp = core::select_bootstrap_piece(
              have_, rn->claimed, pn->second.claimed, rng_)) {
        give = *bp;
      }
    }
  }

  const net::TxId tx = ctx_.alloc_tx();
  std::uint64_t ch = chain;
  if (ch == 0) {
    ch = ctx_.start_chain(opts_.id, q.donor_is_seeder);
    my_chains_.push_back(ch);
  }
  ctx_.emit({.kind = EventKind::kTxOpen,
             .piece = give,
             .a = opts_.id,
             .b = requestor,
             .c = payee,
             .ref = tx,
             .chain = ch});
  ctx_.extend_chain(ch, tx);
  pending_.add(requestor);

  const util::Bytes& data =
      forward_of != 0 ? banked_.at(forward_of).buffer : store_[give];
  DonorTx d;
  d.session = std::make_unique<core::DonorSession>(
      tx, ch, opts_.id, requestor, payee, give, prev_donor, prev_piece, data,
      *ctx_.cipher, keys_);
  d.chain = ch;
  d.requestor = requestor;
  d.piece = give;
  d.forward_of = forward_of;

  rn->conn->send(net::Message{d.session->offer()});
  ctx_.emit({.kind = EventKind::kPieceSent,
             .piece = give,
             .a = opts_.id,
             .b = requestor,
             .ref = tx,
             .chain = ch});
  rn->claimed.set(give);
  if (forward_of != 0) banked_.at(forward_of).forwarded_as.push_back(tx);

  if (payee == opts_.id) {
    duties_.push_back({tx, ch, opts_.id, requestor, give});
  } else if (Neighbor* pn = ready_neighbor(payee)) {
    pn->conn->send(net::Message{
        net::PayeeNotifyMsg{tx, ch, opts_.id, requestor, give}});
  }
  arm_watchdog(d, tx);
  donor_.emplace(tx, std::move(d));
  count("rt.tx_opened");
  return true;
}

void PeerNode::maybe_start_chains() {
  const bool seeder_like = opts_.seeder || have_.complete();
  std::size_t budget = 0;
  if (seeder_like) {
    budget = opts_.seeder_slots;
  } else {
    // Opportunistic seeding (§II-D3): at least one completed piece and no
    // unmet reciprocation obligations.
    std::size_t unmet = 0;
    for (const auto& [tx, b] : banked_) {
      (void)tx;
      if (!b.reciprocated) ++unmet;
    }
    if (!core::may_opportunistically_seed(have_.count(), unmet)) return;
    budget = 1;
  }

  std::size_t active = 0;
  for (auto it = my_chains_.begin(); it != my_chains_.end();) {
    if (ctx_.chains.is_active(*it)) {
      ++active;
      ++it;
    } else {
      it = my_chains_.erase(it);
    }
  }

  while (active < budget) {
    std::vector<net::PeerId> cands;
    for (const auto& [peer, n] : neighbors_) {
      if (!n.ready || n.conn == nullptr || !n.conn->is_open()) continue;
      if (!pending_.eligible(peer)) continue;
      if (!n.claimed.interested_in(have_)) continue;  // needs nothing of ours
      cands.push_back(peer);
    }
    if (cands.empty()) return;
    const net::PeerId r = cands[rng_.index(cands.size())];
    const net::PieceIndex p = lrf_unclaimed(neighbors_.at(r).claimed);
    if (p == net::kNoPiece) return;
    if (!start_tx(r, p, 0, net::kNoPeer, net::kNoPiece, 0)) return;
    ++active;
  }
}

net::PieceIndex PeerNode::lrf_unclaimed(const bt::Bitfield& claimed) {
  // Rarest-first with a *random* tie-break: concurrent chains picking the
  // lowest index would all carry the same piece and collide at the payees.
  std::vector<net::PieceIndex> best;
  std::size_t best_rarity = std::numeric_limits<std::size_t>::max();
  for (const net::PieceIndex p : claimed.missing_from(have_)) {
    std::size_t rarity = 0;
    for (const auto& [peer, n] : neighbors_) {
      (void)peer;
      if (n.ready && n.have.get(p)) ++rarity;
    }
    if (rarity < best_rarity) {
      best_rarity = rarity;
      best.clear();
    }
    if (rarity == best_rarity) best.push_back(p);
  }
  if (best.empty()) return net::kNoPiece;
  return best[rng_.index(best.size())];
}

}  // namespace tc::rt
