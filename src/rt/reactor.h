// Single-threaded epoll reactor: the event loop under the live deployment
// runtime (tools/tchain-swarmd). Non-blocking fds register a Handler for
// edge-triggered readiness callbacks; protocol timeouts go through a
// hashed timer wheel; post() defers work to the next loop turn (used to
// destroy connection objects outside their own callbacks).
//
// Unlike the simulation tree, this code deliberately reads the monotonic
// clock — it serves real sockets. now() is relative to reactor
// construction so timestamps in exported traces start near zero, and it is
// the only wall-clock surface of src/rt (scripts/lint_determinism.py
// whitelists the directory for exactly this).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tc::rt {

class Reactor {
 public:
  // Readiness callbacks for one registered fd. Edge-triggered: a handler
  // must drain reads until EAGAIN and flush writes until EAGAIN, or it
  // will not be woken again.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void on_readable() = 0;
    virtual void on_writable() {}
    // EPOLLERR; read/write paths surface most failures themselves.
    virtual void on_error() { on_readable(); }
  };

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Registers `fd` edge-triggered for read+write readiness. The handler
  // must stay valid until remove(fd). Initial readiness is reported.
  void add(int fd, Handler* h);
  // Safe to call from inside a callback (pending events for the fd in the
  // current batch are skipped).
  void remove(int fd);

  using TimerId = std::uint64_t;
  // One-shot timer; returns an id for cancel(). Fires on the wheel tick
  // following the deadline (granularity kTickSeconds).
  TimerId schedule(double delay_seconds, std::function<void()> fn);
  void cancel(TimerId id);

  // Runs `fn` at the start of the next loop turn (before fd dispatch).
  void post(std::function<void()> fn);

  // Monotonic seconds since reactor construction. The timestamp source for
  // every live trace event.
  double now() const;

  // Dispatches until stop(). Re-entrant calls are not supported.
  void run();
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  static constexpr double kTickSeconds = 0.002;

 private:
  struct TimerEntry {
    TimerId id = 0;
    double deadline = 0.0;
    std::function<void()> fn;
  };
  static constexpr std::size_t kWheelSlots = 512;

  void fire_due_timers();
  int poll_timeout_ms() const;

  int epfd_ = -1;
  bool stopped_ = false;
  std::unordered_map<int, Handler*> handlers_;
  std::vector<std::function<void()>> posted_;
  // Hashed timer wheel: slot = tick % kWheelSlots; entries keep their
  // absolute deadline so far-future timers survive cursor passes.
  std::vector<std::vector<TimerEntry>> wheel_;
  std::unordered_set<TimerId> cancelled_;
  std::int64_t processed_tick_ = 0;
  TimerId next_timer_ = 1;
  std::size_t timers_live_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tc::rt
