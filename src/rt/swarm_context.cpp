#include "src/rt/swarm_context.h"

#include <utility>

#include "src/util/rng.h"

namespace tc::rt {

SwarmFileMeta SwarmFileMeta::make(std::uint32_t piece_count,
                                  std::uint32_t piece_bytes,
                                  std::uint64_t seed) {
  SwarmFileMeta m;
  m.piece_count = piece_count;
  m.piece_bytes = piece_bytes;
  m.pieces.reserve(piece_count);
  m.hashes.reserve(piece_count);
  util::Rng rng(seed);
  for (std::uint32_t i = 0; i < piece_count; ++i) {
    util::Bytes piece(piece_bytes);
    for (std::size_t off = 0; off < piece.size(); off += 8) {
      const std::uint64_t word = rng.next_u64();
      for (std::size_t b = 0; b < 8 && off + b < piece.size(); ++b) {
        piece[off + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
    m.hashes.push_back(crypto::sha256(piece));
    m.pieces.push_back(std::move(piece));
  }
  return m;
}

SwarmContext::SwarmContext(Reactor& r, obs::Trace* t, SwarmFileMeta m,
                           std::string name)
    : reactor(r),
      trace(t),
      meta(std::move(m)),
      swarm_name(std::move(name)),
      cipher(crypto::make_cipher(crypto::CipherKind::kChaCha20)) {}

void SwarmContext::emit(obs::TraceEvent e) {
  if (trace == nullptr) return;
  e.t = reactor.now();
  trace->emit(e);
}

std::uint64_t SwarmContext::start_chain(net::PeerId initiator,
                                        bool by_seeder) {
  const std::uint64_t id =
      chains.create(initiator, by_seeder, reactor.now());
  emit({.kind = obs::EventKind::kChainStart,
        .aux = by_seeder ? std::uint8_t{1} : std::uint8_t{0},
        .a = initiator,
        .chain = id});
  return id;
}

void SwarmContext::extend_chain(std::uint64_t chain, net::TxId tx) {
  chains.extend(chain);
  emit({.kind = obs::EventKind::kChainExtend, .ref = tx, .chain = chain});
}

void SwarmContext::break_chain(std::uint64_t chain,
                               obs::ChainBreakCause cause) {
  if (!chains.is_active(chain)) return;
  emit({.kind = obs::EventKind::kChainBreak,
        .aux = static_cast<std::uint8_t>(cause),
        .chain = chain});
  chains.terminate(chain, reactor.now());
}

}  // namespace tc::rt
