// A live T-Chain peer: one actor on the reactor running the real protocol
// over real sockets. It listens for neighbors, announces to the tracker,
// and drives the full fair-exchange machinery byte-for-byte through
// src/core and src/crypto — encrypted offers (DonorSession / ChaCha20),
// HMAC receipts, key releases, payee designation and §II-B4 reassignment,
// k-pending flow control, newcomer bootstrap forwarding (§II-D1), and
// opportunistic seeding (§II-D3).
//
// Trace discipline (what src/check verifies): every node emits into the
// shared SwarmContext trace with the same event grammar as the simulator —
// kChainStart before the head's kTxOpen, kTxOpen before its kChainExtend,
// kPieceSent at the donor and kPieceDelivered at the receiver, receipts
// only after the delivery event, kChainBreak before any gratis
// kKeyDelivered, and terminal transactions closed by the *receiver* after
// delivery (closing at send would retire the open upload before the
// checker can match the delivery that pays for the previous transaction).
//
// Key cascade: a banked ciphertext may be re-encrypted and forwarded to
// the payee as a newcomer's reciprocation. ChaCha20 is an XOR keystream,
// so layered keys commute: the banked buffer is progressively decrypted by
// whichever keys arrive, in any order, and completion is detected by the
// piece hash matching. A forward snapshots the current buffer, so only
// keys arriving afterwards need to cascade downstream.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/bt/bitfield.h"
#include "src/core/exchange.h"
#include "src/core/pending.h"
#include "src/core/policy.h"
#include "src/crypto/cipher.h"
#include "src/net/message.h"
#include "src/net/tcp.h"
#include "src/rt/frame_conn.h"
#include "src/rt/reactor.h"
#include "src/rt/swarm_context.h"
#include "src/util/rng.h"

namespace tc::rt {

class PeerNode : public Reactor::Handler, public FrameConn::Delegate {
 public:
  struct Options {
    net::PeerId id = net::kNoPeer;
    bool seeder = false;
    std::uint16_t tracker_port = 0;
    double announce_interval = 0.1;
    double tick_interval = 0.02;
    // Donor-side per-transaction watchdog: receipt not in by then triggers
    // payee reassignment (§II-B4); after max_retries the key settles
    // gratis (if the requestor is still reachable) so banked ciphertexts
    // never wedge a localhost swarm.
    double watchdog_seconds = 0.2;
    int max_retries = 2;
    int pending_cap = 2;       // flow-control k (§II-D2)
    std::size_t seeder_slots = 8;  // concurrent chains a (quasi-)seeder runs
    std::uint64_t seed = 1;
    std::function<void(net::PeerId)> on_complete;  // fires once at 100%
  };

  PeerNode(SwarmContext& ctx, const Options& opts);
  ~PeerNode() override;

  PeerNode(const PeerNode&) = delete;
  PeerNode& operator=(const PeerNode&) = delete;

  // Joins the swarm: emits kPeerJoin, dials the tracker, arms timers.
  void start();

  net::PeerId id() const { return opts_.id; }
  bool seeder() const { return opts_.seeder; }
  std::uint16_t port() const { return listener_.port(); }
  bool complete() const { return have_.complete(); }
  double finish_time() const { return finish_t_; }  // -1 until complete
  std::size_t pieces_have() const { return have_.count(); }
  // Donor transactions still awaiting settlement (drain gauge for clean
  // shutdown).
  std::size_t open_donor_txs() const;

  // Reactor::Handler — the listening socket.
  void on_readable() override;

  // FrameConn::Delegate.
  void on_conn_open(FrameConn& c) override;
  void on_message(FrameConn& c, net::Message m) override;
  void on_conn_closed(FrameConn& c) override;

 private:
  struct Neighbor {
    FrameConn* conn = nullptr;
    bt::Bitfield have;
    bt::Bitfield claimed;  // have ∪ pieces we already sent them
    bool ready = false;    // handshake completed
  };
  // Donor side of one transaction we opened.
  struct DonorTx {
    std::unique_ptr<core::DonorSession> session;
    std::uint64_t chain = 0;
    net::PeerId requestor = net::kNoPeer;
    net::PieceIndex piece = net::kNoPiece;
    net::TxId forward_of = 0;  // banked tx this forwards (§II-D1); 0 = normal
    int retries = 0;
    Reactor::TimerId watchdog = 0;
    bool closed = false;
  };
  // Requestor side: a banked ciphertext awaiting keys.
  struct BankedTx {
    std::uint64_t chain = 0;
    net::PeerId donor = net::kNoPeer;
    net::PeerId payee = net::kNoPeer;
    net::PieceIndex piece = net::kNoPiece;
    util::Bytes buffer;  // progressively decrypted (XOR keystream commutes)
    std::vector<util::Bytes> applied_keys;
    std::vector<net::TxId> forwarded_as;  // our donor txs forwarding this
    bool done = false;          // hash matched — every key arrived
    bool reciprocated = false;  // obligation discharged (or waived)
  };
  // Payee side: a donor told us to expect a reciprocation (PayeeNotify).
  struct PayeeDuty {
    net::TxId tx = 0;
    std::uint64_t chain = 0;
    net::PeerId donor = net::kNoPeer;
    net::PeerId requestor = net::kNoPeer;
    net::PieceIndex piece = net::kNoPiece;
  };
  // A reciprocation that arrived before its PayeeNotify (different TCP
  // connections give no cross-pair ordering).
  struct StashedRecip {
    net::PeerId uploader = net::kNoPeer;
    net::PeerId prev_donor = net::kNoPeer;
    net::PieceIndex prev_piece = net::kNoPiece;
    net::PieceIndex piece = net::kNoPiece;
  };

  // Timers.
  void announce_tick();
  void tick();
  void on_watchdog(net::TxId tx);
  void arm_watchdog(DonorTx& d, net::TxId tx);

  // Wire handlers.
  void handle_handshake(FrameConn& c, const net::HandshakeMsg& m);
  void handle_bitfield(FrameConn& c, const net::BitfieldMsg& m);
  void handle_have(FrameConn& c, const net::HaveMsg& m);
  void handle_peer_list(const net::PeerListMsg& m);
  void handle_encrypted(const net::EncryptedPieceMsg& m);
  void handle_plain(const net::PlainPieceMsg& m);
  void handle_receipt(const net::ReceiptMsg& m);
  void handle_key_release(const net::KeyReleaseMsg& m);
  void handle_payee_notify(const net::PayeeNotifyMsg& m);
  void handle_payee_reassign(const net::PayeeReassignMsg& m);

  // Protocol engine.
  void dial_tracker();
  void maybe_dial(net::PeerId peer, std::uint16_t port);
  void match_duty_or_stash(net::PeerId uploader, net::PieceIndex piece,
                           net::PeerId prev_donor, net::PieceIndex prev_piece);
  void send_receipt(const PayeeDuty& duty, net::PeerId uploader,
                    net::PieceIndex piece_received);
  void try_reciprocate(net::TxId banked_tx, BankedTx& b);
  // Opens a transaction toward `requestor`. chain == 0 starts a new chain.
  // forward_of != 0 re-encrypts that banked buffer instead of a stored
  // piece (§II-D1). Returns false when the open must be deferred.
  bool start_tx(net::PeerId requestor, net::PieceIndex piece,
                std::uint64_t chain, net::PeerId prev_donor,
                net::PieceIndex prev_piece, net::TxId forward_of);
  void maybe_start_chains();
  void settle_gratis(net::TxId tx, DonorTx& d, obs::ChainBreakCause cause);
  void grant_piece(net::PieceIndex piece, const util::Bytes& data,
                   net::PeerId source);

  core::PayeeQuery payee_query(net::PeerId requestor,
                               net::PieceIndex piece) const;
  Neighbor* ready_neighbor(net::PeerId peer);
  const Neighbor* ready_neighbor(net::PeerId peer) const;
  // Rarest-first piece we have that `claimed` lacks (random tie-break);
  // kNoPiece if none.
  net::PieceIndex lrf_unclaimed(const bt::Bitfield& claimed);
  void count(const char* name);

  SwarmContext& ctx_;
  Reactor& reactor_;
  Options opts_;
  net::Listener listener_;

  std::map<FrameConn*, std::unique_ptr<FrameConn>> conns_;
  FrameConn* tracker_ = nullptr;
  std::map<net::PeerId, Neighbor> neighbors_;
  std::map<net::PeerId, std::uint16_t> endpoints_;
  std::set<net::PeerId> dialing_;

  bt::Bitfield have_;
  std::vector<util::Bytes> store_;  // plaintext pieces (empty = missing)
  core::PendingTracker pending_;
  std::map<net::TxId, DonorTx> donor_;
  std::map<net::TxId, BankedTx> banked_;
  std::vector<PayeeDuty> duties_;
  std::vector<StashedRecip> stash_;
  std::vector<std::uint64_t> my_chains_;  // chains this node initiated

  util::Rng rng_;
  crypto::KeySource keys_;
  Reactor::TimerId announce_timer_ = 0;
  Reactor::TimerId tick_timer_ = 0;
  double finish_t_ = -1.0;
};

}  // namespace tc::rt
