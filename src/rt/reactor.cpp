#include "src/rt/reactor.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace tc::rt {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Reactor::Reactor()
    : wheel_(kWheelSlots), start_(std::chrono::steady_clock::now()) {
  epfd_ = ::epoll_create1(0);
  if (epfd_ < 0) throw_errno("epoll_create1");
}

Reactor::~Reactor() {
  if (epfd_ >= 0) ::close(epfd_);
}

double Reactor::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void Reactor::add(int fd, Handler* h) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    throw_errno("epoll_ctl(ADD)");
  handlers_[fd] = h;
}

void Reactor::remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  // The fd may already be closed; a failed DEL is then expected.
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

Reactor::TimerId Reactor::schedule(double delay_seconds,
                                   std::function<void()> fn) {
  if (delay_seconds < 0) delay_seconds = 0;
  const double deadline = now() + delay_seconds;
  auto tick = static_cast<std::int64_t>(deadline / kTickSeconds);
  if (tick <= processed_tick_) tick = processed_tick_ + 1;
  TimerEntry e;
  e.id = next_timer_++;
  e.deadline = deadline;
  e.fn = std::move(fn);
  const TimerId id = e.id;
  wheel_[static_cast<std::size_t>(tick) % kWheelSlots].push_back(std::move(e));
  ++timers_live_;
  return id;
}

void Reactor::cancel(TimerId id) {
  if (id != 0) cancelled_.insert(id);
}

void Reactor::post(std::function<void()> fn) { posted_.push_back(std::move(fn)); }

void Reactor::fire_due_timers() {
  const double t = now();
  const auto target = static_cast<std::int64_t>(t / kTickSeconds);
  while (processed_tick_ < target && !stopped_) {
    ++processed_tick_;
    auto& slot = wheel_[static_cast<std::size_t>(processed_tick_) % kWheelSlots];
    // Collect due entries first: fired callbacks may schedule new timers
    // into this very slot.
    std::vector<TimerEntry> due;
    for (std::size_t i = 0; i < slot.size();) {
      if (cancelled_.count(slot[i].id) != 0) {
        cancelled_.erase(slot[i].id);
        slot[i] = std::move(slot.back());
        slot.pop_back();
        --timers_live_;
      } else if (slot[i].deadline <= t) {
        due.push_back(std::move(slot[i]));
        slot[i] = std::move(slot.back());
        slot.pop_back();
        --timers_live_;
      } else {
        ++i;  // a future rotation owns this entry
      }
    }
    for (TimerEntry& e : due) {
      if (cancelled_.erase(e.id) != 0) continue;
      e.fn();
      if (stopped_) return;
    }
  }
}

int Reactor::poll_timeout_ms() const {
  if (!posted_.empty()) return 0;
  if (timers_live_ > 0) return static_cast<int>(kTickSeconds * 1000);
  return 50;
}

void Reactor::run() {
  stopped_ = false;
  epoll_event events[64];
  while (!stopped_) {
    if (!posted_.empty()) {
      std::vector<std::function<void()>> batch;
      batch.swap(posted_);
      for (auto& fn : batch) {
        fn();
        if (stopped_) return;
      }
    }
    fire_due_timers();
    if (stopped_) return;

    const int n = ::epoll_wait(epfd_, events, 64, poll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n && !stopped_; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      // Re-look up before every callback: an earlier callback in this
      // batch may have removed (and closed) the fd.
      if ((ev & EPOLLERR) != 0) {
        const auto it = handlers_.find(fd);
        if (it != handlers_.end()) it->second->on_error();
      }
      if ((ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
        const auto it = handlers_.find(fd);
        if (it != handlers_.end()) it->second->on_readable();
      }
      if ((ev & EPOLLOUT) != 0) {
        const auto it = handlers_.find(fd);
        if (it != handlers_.end()) it->second->on_writable();
      }
    }
  }
}

}  // namespace tc::rt
