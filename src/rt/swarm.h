// One-call localhost swarm: spins up a TrackerService plus N PeerNodes
// (peer 1 seeds, the rest leech) on a single Reactor, runs the live
// T-Chain protocol over real loopback sockets until every leecher holds
// the full file (or a wall-clock deadline expires), and returns per-peer
// completion times together with the invariant checker's verdict over the
// run's full trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/invariants.h"
#include "src/net/peer_id.h"
#include "src/obs/trace.h"

namespace tc::rt {

struct SwarmOptions {
  std::size_t peers = 16;  // total nodes; node 1 is the seeder
  std::uint32_t piece_count = 32;
  std::uint32_t piece_bytes = 16 * 1024;
  std::uint64_t seed = 1;
  int pending_cap = 2;
  std::size_t seeder_slots = 8;
  double watchdog_seconds = 0.2;
  int max_retries = 2;
  double announce_interval = 0.1;
  double tick_interval = 0.02;
  double deadline_seconds = 30.0;
  double tracker_prune_window = 2.0;
  std::size_t ring_capacity = std::size_t{1} << 20;
  // Attach the checker as a live sink (lossless => sound verdict even if
  // the ring wraps). Off: the report is computed from the ring snapshot.
  bool online_check = true;
};

struct PeerStat {
  net::PeerId id = net::kNoPeer;
  bool seeder = false;
  bool complete = false;
  double finish_seconds = -1.0;  // -1 if never finished
};

struct SwarmResult {
  bool all_complete = false;
  double wall_seconds = 0.0;
  std::vector<PeerStat> peers;
  check::CheckReport check;
  std::vector<obs::TraceEvent> events;  // ring snapshot (may have wrapped)
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  std::vector<std::pair<std::string, double>> metrics;
};

// Blocks until the swarm completes (plus a short settlement drain) or the
// deadline fires. Throws std::runtime_error on socket setup failure.
SwarmResult run_local_swarm(const SwarmOptions& opts);

}  // namespace tc::rt
