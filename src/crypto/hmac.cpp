#include "src/crypto/hmac.h"

#include <cstring>

namespace tc::crypto {

namespace {

Digest256 hmac_core(const util::Bytes& key, const std::uint8_t* msg,
                    std::size_t msg_len) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t k0[kBlock] = {0};
  if (key.size() > kBlock) {
    const Digest256 kh = sha256(key);
    std::memcpy(k0, kh.data(), kh.size());
  } else {
    std::memcpy(k0, key.data(), key.size());
  }

  std::uint8_t ipad[kBlock], opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad, kBlock);
  inner.update(msg, msg_len);
  const Digest256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad, kBlock);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

}  // namespace

Digest256 hmac_sha256(const util::Bytes& key, const util::Bytes& message) {
  return hmac_core(key, message.data(), message.size());
}

Digest256 hmac_sha256(const util::Bytes& key, std::string_view message) {
  return hmac_core(key, reinterpret_cast<const std::uint8_t*>(message.data()),
                   message.size());
}

bool digest_equal(const Digest256& a, const Digest256& b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace tc::crypto
