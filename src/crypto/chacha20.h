// ChaCha20 stream cipher (RFC 8439). This is the default piece cipher for
// T-Chain's almost-fair exchange: the donor encrypts a file piece under a
// fresh symmetric key, and releases the key only after reciprocation.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace tc::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

// Encrypts/decrypts in place semantics are symmetric: applying the
// keystream twice restores the plaintext.
util::Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                         std::uint32_t initial_counter,
                         const util::Bytes& input);

// One 64-byte keystream block; exposed for test vectors.
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter);

}  // namespace tc::crypto
