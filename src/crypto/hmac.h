// HMAC-SHA256 (RFC 2104). T-Chain receipts ("payee C notifies donor A that
// requestor B reciprocated") can be authenticated with an HMAC so that IP
// spoofing / replay cannot forge reception reports (the paper points at
// RFC 4953-style authentication; a keyed MAC is the standard realization).
#pragma once

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace tc::crypto {

Digest256 hmac_sha256(const util::Bytes& key, const util::Bytes& message);
Digest256 hmac_sha256(const util::Bytes& key, std::string_view message);

// Constant-time digest comparison (avoids timing side channels on receipt
// verification).
bool digest_equal(const Digest256& a, const Digest256& b);

}  // namespace tc::crypto
