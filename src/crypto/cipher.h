// Typed per-transaction symmetric keys and the piece-cipher interface used
// by the T-Chain exchange protocol.
//
// Paper notation: K^{i}_{D,R} is the fresh symmetric key the donor D uses
// to encrypt piece p_i sent to requestor R (Table I). Keys are never
// reused across transactions (footnote 2 of the paper), which KeySource
// enforces by construction.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "src/crypto/chacha20.h"
#include "src/crypto/sha256.h"
#include "src/crypto/xtea.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace tc::crypto {

// A 256-bit symmetric key plus the nonce used for the single piece it
// encrypts. Value type; comparable so tests can assert key identity.
struct SymmetricKey {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};

  bool operator==(const SymmetricKey&) const = default;

  // Short fingerprint for logs ("K[ab12cd34]").
  std::string fingerprint() const;

  util::Bytes serialize() const;
  static SymmetricKey deserialize(const util::Bytes& data);
};

// Deterministic key generator: derives a stream of unique keys from a seed.
// Each call returns a fresh key, satisfying the paper's one-key-per-piece
// requirement.
class KeySource {
 public:
  explicit KeySource(std::uint64_t seed);
  SymmetricKey next();
  std::uint64_t keys_issued() const { return issued_; }

 private:
  util::Rng rng_;
  std::uint64_t issued_ = 0;
};

enum class CipherKind : std::uint8_t { kChaCha20 = 0, kXteaCtr = 1 };

const char* cipher_kind_name(CipherKind kind);

// Stateless piece cipher. Both implementations are stream ciphers, so
// ciphertext size == plaintext size (the paper's "almost complete resource"
// costs the same bandwidth as the plaintext piece).
class SymmetricCipher {
 public:
  virtual ~SymmetricCipher() = default;
  virtual CipherKind kind() const = 0;
  virtual util::Bytes encrypt(const SymmetricKey& key,
                              const util::Bytes& plaintext) const = 0;
  virtual util::Bytes decrypt(const SymmetricKey& key,
                              const util::Bytes& ciphertext) const = 0;
};

std::unique_ptr<SymmetricCipher> make_cipher(CipherKind kind);

}  // namespace tc::crypto
