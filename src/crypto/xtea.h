// XTEA block cipher (Needham & Wheeler, 1997) in CTR mode. Provided as a
// second, even lighter-weight piece cipher so the overhead benchmark
// (paper §III-C) can compare symmetric ciphers of different cost.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace tc::crypto {

using XteaKey = std::array<std::uint32_t, 4>;

// One 64-bit block, 64 rounds (32 cycles).
std::uint64_t xtea_encrypt_block(const XteaKey& key, std::uint64_t block);
std::uint64_t xtea_decrypt_block(const XteaKey& key, std::uint64_t block);

// CTR mode: keystream = E(nonce64 || counter), XORed with data. Symmetric
// for encrypt/decrypt.
util::Bytes xtea_ctr_xor(const XteaKey& key, std::uint64_t nonce,
                         const util::Bytes& input);

}  // namespace tc::crypto
