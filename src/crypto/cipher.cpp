#include "src/crypto/cipher.h"

#include <cstring>
#include <stdexcept>

namespace tc::crypto {

std::string SymmetricKey::fingerprint() const {
  return util::to_hex(key.data(), 4);
}

util::Bytes SymmetricKey::serialize() const {
  util::Bytes out;
  out.reserve(key.size() + nonce.size());
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), nonce.begin(), nonce.end());
  return out;
}

SymmetricKey SymmetricKey::deserialize(const util::Bytes& data) {
  SymmetricKey k;
  if (data.size() != k.key.size() + k.nonce.size())
    throw std::invalid_argument("SymmetricKey: bad serialized size");
  std::memcpy(k.key.data(), data.data(), k.key.size());
  std::memcpy(k.nonce.data(), data.data() + k.key.size(), k.nonce.size());
  return k;
}

KeySource::KeySource(std::uint64_t seed) : rng_(seed) {}

SymmetricKey KeySource::next() {
  SymmetricKey k;
  for (std::size_t i = 0; i < k.key.size(); i += 8) {
    const std::uint64_t r = rng_.next_u64();
    for (std::size_t j = 0; j < 8; ++j)
      k.key[i + j] = static_cast<std::uint8_t>(r >> (8 * j));
  }
  // Mix a never-repeating counter into the nonce so two KeySources with the
  // same RNG state still cannot emit identical (key, nonce) pairs twice.
  const std::uint64_t ctr = ++issued_;
  const std::uint64_t r = rng_.next_u64();
  for (std::size_t j = 0; j < 8; ++j)
    k.nonce[j] = static_cast<std::uint8_t>((r ^ ctr) >> (8 * j));
  for (std::size_t j = 0; j < 4; ++j)
    k.nonce[8 + j] = static_cast<std::uint8_t>(ctr >> (8 * j));
  return k;
}

const char* cipher_kind_name(CipherKind kind) {
  switch (kind) {
    case CipherKind::kChaCha20: return "chacha20";
    case CipherKind::kXteaCtr: return "xtea-ctr";
  }
  return "?";
}

namespace {

class ChaCha20Cipher final : public SymmetricCipher {
 public:
  CipherKind kind() const override { return CipherKind::kChaCha20; }

  util::Bytes encrypt(const SymmetricKey& key,
                      const util::Bytes& plaintext) const override {
    return chacha20_xor(key.key, key.nonce, 1, plaintext);
  }

  util::Bytes decrypt(const SymmetricKey& key,
                      const util::Bytes& ciphertext) const override {
    return chacha20_xor(key.key, key.nonce, 1, ciphertext);
  }
};

class XteaCtrCipher final : public SymmetricCipher {
 public:
  CipherKind kind() const override { return CipherKind::kXteaCtr; }

  util::Bytes encrypt(const SymmetricKey& key,
                      const util::Bytes& plaintext) const override {
    return xtea_ctr_xor(derive_key(key), derive_nonce(key), plaintext);
  }

  util::Bytes decrypt(const SymmetricKey& key,
                      const util::Bytes& ciphertext) const override {
    return encrypt(key, ciphertext);
  }

 private:
  static XteaKey derive_key(const SymmetricKey& key) {
    XteaKey k;
    for (int i = 0; i < 4; ++i) {
      std::uint32_t w = 0;
      for (int j = 0; j < 4; ++j) w = (w << 8) | key.key[4 * i + j];
      k[static_cast<std::size_t>(i)] = w;
    }
    return k;
  }

  static std::uint64_t derive_nonce(const SymmetricKey& key) {
    std::uint64_t n = 0;
    for (int j = 0; j < 8; ++j) n = (n << 8) | key.nonce[static_cast<std::size_t>(j)];
    return n;
  }
};

}  // namespace

std::unique_ptr<SymmetricCipher> make_cipher(CipherKind kind) {
  switch (kind) {
    case CipherKind::kChaCha20: return std::make_unique<ChaCha20Cipher>();
    case CipherKind::kXteaCtr: return std::make_unique<XteaCtrCipher>();
  }
  throw std::invalid_argument("unknown cipher kind");
}

}  // namespace tc::crypto
