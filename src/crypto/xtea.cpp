#include "src/crypto/xtea.h"

namespace tc::crypto {

namespace {
constexpr std::uint32_t kDelta = 0x9e3779b9;
constexpr unsigned kCycles = 32;
}  // namespace

std::uint64_t xtea_encrypt_block(const XteaKey& key, std::uint64_t block) {
  std::uint32_t v0 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t v1 = static_cast<std::uint32_t>(block);
  std::uint32_t sum = 0;
  for (unsigned i = 0; i < kCycles; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  return (std::uint64_t{v0} << 32) | v1;
}

std::uint64_t xtea_decrypt_block(const XteaKey& key, std::uint64_t block) {
  std::uint32_t v0 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t v1 = static_cast<std::uint32_t>(block);
  std::uint32_t sum = kDelta * kCycles;
  for (unsigned i = 0; i < kCycles; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
  }
  return (std::uint64_t{v0} << 32) | v1;
}

util::Bytes xtea_ctr_xor(const XteaKey& key, std::uint64_t nonce,
                         const util::Bytes& input) {
  util::Bytes out(input.size());
  std::uint64_t counter = 0;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::uint64_t ks = xtea_encrypt_block(key, nonce ^ counter);
    ++counter;
    const std::size_t take = std::min<std::size_t>(8, input.size() - pos);
    for (std::size_t i = 0; i < take; ++i) {
      out[pos + i] = input[pos + i] ^
                     static_cast<std::uint8_t>(ks >> (56 - 8 * i));
    }
    pos += take;
  }
  return out;
}

}  // namespace tc::crypto
