#include "src/crypto/chacha20.h"

#include <cstring>

namespace tc::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }

  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) store_le32(out.data() + 4 * i, x[i] + state[i]);
  return out;
}

util::Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                         std::uint32_t initial_counter,
                         const util::Bytes& input) {
  util::Bytes out(input.size());
  std::uint32_t counter = initial_counter;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const auto block = chacha20_block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, input.size() - pos);
    for (std::size_t i = 0; i < take; ++i)
      out[pos + i] = input[pos + i] ^ block[i];
    pos += take;
  }
  return out;
}

}  // namespace tc::crypto
