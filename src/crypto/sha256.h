// SHA-256 (FIPS 180-4), implemented from scratch so the library has no
// external crypto dependency. Used for piece integrity hashes (the usual
// BitTorrent mechanism the paper assumes detects corrupted pieces) and as
// the compression function behind HMAC receipts.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string_view>

#include "src/util/bytes.h"

namespace tc::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(const util::Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  // Finalizes and returns the digest; the object must not be reused after.
  Digest256 finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

// One-shot helpers.
Digest256 sha256(const util::Bytes& data);
Digest256 sha256(std::string_view data);

}  // namespace tc::crypto
