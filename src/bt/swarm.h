// Swarm orchestrator: membership, arrivals/departures, neighbor overlay,
// availability tracking with Local-Rarest-First selection, bandwidth-exact
// piece transfer, the shared attack machinery (zero-upload free-riders,
// large-view exploit, whitewashing), and metrics. Incentive logic plugs in
// through the Protocol interface (src/bt/protocol.h).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/analysis/metrics.h"
#include "src/bt/config.h"
#include "src/bt/peer.h"
#include "src/bt/protocol.h"
#include "src/net/tracker.h"
#include "src/obs/trace.h"
#include "src/sim/bandwidth.h"
#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "src/trace/arrival.h"
#include "src/util/rng.h"

namespace tc::bt {

// How a peer leaves: gracefully (final messages sent, §II-B4 escrow
// handoff possible) or by crashing (it just vanishes).
enum class DepartKind { kGraceful, kCrash };

class Swarm {
 public:
  // `arrival_times` gives the join time of each leecher; if empty, a
  // 10-second flash crowd (paper §IV-A) is generated for
  // cfg.leecher_count leechers.
  Swarm(SwarmConfig cfg, Protocol& proto,
        std::vector<SimTime> arrival_times = {});

  // Runs to completion: all compliant leechers finished, or
  // cfg.max_sim_time reached (whichever is first).
  void run();

  // --- Accessors ------------------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  sim::BandwidthModel& bandwidth() { return bw_; }
  sim::FaultInjector& faults() { return faults_; }
  util::Rng& rng() { return rng_; }
  const SwarmConfig& config() const { return cfg_; }
  analysis::SwarmMetrics& metrics() { return metrics_; }
  const analysis::SwarmMetrics& metrics() const { return metrics_; }
  std::size_t piece_count() const { return piece_count_; }
  PeerId seeder_id() const { return seeder_id_; }
  SimTime end_time() const;

  Peer* peer(PeerId id);
  const Peer* peer(PeerId id) const;
  bool is_active(PeerId id) const;
  std::vector<PeerId> active_peers() const;
  std::size_t active_leecher_count() const { return active_leechers_; }

  // --- Neighbor overlay ----------------------------------------------------
  // Connects a<->b respecting max_neighbors (large-view free-riders accept
  // beyond the cap). Returns true if the link was created.
  bool connect(PeerId a, PeerId b);
  void disconnect(PeerId a, PeerId b);
  // Tracker round-trip: fetch a fresh list and connect to its members.
  void refresh_neighbors(PeerId p);

  // --- Interest / piece selection --------------------------------------------
  // True if `a` needs at least one completed piece of `b` that `a` neither
  // has nor has in flight.
  bool needs_from(PeerId a, PeerId b) const;
  // Pieces of `owner` that `chooser` needs (not had, not in flight).
  std::vector<PieceIndex> needed_pieces(PeerId chooser, PeerId owner) const;
  // How many of `p`'s neighbors have piece `i`.
  std::uint32_t availability(PeerId p, PieceIndex i) const;
  // Local-Rarest-First: rarest (w.r.t. chooser's neighborhood) piece that
  // `owner` has and `chooser` needs; random tie-break. nullopt if none.
  std::optional<PieceIndex> select_lrf(PeerId chooser, PeerId owner);

  // --- Transfers ----------------------------------------------------------------
  // Callback on delivery or abort (peer departed mid-transfer).
  using TransferFn =
      std::function<void(PeerId from, PeerId to, PieceIndex piece, bool ok)>;

  // Starts a piece-sized upload. Marks the piece in-flight for `to`.
  // `weight` is the flow's share weight at the uploader (PropShare).
  sim::FlowId start_upload(PeerId from, PeerId to, PieceIndex piece,
                           double weight, TransferFn on_done);

  // Marks `piece` completed (decrypted / plainly received) at `to`:
  // updates counters, availability (HAVE), piece-trace metrics; notifies
  // the protocol; finishes + departs the peer when the file is complete.
  void grant_piece(PeerId to, PieceIndex piece, PeerId from);

  // Control-plane message (receipt, key, reassignment): runs `fn` after
  // cfg.control_latency simulated seconds (plus fault jitter). Under an
  // active FaultPlan the message may be silently dropped; `on_lost`, if
  // given, then runs after the sender-side detection delay
  // (max(tx_timeout, control_latency)) to model timeout-based recovery.
  void send_control(std::function<void()> fn,
                    std::function<void()> on_lost = {});

  // --- Lifecycle / attacks -----------------------------------------------------
  void depart(PeerId p, DepartKind kind = DepartKind::kGraceful);
  // Identity change keeping download state; returns the new id.
  PeerId whitewash(PeerId p);

  // --- Observability (src/obs) ---------------------------------------------
  // Turns on event tracing + the metric registry for this run. Call before
  // run(). Off by default: obs() stays null and every instrumentation site
  // reduces to one pointer test (zero-overhead contract, see obs/trace.h).
  void enable_obs(const obs::TraceConfig& cfg);
  obs::Trace* obs() const { return obs_; }

  // Figure 5 support: when enabled before run(), the first leecher of the
  // slowest class and the first of the fastest class get piece-timeline
  // traces in metrics().
  void set_trace_extremes(bool on) { trace_extremes_ = on; }
  PeerId traced_slow_peer() const { return traced_slow_; }
  PeerId traced_fast_peer() const { return traced_fast_; }

 private:
  PeerId allocate_id() { return next_id_++; }
  void join_leecher(std::size_t arrival_index, SimTime now);
  // Arms the per-peer fault machinery (session clock, outage process) for
  // a freshly joined identity. No-op when the plan has them off.
  void arm_faults(PeerId id);
  void schedule_session_end(PeerId id);
  void schedule_next_outage(PeerId id);
  void begin_outage(PeerId id);
  void end_outage(PeerId id);
  void setup_peer_links(PeerId id);
  void schedule_maintenance(PeerId id);
  void maintenance_tick(PeerId id);
  void finish_peer(PeerId id);
  void check_done();
  void add_availability(Peer& p, const Bitfield& bits, int sign);

  SwarmConfig cfg_;
  Protocol& proto_;
  sim::Simulator sim_;
  sim::BandwidthModel bw_;
  util::Rng rng_;
  sim::FaultInjector faults_;
  std::unique_ptr<trace::SessionModel> sessions_;  // null: no churn
  net::Tracker tracker_;
  analysis::SwarmMetrics metrics_;
  std::unique_ptr<obs::Trace> obs_owned_;
  obs::Trace* obs_ = nullptr;  // null unless enable_obs() was called
  // Pre-outage upload capacity of peers currently dark.
  std::unordered_map<PeerId, double> outage_saved_;

  std::size_t piece_count_ = 0;
  PeerId seeder_id_ = net::kNoPeer;
  PeerId next_id_ = 1;

  std::unordered_map<PeerId, std::unique_ptr<Peer>> peers_;
  // Neighborhood availability counters, parallel to peers_.
  std::unordered_map<PeerId, std::vector<std::uint32_t>> avail_;

  struct FlowInfo {
    PeerId from, to;
    PieceIndex piece;
    TransferFn on_done;
  };
  std::unordered_map<sim::FlowId, FlowInfo> flows_;
  std::unordered_map<PeerId, std::vector<sim::FlowId>> flows_to_;

  std::vector<SimTime> arrivals_;
  std::size_t arrivals_started_ = 0;
  std::size_t compliant_outstanding_ = 0;  // joined-or-pending, unfinished
  std::size_t freerider_outstanding_ = 0;
  SimTime last_freerider_progress_ = 0.0;
  SimTime last_any_progress_ = 0.0;
  std::size_t active_leechers_ = 0;
  std::vector<std::size_t> freerider_arrival_index_;
  bool done_ = false;
  bool trace_extremes_ = false;
  PeerId traced_slow_ = net::kNoPeer;
  PeerId traced_fast_ = net::kNoPeer;
};

}  // namespace tc::bt
