#include "src/bt/swarm.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/util/logging.h"

namespace tc::bt {

Swarm::Swarm(SwarmConfig cfg, Protocol& proto, std::vector<SimTime> arrival_times)
    : cfg_(std::move(cfg)),
      proto_(proto),
      bw_(sim_),
      rng_(cfg_.seed),
      faults_(cfg_.faults, cfg_.seed),
      tracker_(cfg_.tracker_list_size),
      piece_count_(cfg_.piece_count()) {
  if (piece_count_ == 0) throw std::invalid_argument("empty file");
  if (cfg_.faults.churn()) {
    using SK = sim::FaultPlan::SessionKind;
    if (cfg_.faults.session_kind == SK::kExponential) {
      sessions_ =
          std::make_unique<trace::ExponentialSessions>(cfg_.faults.mean_session);
    } else {
      sessions_ = std::make_unique<trace::LogNormalSessions>(
          cfg_.faults.mean_session, cfg_.faults.session_sigma);
    }
  }
  arrivals_ = std::move(arrival_times);
  if (arrivals_.empty()) {
    // Paper §IV-A: flash crowd, all leechers join within the first 10 s.
    arrivals_.resize(cfg_.leecher_count);
    for (auto& t : arrivals_) t = rng_.uniform(0.0, 10.0);
    std::sort(arrivals_.begin(), arrivals_.end());
  }
  cfg_.leecher_count = arrivals_.size();

  // Exactly round(fraction * N) free-riders, spread uniformly.
  const auto fr_count = static_cast<std::size_t>(
      cfg_.freerider_fraction * static_cast<double>(arrivals_.size()) + 0.5);
  freerider_arrival_index_ = rng_.sample_indices(arrivals_.size(), fr_count);
  std::sort(freerider_arrival_index_.begin(), freerider_arrival_index_.end());

  proto_.attach(*this);
}

SimTime Swarm::end_time() const {
  return std::min(sim_.now(), cfg_.max_sim_time);
}

void Swarm::enable_obs(const obs::TraceConfig& cfg) {
  obs_owned_ = std::make_unique<obs::Trace>(cfg);
  obs_ = obs_owned_.get();
  faults_.set_trace(obs_, &sim_);
}

Peer* Swarm::peer(PeerId id) {
  const auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

const Peer* Swarm::peer(PeerId id) const {
  const auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

bool Swarm::is_active(PeerId id) const {
  const Peer* p = peer(id);
  return p != nullptr && p->active;
}

std::vector<PeerId> Swarm::active_peers() const {
  std::vector<PeerId> out;
  out.reserve(peers_.size());
  for (const auto& [id, p] : peers_) {
    if (p->active) out.push_back(id);
  }
  std::sort(out.begin(), out.end());  // deterministic order for RNG consumers
  return out;
}

void Swarm::add_availability(Peer& p, const Bitfield& bits, int sign) {
  auto& av = avail_[p.id];
  for (PieceIndex i : bits.to_vector()) {
    av[i] = static_cast<std::uint32_t>(static_cast<std::int64_t>(av[i]) + sign);
  }
}

bool Swarm::connect(PeerId a, PeerId b) {
  if (a == b) return false;
  Peer* pa = peer(a);
  Peer* pb = peer(b);
  if (!pa || !pb || !pa->active || !pb->active) return false;
  if (pa->is_neighbor(b)) return false;

  const auto over_cap = [&](const Peer& p) {
    if (p.neighbors.size() < cfg_.max_neighbors) return false;
    // Large-view free-riders accept (and hold) unbounded neighbor sets.
    return !(p.freerider && cfg_.freerider_large_view);
  };
  if (over_cap(*pa) || over_cap(*pb)) return false;

  pa->neighbors.push_back(b);
  pb->neighbors.push_back(a);
  add_availability(*pa, pb->have, +1);
  add_availability(*pb, pa->have, +1);
  proto_.on_neighbor_added(a, b);
  return true;
}

void Swarm::disconnect(PeerId a, PeerId b) {
  Peer* pa = peer(a);
  Peer* pb = peer(b);
  if (!pa || !pb) return;
  const auto erase_from = [](Peer& p, PeerId x) {
    auto it = std::find(p.neighbors.begin(), p.neighbors.end(), x);
    if (it == p.neighbors.end()) return false;
    p.neighbors.erase(it);
    return true;
  };
  if (!erase_from(*pa, b)) return;
  erase_from(*pb, a);
  add_availability(*pa, pb->have, -1);
  add_availability(*pb, pa->have, -1);
  proto_.on_neighbor_removed(a, b);
}

void Swarm::refresh_neighbors(PeerId p) {
  if (!is_active(p)) return;
  for (PeerId n : tracker_.neighbor_list(p, rng_)) {
    if (is_active(n)) connect(p, n);
  }
}

bool Swarm::needs_from(PeerId a, PeerId b) const {
  const Peer* pa = peer(a);
  const Peer* pb = peer(b);
  if (!pa || !pb) return false;
  // requested ⊇ have, so "not requested" means truly needed.
  return pa->requested.interested_in(pb->have);
}

std::vector<PieceIndex> Swarm::needed_pieces(PeerId chooser, PeerId owner) const {
  const Peer* pc = peer(chooser);
  const Peer* po = peer(owner);
  if (!pc || !po) return {};
  return pc->requested.missing_from(po->have);
}

std::uint32_t Swarm::availability(PeerId p, PieceIndex i) const {
  const auto it = avail_.find(p);
  if (it == avail_.end() || i >= it->second.size()) return 0;
  return it->second[i];
}

std::optional<PieceIndex> Swarm::select_lrf(PeerId chooser, PeerId owner) {
  std::vector<PieceIndex> candidates = needed_pieces(chooser, owner);
  if (candidates.empty()) return std::nullopt;

  if (cfg_.piece_policy == PiecePolicy::kSequentialWindow) {
    // Streaming: restrict to the playback window past the playhead; rarest
    // within the window, lowest index on ties (deadline pressure). Falls
    // back to plain LRF when the window is fully claimed, preserving
    // liveness.
    const Peer* pc = peer(chooser);
    const PieceIndex playhead = pc->have.first_missing();
    const PieceIndex window_end = static_cast<PieceIndex>(
        std::min<std::size_t>(piece_count_, playhead + cfg_.stream_window));
    std::vector<PieceIndex> windowed;
    for (PieceIndex c : candidates) {
      if (c >= playhead && c < window_end) windowed.push_back(c);
    }
    if (!windowed.empty()) {
      const auto& av = avail_[chooser];
      PieceIndex best = windowed.front();
      for (PieceIndex c : windowed) {
        if (av[c] < av[best] || (av[c] == av[best] && c < best)) best = c;
      }
      return best;
    }
  }

  const auto& av = avail_[chooser];
  PieceIndex best = candidates.front();
  std::uint32_t best_avail = av[best];
  std::size_t ties = 1;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const PieceIndex c = candidates[i];
    if (av[c] < best_avail) {
      best = c;
      best_avail = av[c];
      ties = 1;
    } else if (av[c] == best_avail) {
      // Reservoir: uniform among rarest.
      ++ties;
      if (rng_.index(ties) == 0) best = c;
    }
  }
  return best;
}

sim::FlowId Swarm::start_upload(PeerId from, PeerId to, PieceIndex piece,
                                double weight, TransferFn on_done) {
  Peer* src = peer(from);
  Peer* dst = peer(to);
  if (!src || !dst || !src->active || !dst->active)
    throw std::logic_error("start_upload: inactive endpoint");
  if (piece >= piece_count_) throw std::out_of_range("start_upload: bad piece");
  dst->requested.set(piece);

  const sim::FlowId id = bw_.start_flow(
      from, to, static_cast<double>(cfg_.piece_bytes), [this](sim::FlowId fid) {
        const auto it = flows_.find(fid);
        if (it == flows_.end()) return;
        FlowInfo info = std::move(it->second);
        flows_.erase(it);
        auto& v = flows_to_[info.to];
        v.erase(std::remove(v.begin(), v.end(), fid), v.end());

        auto& up = metrics_.record(info.from);
        up.pieces_uploaded += 1;
        up.bytes_uploaded += static_cast<double>(cfg_.piece_bytes);
        metrics_.record(info.to).bytes_downloaded +=
            static_cast<double>(cfg_.piece_bytes);
        if (obs_ != nullptr) {
          obs_->emit({.t = sim_.now(),
                      .kind = obs::EventKind::kPieceDelivered,
                      .piece = info.piece,
                      .a = info.from,
                      .b = info.to,
                      .ref = fid});
        }

        if (info.on_done) info.on_done(info.from, info.to, info.piece, true);
      },
      weight);
  flows_[id] = FlowInfo{from, to, piece, std::move(on_done)};
  flows_to_[to].push_back(id);
  if (obs_ != nullptr) {
    obs_->emit({.t = sim_.now(),
                .kind = obs::EventKind::kPieceSent,
                .piece = piece,
                .a = from,
                .b = to,
                .ref = id});
  }
  return id;
}

void Swarm::grant_piece(PeerId to, PieceIndex piece, PeerId from) {
  Peer* t = peer(to);
  if (!t || piece >= piece_count_) return;
  if (t->have.get(piece)) return;  // duplicate delivery guard
  t->have.set(piece);
  t->requested.set(piece);

  auto& rec = metrics_.record(to);
  rec.pieces_downloaded += 1;
  last_any_progress_ = sim_.now();
  if (t->freerider) last_freerider_progress_ = sim_.now();
  if (metrics_.tracing(to)) metrics_.trace_completed(to, piece, sim_.now());
  if (obs_ != nullptr) {
    obs_->emit({.t = sim_.now(),
                .kind = obs::EventKind::kPieceGranted,
                .piece = piece,
                .a = to,
                .b = from});
  }

  // HAVE broadcast: neighbors' availability counters pick up the piece.
  for (PeerId n : t->neighbors) {
    auto it = avail_.find(n);
    if (it != avail_.end()) ++it->second[piece];
  }

  proto_.on_piece_complete(to, piece, from);

  if (t->have.complete()) {
    const PeerId id = to;
    sim_.schedule_in(0.0, [this, id] { finish_peer(id); });
  } else if (t->freerider && cfg_.freerider_whitewash && !t->seeder) {
    // Whitewash as soon as a (free) piece is banked (§IV-C).
    const PeerId id = to;
    sim_.schedule_in(0.01, [this, id] {
      if (is_active(id)) whitewash(id);
    });
  }
}

void Swarm::send_control(std::function<void()> fn,
                         std::function<void()> on_lost) {
  ++metrics_.resilience().control_sent;
  if (faults_.plan().control_faults()) {
    if (faults_.drop_control()) {
      ++metrics_.resilience().control_dropped;
      if (on_lost) {
        const double wait = std::max(cfg_.tx_timeout, cfg_.control_latency);
        sim_.schedule_in(wait, std::move(on_lost));
      }
      return;
    }
    sim_.schedule_in(cfg_.control_latency + faults_.control_delay(),
                     std::move(fn));
    return;
  }
  sim_.schedule_in(cfg_.control_latency, std::move(fn));
}

void Swarm::arm_faults(PeerId id) {
  const Peer* p = peer(id);
  if (p == nullptr || p->seeder) return;
  if (sessions_) schedule_session_end(id);
  if (faults_.plan().outages()) schedule_next_outage(id);
}

void Swarm::schedule_session_end(PeerId id) {
  // Draws happen at scheduling time so the fault stream's consumption
  // order is a pure function of join order (determinism guard).
  const SimTime dur = sessions_->duration(faults_.rng());
  const bool crash = faults_.crash_on_exit();
  sim_.schedule_in(dur, [this, id, crash] {
    const Peer* p = peer(id);
    if (p == nullptr || !p->active || p->seeder) return;
    if (p->have.complete()) return;  // finishing departs on its own
    if (crash) {
      ++metrics_.resilience().crashes;
    } else {
      ++metrics_.resilience().churn_departures;
    }
    depart(id, crash ? DepartKind::kCrash : DepartKind::kGraceful);
  });
}

void Swarm::schedule_next_outage(PeerId id) {
  const SimTime gap = faults_.outage_gap();
  sim_.schedule_in(gap, [this, id] { begin_outage(id); });
}

void Swarm::begin_outage(PeerId id) {
  const Peer* p = peer(id);
  if (p == nullptr || !p->active) return;
  const double cap = bw_.capacity(id);
  if (cap <= 0.0 || outage_saved_.count(id) > 0) {
    // Nothing to darken (free-rider pipe) — keep the process alive anyway.
    schedule_next_outage(id);
    return;
  }
  ++metrics_.resilience().upload_outages;
  outage_saved_[id] = cap;
  bw_.set_capacity(id, 0.0);
  if (obs_ != nullptr) {
    obs_->emit({.t = sim_.now(),
                .kind = obs::EventKind::kFaultOutageBegin,
                .a = id});
  }
  const SimTime dur = faults_.outage_duration();
  sim_.schedule_in(dur, [this, id] { end_outage(id); });
}

void Swarm::end_outage(PeerId id) {
  const auto it = outage_saved_.find(id);
  if (it == outage_saved_.end()) return;  // identity rekeyed away
  const double cap = it->second;
  outage_saved_.erase(it);
  if (is_active(id)) {
    bw_.set_capacity(id, cap);
    if (obs_ != nullptr) {
      obs_->emit({.t = sim_.now(),
                  .kind = obs::EventKind::kFaultOutageEnd,
                  .a = id});
    }
    schedule_next_outage(id);
  }
}

void Swarm::finish_peer(PeerId id) {
  Peer* p = peer(id);
  if (!p || !p->active || p->seeder) return;
  metrics_.record(id).finish_time = sim_.now();
  if (obs_ != nullptr) {
    obs_->emit({.t = sim_.now(), .kind = obs::EventKind::kPeerFinish, .a = id});
  }
  const bool compliant = !p->freerider;
  const bool replace = cfg_.replace_on_finish && sim_.now() < cfg_.max_sim_time;
  const double kbps = p->upload_kbps;
  const bool was_freerider = p->freerider;
  depart(id);
  if (compliant) {
    assert(compliant_outstanding_ > 0);
    --compliant_outstanding_;
    // Start the free-rider stall clock only once compliant work is done.
    if (compliant_outstanding_ == 0)
      last_freerider_progress_ = std::max(last_freerider_progress_, sim_.now());
  } else if (freerider_outstanding_ > 0) {
    --freerider_outstanding_;
  }
  if (replace) {
    // Figure 13's churn model: an identical newcomer takes the slot.
    const PeerId fresh = allocate_id();
    auto np = std::make_unique<Peer>();
    np->id = fresh;
    np->freerider = was_freerider;
    np->colluder = was_freerider && cfg_.freerider_collude;
    np->upload_kbps = kbps;
    np->have = Bitfield(piece_count_);
    np->requested = Bitfield(piece_count_);
    np->join_time = sim_.now();
    avail_[fresh].assign(piece_count_, 0);
    auto& rec = metrics_.record(fresh);
    rec.seeder = false;
    rec.freerider = np->freerider;
    rec.colluder = np->colluder;
    rec.upload_kbps = kbps;
    rec.join_time = sim_.now();
    bw_.set_capacity(fresh, np->freerider ? 0.0
                                          : util::kbps_to_bytes_per_sec(kbps));
    peers_[fresh] = std::move(np);
    tracker_.announce(fresh);
    ++active_leechers_;
    if (!was_freerider) ++compliant_outstanding_;
    if (obs_ != nullptr) {
      std::uint8_t flags = 0;
      if (was_freerider) flags |= obs::kPeerFlagFreerider;
      if (was_freerider && cfg_.freerider_collude) flags |= obs::kPeerFlagColluder;
      obs_->emit({.t = sim_.now(),
                  .kind = obs::EventKind::kPeerJoin,
                  .aux = flags,
                  .a = fresh});
    }
    setup_peer_links(fresh);
    proto_.on_peer_join(fresh);
    arm_faults(fresh);
  }
  check_done();
}

void Swarm::depart(PeerId id, DepartKind kind) {
  Peer* p = peer(id);
  if (!p || !p->active) return;
  p->active = false;
  metrics_.record(id).depart_time = sim_.now();

  // A mid-download departure (churn, chaos testing) leaves the file
  // unfinished; release its completion slot so the run can end without
  // waiting for the stall valve. Finish-departures decrement in
  // finish_peer, after this call, once the record is marked finished.
  if (!p->seeder && !p->have.complete()) {
    if (!p->freerider) {
      if (compliant_outstanding_ > 0) --compliant_outstanding_;
      if (compliant_outstanding_ == 0)
        last_freerider_progress_ = std::max(last_freerider_progress_, sim_.now());
    } else if (freerider_outstanding_ > 0) {
      --freerider_outstanding_;
    }
  }

  const std::vector<PeerId> nbrs = p->neighbors;
  for (PeerId n : nbrs) disconnect(id, n);

  // Abort transfers in both directions.
  std::vector<sim::FlowId> dead;
  for (const auto& [fid, info] : flows_) {
    if (info.from == id || info.to == id) dead.push_back(fid);
  }
  for (sim::FlowId fid : dead) {
    auto it = flows_.find(fid);
    if (it == flows_.end()) continue;
    FlowInfo info = std::move(it->second);
    flows_.erase(it);
    auto& v = flows_to_[info.to];
    v.erase(std::remove(v.begin(), v.end(), fid), v.end());
    bw_.cancel_flow(fid);
    if (Peer* dst = peer(info.to); dst && !dst->have.get(info.piece)) {
      dst->requested.clear(info.piece);  // allow a re-fetch elsewhere
    }
    if (obs_ != nullptr) {
      obs_->emit({.t = sim_.now(),
                  .kind = obs::EventKind::kPieceAborted,
                  .piece = info.piece,
                  .a = info.from,
                  .b = info.to,
                  .ref = fid});
    }
    if (info.on_done) info.on_done(info.from, info.to, info.piece, false);
  }
  flows_to_.erase(id);

  if (obs_ != nullptr) {
    obs_->emit({.t = sim_.now(),
                .kind = kind == DepartKind::kCrash
                            ? obs::EventKind::kPeerCrash
                            : obs::EventKind::kPeerDepart,
                .a = id});
  }
  if (kind == DepartKind::kCrash) {
    proto_.on_peer_crash(id);
  } else {
    proto_.on_peer_depart(id);
  }
  tracker_.depart(id);
  if (!p->seeder && active_leechers_ > 0) --active_leechers_;
  check_done();
}

PeerId Swarm::whitewash(PeerId id) {
  Peer* p = peer(id);
  if (!p || !p->active || p->seeder) return id;
  TC_DEBUG("whitewash: " << id);

  const std::vector<PeerId> nbrs = p->neighbors;
  for (PeerId n : nbrs) disconnect(id, n);

  std::vector<sim::FlowId> dead;
  for (const auto& [fid, info] : flows_) {
    if (info.from == id || info.to == id) dead.push_back(fid);
  }
  for (sim::FlowId fid : dead) {
    auto it = flows_.find(fid);
    if (it == flows_.end()) continue;
    FlowInfo info = std::move(it->second);
    flows_.erase(it);
    auto& v = flows_to_[info.to];
    v.erase(std::remove(v.begin(), v.end(), fid), v.end());
    bw_.cancel_flow(fid);
    if (Peer* dst = peer(info.to); dst && !dst->have.get(info.piece)) {
      dst->requested.clear(info.piece);
    }
    if (obs_ != nullptr) {
      obs_->emit({.t = sim_.now(),
                  .kind = obs::EventKind::kPieceAborted,
                  .piece = info.piece,
                  .a = info.from,
                  .b = info.to,
                  .ref = fid});
    }
    if (info.on_done) info.on_done(info.from, info.to, info.piece, false);
  }
  flows_to_.erase(id);

  proto_.on_peer_depart(id);
  tracker_.depart(id);

  // Re-key: same logical peer, fresh identity, download state kept.
  const PeerId fresh = allocate_id();
  auto node = peers_.extract(id);
  node.key() = fresh;
  peers_.insert(std::move(node));
  Peer& moved = *peers_[fresh];
  moved.id = fresh;
  moved.requested = moved.have;  // in-flight claims die with the identity
  avail_.erase(id);
  avail_[fresh].assign(piece_count_, 0);
  metrics_.rekey(id, fresh);
  // If the old identity was mid-outage, the fresh one starts with the
  // real (pre-outage) capacity; the pending end-outage event dies.
  if (const auto out = outage_saved_.find(id); out != outage_saved_.end()) {
    bw_.set_capacity(fresh, out->second);
    outage_saved_.erase(out);
  } else {
    bw_.set_capacity(fresh, bw_.capacity(id));
  }
  tracker_.announce(fresh);

  if (obs_ != nullptr) {
    obs_->emit({.t = sim_.now(),
                .kind = obs::EventKind::kPeerWhitewash,
                .a = id,
                .b = fresh});
  }
  proto_.on_peer_rekeyed(id, fresh);
  setup_peer_links(fresh);
  proto_.on_peer_join(fresh);
  arm_faults(fresh);
  return fresh;
}

void Swarm::setup_peer_links(PeerId id) {
  refresh_neighbors(id);
  schedule_maintenance(id);
}

void Swarm::schedule_maintenance(PeerId id) {
  // Periodic overlay maintenance (and the free-rider large-view loop).
  sim_.schedule_in(cfg_.rechoke_period, [this, id] {
    if (!is_active(id)) return;
    maintenance_tick(id);
    schedule_maintenance(id);
  });
}

void Swarm::maintenance_tick(PeerId id) {
  Peer* p = peer(id);
  if (!p || !p->active) return;
  if (p->freerider && cfg_.freerider_large_view) {
    // Large-view exploit: fetch a fresh list every rechoke period and
    // connect to everyone on it (§IV-C).
    refresh_neighbors(id);
    return;
  }
  if (p->neighbors.size() < cfg_.min_neighbors) {
    refresh_neighbors(id);
    return;
  }
  // Starvation guard: a leecher whose whole neighborhood has nothing it
  // needs re-announces to the tracker for fresh peers (otherwise an
  // endgame cluster with identical bitfields can deadlock away from the
  // seeder).
  if (!p->seeder && !p->have.complete()) {
    bool useful = false;
    for (PeerId n : p->neighbors) {
      if (needs_from(id, n)) {
        useful = true;
        break;
      }
    }
    if (!useful) {
      // Make room before re-announcing if we're at the connection cap.
      while (p->neighbors.size() + 5 > cfg_.max_neighbors) {
        disconnect(id, p->neighbors[rng_.index(p->neighbors.size())]);
      }
      refresh_neighbors(id);
    }
  }
}

void Swarm::join_leecher(std::size_t arrival_index, SimTime now) {
  const PeerId id = allocate_id();
  auto p = std::make_unique<Peer>();
  p->id = id;
  p->upload_kbps =
      cfg_.leecher_upload_kbps[arrival_index % cfg_.leecher_upload_kbps.size()];
  p->freerider = std::binary_search(freerider_arrival_index_.begin(),
                                    freerider_arrival_index_.end(),
                                    arrival_index);
  p->colluder = p->freerider && cfg_.freerider_collude;
  p->have = Bitfield(piece_count_);
  p->requested = Bitfield(piece_count_);
  p->join_time = now;

  // Fig 6(b): pre-populate a fraction of random pieces (never all).
  if (cfg_.initial_piece_fraction > 0.0) {
    auto want = static_cast<std::size_t>(cfg_.initial_piece_fraction *
                                         static_cast<double>(piece_count_));
    want = std::min(want, piece_count_ - 1);
    for (std::size_t i : rng_.sample_indices(piece_count_, want)) {
      p->have.set(static_cast<PieceIndex>(i));
      p->requested.set(static_cast<PieceIndex>(i));
    }
  }

  auto& rec = metrics_.record(id);
  rec.freerider = p->freerider;
  rec.colluder = p->colluder;
  rec.upload_kbps = p->upload_kbps;
  rec.join_time = now;
  rec.pieces_downloaded = static_cast<std::int64_t>(p->have.count());

  if (trace_extremes_ && !p->freerider) {
    const auto& classes = cfg_.leecher_upload_kbps;
    const double lo = *std::min_element(classes.begin(), classes.end());
    const double hi = *std::max_element(classes.begin(), classes.end());
    if (traced_slow_ == net::kNoPeer && p->upload_kbps == lo) {
      traced_slow_ = id;
      metrics_.enable_piece_trace(id);
    } else if (traced_fast_ == net::kNoPeer && p->upload_kbps == hi) {
      traced_fast_ = id;
      metrics_.enable_piece_trace(id);
    }
  }

  bw_.set_capacity(id, p->freerider
                           ? 0.0
                           : util::kbps_to_bytes_per_sec(p->upload_kbps));
  avail_[id].assign(piece_count_, 0);
  if (obs_ != nullptr) {
    std::uint8_t flags = 0;
    if (p->freerider) flags |= obs::kPeerFlagFreerider;
    if (p->colluder) flags |= obs::kPeerFlagColluder;
    obs_->emit({.t = now, .kind = obs::EventKind::kPeerJoin, .aux = flags, .a = id});
  }
  peers_[id] = std::move(p);
  tracker_.announce(id);
  ++active_leechers_;

  setup_peer_links(id);
  proto_.on_peer_join(id);
  arm_faults(id);
}

void Swarm::check_done() {
  if (cfg_.replace_on_finish) return;  // horizon-bounded scenario
  if (arrivals_started_ != arrivals_.size()) return;
  // Global liveness valve: a wedged swarm (nothing completing anywhere)
  // ends rather than idling to max_sim_time.
  if (sim_.now() - std::max(last_any_progress_, arrivals_.back()) >
      cfg_.global_stall_timeout) {
    done_ = true;
    return;
  }
  if (compliant_outstanding_ != 0) return;
  if (!cfg_.wait_for_freeriders || freerider_outstanding_ == 0) {
    done_ = true;
    return;
  }
  // Free-riders still unfinished: give them until they stall (e.g. T-Chain
  // free-riders never complete a piece and must not hold the run hostage).
  if (sim_.now() - last_freerider_progress_ > cfg_.freerider_stall_timeout) {
    done_ = true;
  }
}

void Swarm::run() {
  // Seeder (stays for the whole run, paper §IV-A).
  seeder_id_ = allocate_id();
  {
    auto s = std::make_unique<Peer>();
    s->id = seeder_id_;
    s->seeder = true;
    s->upload_kbps = cfg_.seeder_upload_kbps;
    s->have = Bitfield(piece_count_);
    for (PieceIndex i = 0; i < piece_count_; ++i) s->have.set(i);
    s->requested = s->have;
    auto& rec = metrics_.record(seeder_id_);
    rec.seeder = true;
    rec.upload_kbps = cfg_.seeder_upload_kbps;
    bw_.set_capacity(seeder_id_,
                     util::kbps_to_bytes_per_sec(cfg_.seeder_upload_kbps));
    avail_[seeder_id_].assign(piece_count_, 0);
    peers_[seeder_id_] = std::move(s);
    tracker_.announce(seeder_id_);
  }

  compliant_outstanding_ =
      arrivals_.size() - freerider_arrival_index_.size();
  freerider_outstanding_ = freerider_arrival_index_.size();

  // Periodic housekeeping: evaluates the free-rider stall timeout.
  struct HkDriver {
    Swarm* s;
    void operator()() const {
      s->check_done();
      if (!s->done_) s->sim_.schedule_in(50.0, *this);
    }
  };
  sim_.schedule_in(50.0, HkDriver{this});

  proto_.on_run_start();
  if (obs_ != nullptr) {
    obs_->emit({.t = sim_.now(),
                .kind = obs::EventKind::kPeerJoin,
                .aux = obs::kPeerFlagSeeder,
                .a = seeder_id_});
  }
  proto_.on_peer_join(seeder_id_);

  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    const SimTime t = arrivals_[i];
    sim_.schedule_at(t, [this, i, t] {
      ++arrivals_started_;
      join_leecher(i, t);
    });
  }

  check_done();
  while (!done_ && sim_.step()) {
    if (sim_.now() > cfg_.max_sim_time) break;
  }
}

}  // namespace tc::bt
