#include "src/bt/bitfield.h"

#include <bit>
#include <stdexcept>

namespace tc::bt {

Bitfield::Bitfield(std::size_t piece_count)
    : size_(piece_count), words_((piece_count + 63) / 64, 0) {}

bool Bitfield::get(PieceIndex i) const {
  if (i >= size_) throw std::out_of_range("Bitfield::get");
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void Bitfield::set(PieceIndex i) {
  if (i >= size_) throw std::out_of_range("Bitfield::set");
  std::uint64_t& w = words_[i / 64];
  const std::uint64_t bit = std::uint64_t{1} << (i % 64);
  if (!(w & bit)) {
    w |= bit;
    ++count_;
  }
}

void Bitfield::clear(PieceIndex i) {
  if (i >= size_) throw std::out_of_range("Bitfield::clear");
  std::uint64_t& w = words_[i / 64];
  const std::uint64_t bit = std::uint64_t{1} << (i % 64);
  if (w & bit) {
    w &= ~bit;
    --count_;
  }
}

PieceIndex Bitfield::first_missing() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t inv = ~words_[w];
    if (inv == 0) continue;
    const auto i = static_cast<PieceIndex>(
        w * 64 + static_cast<std::size_t>(std::countr_zero(inv)));
    return i < size_ ? i : static_cast<PieceIndex>(size_);
  }
  return static_cast<PieceIndex>(size_);
}

bool Bitfield::interested_in(const Bitfield& other) const {
  if (other.size_ != size_) throw std::invalid_argument("bitfield size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (other.words_[w] & ~words_[w]) return true;
  }
  return false;
}

std::vector<PieceIndex> Bitfield::missing_from(const Bitfield& other) const {
  if (other.size_ != size_) throw std::invalid_argument("bitfield size mismatch");
  std::vector<PieceIndex> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = other.words_[w] & ~words_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<PieceIndex>(w * 64 + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<PieceIndex> Bitfield::to_vector() const {
  std::vector<PieceIndex> out;
  out.reserve(count_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<PieceIndex>(w * 64 + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

net::BitfieldMsg Bitfield::to_message() const {
  net::BitfieldMsg m;
  m.piece_count = static_cast<std::uint32_t>(size_);
  m.bits.resize((size_ + 7) / 8, 0);
  for (PieceIndex i = 0; i < size_; ++i) {
    if (get(i)) m.bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return m;
}

Bitfield Bitfield::from_message(const net::BitfieldMsg& m) {
  Bitfield bf(m.piece_count);
  if (m.bits.size() < (m.piece_count + 7) / 8)
    throw std::invalid_argument("BitfieldMsg: short bit vector");
  for (PieceIndex i = 0; i < m.piece_count; ++i) {
    if ((m.bits[i / 8] >> (i % 8)) & 1u) bf.set(i);
  }
  return bf;
}

}  // namespace tc::bt
