// In-simulation peer state. Protocol-specific state (deficits, pending
// counters, chain membership, ...) lives in the protocol implementations,
// keyed by PeerId; this struct is only what every protocol shares.
#pragma once

#include <vector>

#include "src/bt/bitfield.h"
#include "src/net/peer_id.h"
#include "src/util/units.h"

namespace tc::bt {

using net::PeerId;
using util::SimTime;

struct Peer {
  PeerId id = net::kNoPeer;
  bool seeder = false;
  bool freerider = false;
  bool colluder = false;
  double upload_kbps = 0.0;

  Bitfield have;       // completed (decrypted) pieces — "F_A" in the paper
  Bitfield requested;  // in-flight or received-encrypted: not to be re-fetched

  std::vector<PeerId> neighbors;  // small (<= ~55): vector beats a set

  SimTime join_time = 0.0;
  bool active = true;

  bool is_neighbor(PeerId n) const {
    for (PeerId x : neighbors) {
      if (x == n) return true;
    }
    return false;
  }
};

}  // namespace tc::bt
