// Incentive-protocol plug-in interface. A Protocol owns all scheme-specific
// state and timers; the Swarm provides membership, neighbor management,
// bandwidth-accurate piece transfer, and metrics.
#pragma once

#include <string>

#include "src/bt/bitfield.h"
#include "src/net/peer_id.h"
#include "src/util/units.h"

namespace tc::bt {

class Swarm;
using net::PeerId;
using PieceIndex = net::PieceIndex;

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  // The protocol's natural exchange unit (paper §IV-A: 256 KiB pieces for
  // BitTorrent/PropShare, 64 KiB for T-Chain/FairTorrent).
  virtual util::ByteCount default_piece_bytes() const = 0;

  virtual void attach(Swarm& swarm) { swarm_ = &swarm; }

  // Lifecycle hooks. All ids refer to live peers unless stated otherwise.
  virtual void on_run_start() {}
  virtual void on_peer_join(PeerId) {}
  // Fires for finish-departures, attrition, and the old identity of a
  // whitewash. Peer state is still readable during the call.
  virtual void on_peer_depart(PeerId) {}
  // Abrupt failure: the peer vanished without a goodbye — no final
  // messages, no escrow handoff (fault injection / crash churn). Defaults
  // to the graceful-departure path for protocols that don't distinguish.
  virtual void on_peer_crash(PeerId id) { on_peer_depart(id); }
  // Whitewash: `fresh` is the new identity of the logical peer that was
  // `old`. Called after on_peer_depart(old) and before on_peer_join(fresh).
  virtual void on_peer_rekeyed(PeerId old_id, PeerId fresh) {
    (void)old_id;
    (void)fresh;
  }
  virtual void on_neighbor_added(PeerId a, PeerId b) {
    (void)a;
    (void)b;
  }
  virtual void on_neighbor_removed(PeerId a, PeerId b) {
    (void)a;
    (void)b;
  }
  // A peer finished decrypting/receiving a piece (it is now in `have`).
  virtual void on_piece_complete(PeerId peer, PieceIndex piece, PeerId from) {
    (void)peer;
    (void)piece;
    (void)from;
  }

 protected:
  Swarm* swarm_ = nullptr;
};

}  // namespace tc::bt
