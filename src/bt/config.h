// Swarm configuration. Defaults mirror the paper's setup (§IV-A), except
// file size, which benches scale down by default for single-core runs.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/faults.h"
#include "src/util/units.h"

namespace tc::bt {

// Piece selection discipline (§VI names streaming as future work; the
// sliding-window policy is the standard adaptation: prefer the rarest
// piece inside a playback window, advance the window with in-order
// progress).
enum class PiecePolicy {
  kRarestFirst,       // BitTorrent LRF (the paper's default)
  kSequentialWindow,  // streaming: rarest within a window after the playhead
};

struct SwarmConfig {
  // --- Content ------------------------------------------------------------
  util::ByteCount file_bytes = 16 * util::kMiB;   // paper: 128 MiB
  util::ByteCount piece_bytes = 64 * util::kKiB;  // T-Chain/FairTorrent: 64 KiB;
                                                  // BitTorrent/PropShare: 256 KiB
  PiecePolicy piece_policy = PiecePolicy::kRarestFirst;
  std::size_t stream_window = 16;  // pieces, for kSequentialWindow

  // --- Population -----------------------------------------------------------
  std::size_t leecher_count = 100;
  double freerider_fraction = 0.0;
  double seeder_upload_kbps = 6000.0;
  // Heterogeneous leecher classes, assigned round-robin (paper: 400..1200).
  std::vector<double> leecher_upload_kbps = {400, 600, 800, 1000, 1200};

  // --- Overlay --------------------------------------------------------------
  std::size_t tracker_list_size = 50;
  std::size_t max_neighbors = 55;
  std::size_t min_neighbors = 30;
  double control_latency = 0.05;  // seconds for HAVE/receipt/key messages

  // --- Protocol timers --------------------------------------------------------
  double rechoke_period = 10.0;
  double optimistic_period = 30.0;
  std::size_t unchoke_slots = 4;  // regular unchokes (k in the paper's §II-A)

  // --- Attack model ------------------------------------------------------------
  bool freerider_large_view = true;
  bool freerider_whitewash = true;
  bool freerider_collude = false;  // T-Chain false-receipt collusion

  // --- T-Chain knobs ------------------------------------------------------------
  int pending_cap = 2;                  // flow-control k (§II-D2)
  bool opportunistic_seeding = true;    // §II-D3
  bool allow_direct_reciprocity = true; // ablation: force indirect payees
  std::size_t seeder_chain_slots = 8;  // concurrent chains the seeder feeds

  // --- Fault injection / robustness -------------------------------------------
  // All faults default OFF; a default FaultPlan leaves every run
  // bit-identical to a fault-free build (the injector is never consulted).
  sim::FaultPlan faults;
  // Per-transaction watchdog (0 = disabled): a T-Chain exchange stuck
  // awaiting its key or reciprocation for this long is re-kicked up to
  // tx_max_retries times, then torn down so the piece can be re-fetched
  // from another donor. Enable alongside faults; without it a lost control
  // message waits for the coarse global_stall_timeout valve.
  double tx_timeout = 0.0;
  int tx_max_retries = 2;

  // --- Scenario variants ------------------------------------------------------
  // Fig 13: a finished leecher is replaced by a fresh newcomer immediately.
  bool replace_on_finish = false;
  // Fig 6(b): fraction of pieces each leecher starts with.
  double initial_piece_fraction = 0.0;

  // --- Run control ----------------------------------------------------------
  std::uint64_t seed = 1;
  double max_sim_time = 500'000.0;
  // After compliant leechers finish, keep running so free-riders can limp
  // to completion off the seeder (the paper measures their completion
  // times); give up once no free-rider completes a piece for this long.
  bool wait_for_freeriders = true;
  double freerider_stall_timeout = 1500.0;
  // Safety valve: if NO leecher completes a piece for this long after all
  // arrivals happened, declare the run over (remaining peers recorded as
  // unfinished) instead of burning simulated time to max_sim_time.
  double global_stall_timeout = 10'000.0;

  std::size_t piece_count() const {
    return static_cast<std::size_t>((file_bytes + piece_bytes - 1) / piece_bytes);
  }
};

}  // namespace tc::bt
