// Piece-possession bitfield with O(words) set operations. Used for every
// peer's completed-piece set and for interest / Local-Rarest-First queries.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/message.h"
#include "src/util/bytes.h"

namespace tc::bt {

using PieceIndex = net::PieceIndex;

class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(std::size_t piece_count);

  std::size_t size() const { return size_; }
  bool get(PieceIndex i) const;
  void set(PieceIndex i);
  void clear(PieceIndex i);
  std::size_t count() const { return count_; }
  bool complete() const { return count_ == size_ && size_ > 0; }
  bool empty() const { return count_ == 0; }

  // Index of the first unset bit, or size() if complete (the streaming
  // "playhead": everything before it is contiguous in-order progress).
  PieceIndex first_missing() const;

  // True if `other` has at least one piece this bitfield lacks
  // ("I am interested in other").
  bool interested_in(const Bitfield& other) const;

  // Pieces that `other` has and this lacks.
  std::vector<PieceIndex> missing_from(const Bitfield& other) const;

  // All set pieces.
  std::vector<PieceIndex> to_vector() const;

  // Wire encoding (bit i = byte i/8, LSB first) for BitfieldMsg.
  net::BitfieldMsg to_message() const;
  static Bitfield from_message(const net::BitfieldMsg& m);

  bool operator==(const Bitfield&) const = default;

 private:
  std::size_t size_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tc::bt
