// Simulation units and conversions.
//
// Time is simulated seconds (double). Bandwidth follows the paper's
// convention: rates are quoted in Kbps (kilobits/second, 1000 bits) and
// data sizes in bytes / KB / MB with 1 KB = 1024 bytes.
#pragma once

#include <cstdint>

namespace tc::util {

using SimTime = double;   // seconds
using ByteCount = std::int64_t;

constexpr ByteCount kKiB = 1024;
constexpr ByteCount kMiB = 1024 * kKiB;

// Kbps -> bytes per second (1 Kbps = 1000 bits/s = 125 B/s).
constexpr double kbps_to_bytes_per_sec(double kbps) { return kbps * 125.0; }

// bytes/s -> Kbps.
constexpr double bytes_per_sec_to_kbps(double bps) { return bps / 125.0; }

}  // namespace tc::util
