#include "src/util/bytes.h"

#include <cstring>
#include <stdexcept>

namespace tc::util {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::blob(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b.data(), b.size());
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteReader::need(std::size_t n) const {
  if (len_ - pos_ < n) throw std::out_of_range("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const auto hi = u8();
  const auto lo = u8();
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t hi = u16();
  const std::uint32_t lo = u16();
  return (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Bytes ByteReader::blob() {
  const std::uint32_t n = u32();
  need(n);
  Bytes out(buf_ + pos_, buf_ + pos_ + n);
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(buf_ + pos_), n);
  pos_ += n;
  return out;
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex character");
}
}  // namespace

std::string to_hex(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

std::string to_hex(const Bytes& b) { return to_hex(b.data(), b.size()); }

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_value(hex[i]) << 4) |
                                            hex_value(hex[i + 1])));
  }
  return out;
}

}  // namespace tc::util
