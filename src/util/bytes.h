// Byte-buffer codecs: big-endian primitive encoding used by the wire
// protocol (src/net/message.*) and the TCP transport. Deliberately small
// and exception-checked so malformed frames cannot read out of bounds.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tc::util {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  // Length-prefixed (u32) blob / string.
  void blob(const Bytes& b);
  void str(std::string_view s);
  // Raw bytes, no length prefix.
  void raw(const std::uint8_t* data, std::size_t len);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Throws std::out_of_range on truncated input.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf.data()), len_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t len) : buf_(data), len_(len) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  Bytes blob();
  std::string str();

  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }

 private:
  void need(std::size_t n) const;
  const std::uint8_t* buf_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

// Lowercase hex encoding (debugging, key fingerprints).
std::string to_hex(const Bytes& b);
std::string to_hex(const std::uint8_t* data, std::size_t len);
Bytes from_hex(std::string_view hex);  // throws std::invalid_argument

}  // namespace tc::util
