// Minimal command-line flag parser for bench/example binaries.
// Supports "--name value", "--name=value" and boolean "--name".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tc::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tc::util
