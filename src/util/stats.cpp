#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tc::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return t_quantile_975(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

double t_quantile_975(std::size_t df) {
  // Two-sided 95% (upper 97.5%) quantiles of the Student-t distribution.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df < std::size(kTable)) return kTable[df];
  if (df < 40) return 2.03;
  if (df < 60) return 2.01;
  if (df < 120) return 1.98;
  return 1.96;
}

void Distribution::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Distribution::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Distribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Distribution::percentile(double p) const {
  if (samples_.empty()) throw std::out_of_range("percentile of empty distribution");
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= samples_.size()) return samples_.back();
  return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
}

double Distribution::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Distribution::cdf_points(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = static_cast<double>(i + 1) / static_cast<double>(points);
    out.emplace_back(percentile(p), p);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("bad histogram range");
}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto i = static_cast<std::ptrdiff_t>((x - lo_) / w);
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace tc::util
