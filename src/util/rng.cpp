#include "src/util/rng.h"

#include <cmath>

namespace tc::util {

std::uint64_t split_mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = split_mix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

std::size_t Rng::index(std::size_t n) {
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::exponential(double rate) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots are a uniform sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace tc::util
