// Lightweight leveled logging. Simulation-rate hot paths must not pay for
// disabled log statements, so the macro checks the level before evaluating
// the stream expression.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace tc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
const char* log_level_name(LogLevel level);

// Internal: emit one formatted line to stderr.
void log_line(LogLevel level, const std::string& msg);

}  // namespace tc::util

#define TC_LOG(level, expr)                                             \
  do {                                                                  \
    if (static_cast<int>(level) >= static_cast<int>(::tc::util::log_level())) { \
      std::ostringstream tc_log_oss;                                    \
      tc_log_oss << expr;                                               \
      ::tc::util::log_line(level, tc_log_oss.str());                    \
    }                                                                   \
  } while (0)

#define TC_DEBUG(expr) TC_LOG(::tc::util::LogLevel::kDebug, expr)
#define TC_INFO(expr) TC_LOG(::tc::util::LogLevel::kInfo, expr)
#define TC_WARN(expr) TC_LOG(::tc::util::LogLevel::kWarn, expr)
#define TC_ERROR(expr) TC_LOG(::tc::util::LogLevel::kError, expr)
