// Deterministic pseudo-random number generation for simulations.
//
// The simulator must be exactly reproducible from a seed, so we use our own
// xoshiro256** generator (public-domain algorithm by Blackman & Vigna)
// seeded via SplitMix64 instead of std::mt19937, whose distributions are
// not guaranteed to be identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>
#include <cstddef>
#include <cmath>

namespace tc::util {

// SplitMix64: used to expand a 64-bit seed into xoshiro state.
// Also usable standalone as a fast hash/mixing function.
std::uint64_t split_mix64(std::uint64_t& state);

// xoshiro256** 1.0 with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Raw 64 bits of pseudo-randomness.
  std::uint64_t next_u64();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Exponentially distributed with the given rate (mean 1/rate).
  double exponential(double rate);

  // Standard normal via Box-Muller (fixed two uniform draws, so the stream
  // position stays predictable for determinism tests).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Uniformly chosen element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  // Sample k distinct indices from [0, n) without replacement
  // (k is clamped to n). Order is random.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Derive an independent child generator; convenient for giving every
  // simulated peer its own stream while remaining reproducible.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace tc::util
