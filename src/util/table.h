// ASCII table / CSV reporters used by the bench harness to print the rows
// and series the paper's tables and figures report.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tc::util {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 1);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// snprintf-based helpers (GCC 12 has no std::format).
std::string format_double(double v, int precision);
std::string format_sci(double v, int precision);

}  // namespace tc::util
