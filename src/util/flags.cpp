#include "src/util/flags.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace tc::util {

namespace {

// "-n" and "--name" are flags; "-3" and "-.5" are (negative-number)
// values and stay positional.
bool is_flag_token(const std::string& s) {
  if (s.size() < 2 || s[0] != '-') return false;
  const char c = s[1] == '-' ? (s.size() > 2 ? s[2] : '\0') : s[1];
  return std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.';
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag_token(arg)) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(arg[1] == '-' ? 2 : 1);
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && !is_flag_token(argv[i + 1])) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace tc::util
