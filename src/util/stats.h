// Streaming statistics, confidence intervals, CDFs and histograms used by
// the evaluation harness to report means with 95% confidence intervals the
// way the paper's figures do.
#pragma once

#include <cstddef>
#include <vector>

namespace tc::util {

// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  // Half-width of the 95% confidence interval of the mean, using a
  // Student-t quantile (exactly what the paper's error bars show).
  double ci95_half_width() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Two-sided 97.5% Student-t quantile for the given degrees of freedom.
// Table-based for small df, asymptotic 1.96 beyond.
double t_quantile_975(std::size_t df);

// Empirical distribution of a batch of samples.
class Distribution {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  // p in [0,1]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }

  // Evaluate the empirical CDF at x: fraction of samples <= x.
  double cdf_at(double x) const;

  // (value, cumulative fraction) pairs at `points` evenly spaced sample
  // quantiles — the series the paper's CDF figures plot.
  std::vector<std::pair<double, double>> cdf_points(std::size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// edge bins so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tc::util
