#include "src/util/logging.h"

namespace tc::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& msg) {
  std::cerr << "[" << log_level_name(level) << "] " << msg << "\n";
}

}  // namespace tc::util
