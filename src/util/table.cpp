#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

namespace tc::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void AsciiTable::add_row_numeric(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < header_.size(); ++c)
      os << std::string(width[c] + 2, '-') << "+";
    os << '\n';
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void AsciiTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace tc::util
