#include "src/net/message.h"

#include <stdexcept>

#include "src/crypto/hmac.h"

namespace tc::net {

MsgType message_type(const Message& m) {
  return static_cast<MsgType>(m.index() + 1);
}

const char* message_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHandshake: return "handshake";
    case MsgType::kBitfield: return "bitfield";
    case MsgType::kHave: return "have";
    case MsgType::kEncryptedPiece: return "encrypted-piece";
    case MsgType::kPlainPiece: return "plain-piece";
    case MsgType::kReceipt: return "receipt";
    case MsgType::kKeyRelease: return "key-release";
    case MsgType::kPayeeReassign: return "payee-reassign";
    case MsgType::kAnnounce: return "announce";
    case MsgType::kPeerList: return "peer-list";
    case MsgType::kPayeeNotify: return "payee-notify";
  }
  return "?";
}

namespace {

void encode_body(util::ByteWriter& w, const HandshakeMsg& m) {
  w.u32(m.peer);
  w.str(m.swarm);
}

void encode_body(util::ByteWriter& w, const BitfieldMsg& m) {
  w.u32(m.piece_count);
  w.blob(m.bits);
}

void encode_body(util::ByteWriter& w, const HaveMsg& m) { w.u32(m.piece); }

void encode_body(util::ByteWriter& w, const EncryptedPieceMsg& m) {
  w.u64(m.tx);
  w.u64(m.chain);
  w.u32(m.donor);
  w.u32(m.requestor);
  w.u32(m.payee);
  w.u32(m.piece);
  w.u32(m.prev_donor);
  w.u32(m.prev_piece);
  w.blob(m.ciphertext);
}

void encode_body(util::ByteWriter& w, const PlainPieceMsg& m) {
  w.u64(m.tx);
  w.u64(m.chain);
  w.u32(m.donor);
  w.u32(m.piece);
  w.u32(m.prev_donor);
  w.u32(m.prev_piece);
  w.blob(m.data);
}

void encode_body(util::ByteWriter& w, const ReceiptMsg& m) {
  w.u64(m.reciprocated_tx);
  w.u32(m.payee);
  w.u32(m.requestor);
  w.u32(m.piece);
  w.raw(m.mac.data(), m.mac.size());
}

void encode_body(util::ByteWriter& w, const KeyReleaseMsg& m) {
  w.u64(m.tx);
  w.u32(m.piece);
  w.blob(m.key);
}

void encode_body(util::ByteWriter& w, const PayeeReassignMsg& m) {
  w.u64(m.tx);
  w.u32(m.new_payee);
}

void encode_body(util::ByteWriter& w, const AnnounceMsg& m) {
  w.u32(m.peer);
  w.str(m.swarm);
  w.u16(m.port);
  w.u8(m.event);
}

void encode_body(util::ByteWriter& w, const PeerListMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.peers.size()));
  for (const PeerEndpoint& e : m.peers) {
    w.u32(e.peer);
    w.u16(e.port);
  }
}

void encode_body(util::ByteWriter& w, const PayeeNotifyMsg& m) {
  w.u64(m.tx);
  w.u64(m.chain);
  w.u32(m.donor);
  w.u32(m.requestor);
  w.u32(m.piece);
}

HandshakeMsg decode_handshake(util::ByteReader& r) {
  HandshakeMsg m;
  m.peer = r.u32();
  m.swarm = r.str();
  return m;
}

BitfieldMsg decode_bitfield(util::ByteReader& r) {
  BitfieldMsg m;
  m.piece_count = r.u32();
  m.bits = r.blob();
  return m;
}

HaveMsg decode_have(util::ByteReader& r) { return HaveMsg{r.u32()}; }

EncryptedPieceMsg decode_encrypted(util::ByteReader& r) {
  EncryptedPieceMsg m;
  m.tx = r.u64();
  m.chain = r.u64();
  m.donor = r.u32();
  m.requestor = r.u32();
  m.payee = r.u32();
  m.piece = r.u32();
  m.prev_donor = r.u32();
  m.prev_piece = r.u32();
  m.ciphertext = r.blob();
  return m;
}

PlainPieceMsg decode_plain(util::ByteReader& r) {
  PlainPieceMsg m;
  m.tx = r.u64();
  m.chain = r.u64();
  m.donor = r.u32();
  m.piece = r.u32();
  m.prev_donor = r.u32();
  m.prev_piece = r.u32();
  m.data = r.blob();
  return m;
}

ReceiptMsg decode_receipt(util::ByteReader& r) {
  ReceiptMsg m;
  m.reciprocated_tx = r.u64();
  m.payee = r.u32();
  m.requestor = r.u32();
  m.piece = r.u32();
  for (auto& b : m.mac) b = r.u8();
  return m;
}

KeyReleaseMsg decode_key(util::ByteReader& r) {
  KeyReleaseMsg m;
  m.tx = r.u64();
  m.piece = r.u32();
  m.key = r.blob();
  return m;
}

PayeeReassignMsg decode_reassign(util::ByteReader& r) {
  PayeeReassignMsg m;
  m.tx = r.u64();
  m.new_payee = r.u32();
  return m;
}

AnnounceMsg decode_announce(util::ByteReader& r) {
  AnnounceMsg m;
  m.peer = r.u32();
  m.swarm = r.str();
  m.port = r.u16();
  m.event = r.u8();
  return m;
}

PeerListMsg decode_peer_list(util::ByteReader& r) {
  PeerListMsg m;
  const std::uint32_t n = r.u32();
  // Each endpoint is 6 bytes on the wire; bound the reserve by what the
  // buffer can actually hold so a forged count cannot balloon memory.
  if (r.remaining() / 6 < n)
    throw std::out_of_range("decode_message: peer list count exceeds frame");
  m.peers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PeerEndpoint e;
    e.peer = r.u32();
    e.port = r.u16();
    m.peers.push_back(e);
  }
  return m;
}

PayeeNotifyMsg decode_payee_notify(util::ByteReader& r) {
  PayeeNotifyMsg m;
  m.tx = r.u64();
  m.chain = r.u64();
  m.donor = r.u32();
  m.requestor = r.u32();
  m.piece = r.u32();
  return m;
}

}  // namespace

util::Bytes encode_message(const Message& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(message_type(m)));
  std::visit([&](const auto& body) { encode_body(w, body); }, m);
  return w.take();
}

Message decode_message(const util::Bytes& wire) {
  util::ByteReader r(wire);
  const auto type = static_cast<MsgType>(r.u8());
  Message out;
  switch (type) {
    case MsgType::kHandshake: out = decode_handshake(r); break;
    case MsgType::kBitfield: out = decode_bitfield(r); break;
    case MsgType::kHave: out = decode_have(r); break;
    case MsgType::kEncryptedPiece: out = decode_encrypted(r); break;
    case MsgType::kPlainPiece: out = decode_plain(r); break;
    case MsgType::kReceipt: out = decode_receipt(r); break;
    case MsgType::kKeyRelease: out = decode_key(r); break;
    case MsgType::kPayeeReassign: out = decode_reassign(r); break;
    case MsgType::kAnnounce: out = decode_announce(r); break;
    case MsgType::kPeerList: out = decode_peer_list(r); break;
    case MsgType::kPayeeNotify: out = decode_payee_notify(r); break;
    default:
      throw std::invalid_argument("decode_message: unknown message type");
  }
  if (!r.done())
    throw std::invalid_argument("decode_message: trailing bytes");
  return out;
}

crypto::Digest256 receipt_mac(const util::Bytes& mac_key, TxId reciprocated_tx,
                              PeerId payee, PeerId requestor,
                              PieceIndex piece) {
  util::ByteWriter w;
  w.str("tchain-receipt-v1");
  w.u64(reciprocated_tx);
  w.u32(payee);
  w.u32(requestor);
  w.u32(piece);
  return crypto::hmac_sha256(mac_key, w.data());
}

}  // namespace tc::net
