#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace tc::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

timeval to_timeval(double seconds) {
  if (seconds < 0) seconds = 0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  return tv;
}

// Writes until done or the socket refuses more (EAGAIN). Returns bytes
// written; throws only on hard errors. MSG_NOSIGNAL: a peer that closed
// mid-frame must come back as EPIPE, not as a fatal SIGPIPE.
std::size_t write_some(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EPIPE)
        throw std::runtime_error("send: peer closed connection");
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return sent;
}

// Returns false on clean EOF at a frame boundary.
bool read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("read: timed out waiting for peer");
      throw_errno("read");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("read: truncated frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0)
    throw_errno("fcntl(F_SETFL)");
}

}  // namespace

FrameSocket::~FrameSocket() { close(); }

FrameSocket::FrameSocket(FrameSocket&& other) noexcept
    : fd_(other.fd_),
      outbox_(std::move(other.outbox_)),
      outbox_off_(other.outbox_off_) {
  other.fd_ = -1;
  other.outbox_.clear();
  other.outbox_off_ = 0;
}

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    outbox_ = std::move(other.outbox_);
    outbox_off_ = other.outbox_off_;
    other.fd_ = -1;
    other.outbox_.clear();
    other.outbox_off_ = 0;
  }
  return *this;
}

void FrameSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  outbox_.clear();
  outbox_off_ = 0;
}

void FrameSocket::set_nonblocking(bool on) {
  if (!valid()) throw std::runtime_error("set_nonblocking on closed socket");
  set_fd_nonblocking(fd_, on);
}

void FrameSocket::set_recv_timeout(double seconds) {
  if (!valid()) throw std::runtime_error("set_recv_timeout on closed socket");
  const timeval tv = to_timeval(seconds);  // zero = block indefinitely
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    throw_errno("setsockopt(SO_RCVTIMEO)");
}

std::size_t FrameSocket::send_frame(const util::Bytes& payload) {
  if (!valid()) throw std::runtime_error("send_frame on closed socket");
  if (payload.size() > kMaxFrame)
    throw std::runtime_error("send_frame: oversized frame");
  const auto n = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t hdr[4] = {
      static_cast<std::uint8_t>(n >> 24), static_cast<std::uint8_t>(n >> 16),
      static_cast<std::uint8_t>(n >> 8), static_cast<std::uint8_t>(n)};
  outbox_.insert(outbox_.end(), hdr, hdr + 4);
  outbox_.insert(outbox_.end(), payload.begin(), payload.end());
  return flush_pending();
}

std::size_t FrameSocket::flush_pending() {
  if (!valid() || pending_bytes() == 0) return 0;
  const std::size_t n =
      write_some(fd_, outbox_.data() + outbox_off_, pending_bytes());
  outbox_off_ += n;
  if (outbox_off_ == outbox_.size()) {
    outbox_.clear();
    outbox_off_ = 0;
  } else if (outbox_off_ >= 64 * 1024 && outbox_off_ * 2 >= outbox_.size()) {
    // Reclaim the consumed prefix once it dominates the buffer.
    outbox_.erase(outbox_.begin(),
                  outbox_.begin() + static_cast<std::ptrdiff_t>(outbox_off_));
    outbox_off_ = 0;
  }
  return n;
}

std::optional<util::Bytes> FrameSocket::recv_frame() {
  if (!valid()) throw std::runtime_error("recv_frame on closed socket");
  std::uint8_t hdr[4];
  if (!read_all(fd_, hdr, 4)) return std::nullopt;
  const std::uint32_t n = (std::uint32_t{hdr[0]} << 24) |
                          (std::uint32_t{hdr[1]} << 16) |
                          (std::uint32_t{hdr[2]} << 8) | std::uint32_t{hdr[3]};
  if (n > kMaxFrame) throw std::runtime_error("recv_frame: oversized frame");
  util::Bytes payload(n);
  if (n > 0 && !read_all(fd_, payload.data(), n))
    throw std::runtime_error("recv_frame: truncated frame");
  return payload;
}

std::optional<Message> FrameSocket::recv_message() {
  auto frame = recv_frame();
  if (!frame) return std::nullopt;
  return decode_message(*frame);
}

FrameSocket FrameSocket::connect_to(const std::string& host,
                                    std::uint16_t port,
                                    double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (timeout_seconds > 0) {
    // SO_SNDTIMEO bounds the three-way handshake on Linux: connect()
    // fails with EINPROGRESS/EWOULDBLOCK once the timer expires.
    const timeval tv = to_timeval(timeout_seconds);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("connect_to: bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    if (saved == EINPROGRESS || saved == EWOULDBLOCK || saved == EAGAIN)
      throw std::runtime_error("connect: timed out");
    errno = saved;
    throw_errno("connect");
  }
  if (timeout_seconds > 0) {
    // The timeout was for the handshake only; sends block normally again.
    const timeval off = to_timeval(0);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &off, sizeof(off));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FrameSocket(fd);
}

Listener::Listener(std::uint16_t port, bool nonblocking)
    : nonblocking_(nonblocking) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd_, 64) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
  if (nonblocking_) set_fd_nonblocking(fd_, true);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

FrameSocket Listener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FrameSocket(fd);
}

std::optional<FrameSocket> Listener::try_accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED)
      return std::nullopt;
    throw_errno("accept");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  FrameSocket s(fd);
  if (nonblocking_) s.set_nonblocking(true);
  return s;
}

}  // namespace tc::net
