#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace tc::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

timeval to_timeval(double seconds) {
  if (seconds < 0) seconds = 0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  return tv;
}

// MSG_NOSIGNAL: a peer that closed mid-frame must come back as EPIPE,
// not as a fatal SIGPIPE.
void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE)
        throw std::runtime_error("send: peer closed connection");
      throw_errno("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Returns false on clean EOF at a frame boundary.
bool read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("read: timed out waiting for peer");
      throw_errno("read");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("read: truncated frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FrameSocket::~FrameSocket() { close(); }

FrameSocket::FrameSocket(FrameSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FrameSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameSocket::set_recv_timeout(double seconds) {
  if (!valid()) throw std::runtime_error("set_recv_timeout on closed socket");
  const timeval tv = to_timeval(seconds);  // zero = block indefinitely
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    throw_errno("setsockopt(SO_RCVTIMEO)");
}

void FrameSocket::send_frame(const util::Bytes& payload) {
  if (!valid()) throw std::runtime_error("send_frame on closed socket");
  std::uint8_t hdr[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  hdr[0] = static_cast<std::uint8_t>(n >> 24);
  hdr[1] = static_cast<std::uint8_t>(n >> 16);
  hdr[2] = static_cast<std::uint8_t>(n >> 8);
  hdr[3] = static_cast<std::uint8_t>(n);
  write_all(fd_, hdr, 4);
  write_all(fd_, payload.data(), payload.size());
}

std::optional<util::Bytes> FrameSocket::recv_frame() {
  if (!valid()) throw std::runtime_error("recv_frame on closed socket");
  std::uint8_t hdr[4];
  if (!read_all(fd_, hdr, 4)) return std::nullopt;
  const std::uint32_t n = (std::uint32_t{hdr[0]} << 24) |
                          (std::uint32_t{hdr[1]} << 16) |
                          (std::uint32_t{hdr[2]} << 8) | std::uint32_t{hdr[3]};
  constexpr std::uint32_t kMaxFrame = 64u * 1024 * 1024;
  if (n > kMaxFrame) throw std::runtime_error("recv_frame: oversized frame");
  util::Bytes payload(n);
  if (n > 0 && !read_all(fd_, payload.data(), n))
    throw std::runtime_error("recv_frame: truncated frame");
  return payload;
}

std::optional<Message> FrameSocket::recv_message() {
  auto frame = recv_frame();
  if (!frame) return std::nullopt;
  return decode_message(*frame);
}

FrameSocket FrameSocket::connect_to(const std::string& host,
                                    std::uint16_t port,
                                    double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (timeout_seconds > 0) {
    // SO_SNDTIMEO bounds the three-way handshake on Linux: connect()
    // fails with EINPROGRESS/EWOULDBLOCK once the timer expires.
    const timeval tv = to_timeval(timeout_seconds);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("connect_to: bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    if (saved == EINPROGRESS || saved == EWOULDBLOCK || saved == EAGAIN)
      throw std::runtime_error("connect: timed out");
    errno = saved;
    throw_errno("connect");
  }
  if (timeout_seconds > 0) {
    // The timeout was for the handshake only; sends block normally again.
    const timeval off = to_timeval(0);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &off, sizeof(off));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FrameSocket(fd);
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd_, 16) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

FrameSocket Listener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FrameSocket(fd);
}

}  // namespace tc::net
