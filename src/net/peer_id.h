// Peer identity. Identities are cheap to mint by design — whitewashing and
// Sybil attacks hinge on exactly that — so PeerId is just a monotonically
// assigned integer and the attack models mint fresh ones at will.
#pragma once

#include <cstdint>

namespace tc::net {

using PeerId = std::uint32_t;

constexpr PeerId kNoPeer = 0xffffffffu;

}  // namespace tc::net
