// BitTorrent-style tracker: keeps the swarm membership and answers
// neighbor-list requests with up to `list_size` randomly selected members
// (50 in the paper's setup). Purely a rendezvous service — it plays no role
// in incentive enforcement, matching T-Chain's no-trusted-third-party goal.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/peer_id.h"
#include "src/util/rng.h"

namespace tc::net {

class Tracker {
 public:
  explicit Tracker(std::size_t list_size = 50) : list_size_(list_size) {}

  // `now` stamps the membership for prune(); callers without a clock (the
  // simulator's rendezvous path) use the default and never prune.
  void announce(PeerId peer, double now = 0.0);
  void depart(PeerId peer);
  bool contains(PeerId peer) const { return members_.count(peer) > 0; }
  std::size_t size() const { return members_.size(); }

  // Drops every member whose last announce is older than `window` seconds
  // before `now`, so restarts and crashes don't leave dead peers in the
  // neighbor lists forever. Returns the pruned ids (ascending, for
  // deterministic logging/tests).
  std::vector<PeerId> prune(double now, double window);

  // Up to list_size() random members, excluding the requester itself.
  // The requester need not be announced (a newcomer's first request).
  std::vector<PeerId> neighbor_list(PeerId requester, util::Rng& rng) const;
  std::vector<PeerId> neighbor_list(PeerId requester, util::Rng& rng,
                                    std::size_t count) const;

  std::size_t list_size() const { return list_size_; }

 private:
  std::size_t list_size_;
  std::unordered_set<PeerId> members_;
  std::unordered_map<PeerId, double> last_announce_;
  // Dense mirror of members_ for O(k) sampling.
  std::vector<PeerId> dense_;
  mutable bool dense_dirty_ = false;
};

}  // namespace tc::net
