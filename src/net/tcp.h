// TCP transport with length-prefixed frames.
//
// The paper evaluates T-Chain in simulation; this transport exists to show
// the protocol runs as specified over real sockets. Two usage modes:
//
//  * Blocking (default): send_frame writes the whole frame before
//    returning, recv_frame blocks for a whole frame. Used by tests and
//    the original triangle demo.
//  * Non-blocking (set_nonblocking(true)): send_frame queues whatever the
//    kernel won't take and returns the bytes it managed to write; the
//    caller drains the backlog with flush_pending() when the socket
//    becomes writable again (the src/rt reactor drives this off EPOLLOUT).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/net/message.h"
#include "src/util/bytes.h"

namespace tc::net {

// Upper bound on a frame body; enforced by recv_frame and by the reactor's
// incremental frame parser so a corrupt length prefix cannot trigger a
// multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFrame = 64u * 1024 * 1024;

// RAII wrapper over a connected stream socket.
class FrameSocket {
 public:
  FrameSocket() = default;
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket();

  FrameSocket(FrameSocket&& other) noexcept;
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  // Toggles O_NONBLOCK. In non-blocking mode sends never block: bytes the
  // kernel refuses (EAGAIN / short write) are buffered internally.
  void set_nonblocking(bool on);

  // Caps how long recv_frame may block (SO_RCVTIMEO); an expired wait
  // throws std::runtime_error mentioning "timed out" instead of hanging
  // forever on a silent peer. seconds <= 0 restores indefinite blocking.
  void set_recv_timeout(double seconds);

  // Queues the 4-byte length prefix plus payload and writes as much as the
  // socket accepts. Returns the bytes handed to the kernel during this
  // call (which may include backlog from earlier frames). On a blocking
  // socket this is the whole frame; on a non-blocking socket the remainder
  // stays buffered until flush_pending(). Writes use MSG_NOSIGNAL, so a
  // peer that vanished mid-exchange surfaces as an exception (EPIPE),
  // never as a process-killing SIGPIPE.
  std::size_t send_frame(const util::Bytes& payload);

  // Retries the buffered backlog; returns bytes written. Safe to call with
  // nothing pending (returns 0).
  std::size_t flush_pending();
  // Bytes queued but not yet accepted by the kernel.
  std::size_t pending_bytes() const { return outbox_.size() - outbox_off_; }

  // Returns nullopt on orderly peer shutdown.
  std::optional<util::Bytes> recv_frame();

  void send_message(const Message& m) { send_frame(encode_message(m)); }
  std::optional<Message> recv_message();

  // timeout_seconds > 0 bounds the connect attempt; 0 blocks indefinitely.
  static FrameSocket connect_to(const std::string& host, std::uint16_t port,
                                double timeout_seconds = 0.0);

 private:
  int fd_ = -1;
  // Unsent bytes (header+payload concatenation); outbox_off_ marks the
  // consumed prefix so flushing is O(written), not O(queue).
  util::Bytes outbox_;
  std::size_t outbox_off_ = 0;
};

class Listener {
 public:
  // Binds to 127.0.0.1:port; port 0 picks an ephemeral port. SO_REUSEADDR
  // is set before bind so a rebind inside TIME_WAIT succeeds. With
  // nonblocking=true the listening fd is O_NONBLOCK (accept never blocks)
  // and accepted sockets start in non-blocking mode too.
  explicit Listener(std::uint16_t port, bool nonblocking = false);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  // Blocking accept; throws on error (including EAGAIN on a non-blocking
  // listener — use try_accept there).
  FrameSocket accept();
  // Non-blocking accept: nullopt when no connection is pending.
  std::optional<FrameSocket> try_accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  bool nonblocking_ = false;
};

}  // namespace tc::net
