// Minimal blocking TCP transport with length-prefixed frames.
//
// The paper evaluates T-Chain in simulation; this transport exists to show
// the protocol runs as specified over real sockets (examples/tcp_triangle
// performs a full triangle exchange between three endpoints on loopback).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/net/message.h"
#include "src/util/bytes.h"

namespace tc::net {

// RAII wrapper over a connected stream socket.
class FrameSocket {
 public:
  FrameSocket() = default;
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket();

  FrameSocket(FrameSocket&& other) noexcept;
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  void close();

  // Caps how long recv_frame may block (SO_RCVTIMEO); an expired wait
  // throws std::runtime_error mentioning "timed out" instead of hanging
  // forever on a silent peer. seconds <= 0 restores indefinite blocking.
  void set_recv_timeout(double seconds);

  // Blocking. Throws std::runtime_error on I/O failure. Writes use
  // MSG_NOSIGNAL, so a peer that vanished mid-exchange surfaces as an
  // exception (EPIPE), never as a process-killing SIGPIPE.
  void send_frame(const util::Bytes& payload);
  // Returns nullopt on orderly peer shutdown.
  std::optional<util::Bytes> recv_frame();

  void send_message(const Message& m) { send_frame(encode_message(m)); }
  std::optional<Message> recv_message();

  // timeout_seconds > 0 bounds the connect attempt; 0 blocks indefinitely.
  static FrameSocket connect_to(const std::string& host, std::uint16_t port,
                                double timeout_seconds = 0.0);

 private:
  int fd_ = -1;
};

class Listener {
 public:
  // Binds to 127.0.0.1:port; port 0 picks an ephemeral port.
  explicit Listener(std::uint16_t port);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }
  FrameSocket accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace tc::net
