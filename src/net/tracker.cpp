#include "src/net/tracker.h"

#include <algorithm>

namespace tc::net {

void Tracker::announce(PeerId peer, double now) {
  if (members_.insert(peer).second) {
    dense_.push_back(peer);
  }
  last_announce_[peer] = now;
}

void Tracker::depart(PeerId peer) {
  if (members_.erase(peer) > 0) dense_dirty_ = true;
  last_announce_.erase(peer);
}

std::vector<PeerId> Tracker::prune(double now, double window) {
  std::vector<PeerId> stale;
  for (const auto& [peer, seen] : last_announce_) {  // det-ok: collected then sorted
    if (now - seen > window) stale.push_back(peer);
  }
  std::sort(stale.begin(), stale.end());
  for (PeerId p : stale) depart(p);
  return stale;
}

std::vector<PeerId> Tracker::neighbor_list(PeerId requester,
                                           util::Rng& rng) const {
  return neighbor_list(requester, rng, list_size_);
}

std::vector<PeerId> Tracker::neighbor_list(PeerId requester, util::Rng& rng,
                                           std::size_t count) const {
  if (dense_dirty_) {
    // Compact out departed members lazily so departures stay O(1).
    auto* self = const_cast<Tracker*>(this);
    self->dense_.erase(
        std::remove_if(self->dense_.begin(), self->dense_.end(),
                       [&](PeerId p) { return members_.count(p) == 0; }),
        self->dense_.end());
    self->dense_dirty_ = false;
  }

  std::vector<PeerId> out;
  const std::size_t eligible =
      dense_.size() - (members_.count(requester) ? 1 : 0);
  const std::size_t want = std::min(count, eligible);
  if (want == 0) return out;
  out.reserve(want);

  if (want * 3 >= dense_.size()) {
    // Dense sample: shuffle a copy and take a prefix.
    std::vector<PeerId> pool;
    pool.reserve(dense_.size());
    for (PeerId p : dense_)
      if (p != requester) pool.push_back(p);
    rng.shuffle(pool);
    pool.resize(std::min(want, pool.size()));
    return pool;
  }

  // Sparse rejection sample: O(want) expected.
  std::unordered_set<PeerId> seen;
  while (out.size() < want) {
    const PeerId p = dense_[rng.index(dense_.size())];
    if (p == requester || !seen.insert(p).second) continue;
    out.push_back(p);
  }
  return out;
}

}  // namespace tc::net
