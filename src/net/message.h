// Wire protocol for T-Chain (Figure 1 of the paper).
//
// An encrypted-piece message carries the triple the paper writes as
//   [ (i1, A) | K^{i2}_{B,C}[p_i2] | D ]
// i.e. the back-reference to the transaction being reciprocated, the
// ciphertext, and the designated payee of the *next* transaction. Receipts
// are the "r_C = [B | i1]" reception reports, authenticated with an
// HMAC-SHA256 tag so they cannot be forged by spoofed senders.
//
// These structs are used byte-for-byte by the real TCP transport
// (examples/tcp_triangle) and by serialization tests; the event-driven
// simulator passes them by value without encoding.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/crypto/cipher.h"
#include "src/crypto/sha256.h"
#include "src/net/peer_id.h"
#include "src/util/bytes.h"

namespace tc::net {

using PieceIndex = std::uint32_t;
constexpr PieceIndex kNoPiece = 0xffffffffu;
using TxId = std::uint64_t;

struct HandshakeMsg {
  PeerId peer = kNoPeer;
  std::string swarm;  // infohash-like swarm name
  bool operator==(const HandshakeMsg&) const = default;
};

struct BitfieldMsg {
  std::uint32_t piece_count = 0;
  util::Bytes bits;  // packed little-endian bit i of byte i/8
  bool operator==(const BitfieldMsg&) const = default;
};

struct HaveMsg {
  PieceIndex piece = kNoPiece;
  bool operator==(const HaveMsg&) const = default;
};

// Donor -> requestor: the encrypted piece plus triangle bookkeeping.
struct EncryptedPieceMsg {
  TxId tx = 0;               // this transaction
  std::uint64_t chain = 0;   // chain the transaction belongs to
  PeerId donor = kNoPeer;
  PeerId requestor = kNoPeer;
  PeerId payee = kNoPeer;    // whom the requestor must reciprocate to
  PieceIndex piece = kNoPiece;
  // Back-reference "(i1, A)": the upload this one reciprocates.
  // kNoPeer/kNoPiece for a chain-initiating upload ("null").
  PeerId prev_donor = kNoPeer;
  PieceIndex prev_piece = kNoPiece;
  util::Bytes ciphertext;
  bool operator==(const EncryptedPieceMsg&) const = default;
};

// Unencrypted upload: chain termination (Figure 1(c)) — releases the
// recipient from any obligation.
struct PlainPieceMsg {
  TxId tx = 0;
  std::uint64_t chain = 0;
  PeerId donor = kNoPeer;
  PieceIndex piece = kNoPiece;
  PeerId prev_donor = kNoPeer;
  PieceIndex prev_piece = kNoPiece;
  util::Bytes data;
  bool operator==(const PlainPieceMsg&) const = default;
};

// Payee -> donor of the reciprocated transaction: "B reciprocated i1".
struct ReceiptMsg {
  TxId reciprocated_tx = 0;  // the donor's transaction being paid for
  PeerId payee = kNoPeer;
  PeerId requestor = kNoPeer;  // who reciprocated
  PieceIndex piece = kNoPiece; // piece the payee received
  crypto::Digest256 mac{};     // HMAC over the above fields
  bool operator==(const ReceiptMsg&) const = default;
};

// Donor -> requestor: decryption key release, completing the transaction.
struct KeyReleaseMsg {
  TxId tx = 0;
  PieceIndex piece = kNoPiece;
  util::Bytes key;  // serialized SymmetricKey
  bool operator==(const KeyReleaseMsg&) const = default;
};

// Donor -> requestor: the payee left or needs nothing; reciprocate to the
// replacement instead (§II-B4).
struct PayeeReassignMsg {
  TxId tx = 0;
  PeerId new_payee = kNoPeer;
  bool operator==(const PayeeReassignMsg&) const = default;
};

// Peer -> tracker: join/renew (kAnnounceRenew) or leave (kAnnounceDepart)
// the swarm. `port` is where the peer's own listener accepts connections.
inline constexpr std::uint8_t kAnnounceRenew = 0;
inline constexpr std::uint8_t kAnnounceDepart = 1;
struct AnnounceMsg {
  PeerId peer = kNoPeer;
  std::string swarm;  // infohash-like swarm name
  std::uint16_t port = 0;
  std::uint8_t event = kAnnounceRenew;
  bool operator==(const AnnounceMsg&) const = default;
};

struct PeerEndpoint {
  PeerId peer = kNoPeer;
  std::uint16_t port = 0;
  bool operator==(const PeerEndpoint&) const = default;
};

// Tracker -> peer: reply to a renew announce, excluding the requester.
struct PeerListMsg {
  std::vector<PeerEndpoint> peers;
  bool operator==(const PeerListMsg&) const = default;
};

// Donor -> payee: designation notice. The encrypted-piece back-reference
// names only (prev_donor, prev_piece), but a receipt authenticates the
// exact TxId — so the donor tells the payee which transaction the
// incoming reciprocation pays for, and where to send the receipt.
struct PayeeNotifyMsg {
  TxId tx = 0;              // the donor's transaction awaiting payment
  std::uint64_t chain = 0;
  PeerId donor = kNoPeer;
  PeerId requestor = kNoPeer;  // who will reciprocate to the payee
  PieceIndex piece = kNoPiece; // piece the donor uploaded under `tx`
  bool operator==(const PayeeNotifyMsg&) const = default;
};

using Message =
    std::variant<HandshakeMsg, BitfieldMsg, HaveMsg, EncryptedPieceMsg,
                 PlainPieceMsg, ReceiptMsg, KeyReleaseMsg, PayeeReassignMsg,
                 AnnounceMsg, PeerListMsg, PayeeNotifyMsg>;

// Stable on-the-wire tags.
enum class MsgType : std::uint8_t {
  kHandshake = 1,
  kBitfield = 2,
  kHave = 3,
  kEncryptedPiece = 4,
  kPlainPiece = 5,
  kReceipt = 6,
  kKeyRelease = 7,
  kPayeeReassign = 8,
  kAnnounce = 9,
  kPeerList = 10,
  kPayeeNotify = 11,
};

MsgType message_type(const Message& m);
const char* message_type_name(MsgType t);

util::Bytes encode_message(const Message& m);
// Throws std::out_of_range / std::invalid_argument on malformed input.
Message decode_message(const util::Bytes& wire);

// HMAC tag for a receipt, keyed with the pairwise secret shared by payee
// and donor (how that secret is provisioned is deployment-specific; tests
// and the TCP demo derive it from the peer ids).
crypto::Digest256 receipt_mac(const util::Bytes& mac_key, TxId reciprocated_tx,
                              PeerId payee, PeerId requestor, PieceIndex piece);

}  // namespace tc::net
