// Live chain bookkeeping: per-chain info, creation counters (seeder vs.
// leecher / opportunistic seeding) and chain lengths. The census time
// series behind Figures 10 and 11 is no longer accumulated here — it is
// reconstructed offline by obs::ChainView from kChainStart / kChainBreak /
// kCensusTick trace events; the scalar counters kept here serve as the
// cross-check reference for that reconstruction.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/peer_id.h"
#include "src/util/units.h"

namespace tc::core {

using net::PeerId;
using ChainId = std::uint64_t;
using util::SimTime;

class ChainRegistry {
 public:
  ChainId create(PeerId initiator, bool by_seeder, SimTime now);

  // A transaction was appended to the chain.
  void extend(ChainId id);

  // Chain reached a terminal state; idempotent.
  void terminate(ChainId id, SimTime now);

  bool is_active(ChainId id) const;
  std::size_t active_count() const { return active_; }

  std::uint64_t total_created() const { return created_seeder_ + created_leecher_; }
  std::uint64_t created_by_seeder() const { return created_seeder_; }
  std::uint64_t created_by_leechers() const { return created_leecher_; }

  // Fraction of all chains initiated by leechers (opportunistic seeding,
  // Figure 11(b)).
  double opportunistic_fraction() const;

  struct ChainInfo {
    PeerId initiator = net::kNoPeer;
    bool by_seeder = false;
    SimTime created = 0.0;
    SimTime terminated = -1.0;
    std::uint32_t length = 0;  // transactions
  };
  const ChainInfo* info(ChainId id) const;

  // Mean length of terminated chains.
  double mean_terminated_length() const;

 private:
  std::unordered_map<ChainId, ChainInfo> chains_;
  ChainId next_id_ = 1;
  std::size_t active_ = 0;
  std::uint64_t created_seeder_ = 0;
  std::uint64_t created_leecher_ = 0;
  std::uint64_t terminated_count_ = 0;
  double terminated_length_sum_ = 0.0;
};

}  // namespace tc::core
