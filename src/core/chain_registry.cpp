#include "src/core/chain_registry.h"

namespace tc::core {

ChainId ChainRegistry::create(PeerId initiator, bool by_seeder, SimTime now) {
  const ChainId id = next_id_++;
  ChainInfo info;
  info.initiator = initiator;
  info.by_seeder = by_seeder;
  info.created = now;
  chains_.emplace(id, info);
  ++active_;
  if (by_seeder) {
    ++created_seeder_;
  } else {
    ++created_leecher_;
  }
  return id;
}

void ChainRegistry::extend(ChainId id) {
  const auto it = chains_.find(id);
  if (it != chains_.end()) ++it->second.length;
}

void ChainRegistry::terminate(ChainId id, SimTime now) {
  const auto it = chains_.find(id);
  if (it == chains_.end() || it->second.terminated >= 0.0) return;
  it->second.terminated = now;
  if (active_ > 0) --active_;
  ++terminated_count_;
  terminated_length_sum_ += it->second.length;
}

bool ChainRegistry::is_active(ChainId id) const {
  const auto it = chains_.find(id);
  return it != chains_.end() && it->second.terminated < 0.0;
}

double ChainRegistry::opportunistic_fraction() const {
  const double total = static_cast<double>(total_created());
  return total > 0 ? static_cast<double>(created_leecher_) / total : 0.0;
}

const ChainRegistry::ChainInfo* ChainRegistry::info(ChainId id) const {
  const auto it = chains_.find(id);
  return it == chains_.end() ? nullptr : &it->second;
}

double ChainRegistry::mean_terminated_length() const {
  return terminated_count_ ? terminated_length_sum_ /
                                 static_cast<double>(terminated_count_)
                           : 0.0;
}

}  // namespace tc::core
