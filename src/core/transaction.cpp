#include "src/core/transaction.h"

#include <algorithm>
#include <stdexcept>

namespace tc::core {

const char* tx_state_name(TxState s) {
  switch (s) {
    case TxState::kUploading: return "uploading";
    case TxState::kAwaitKey: return "await-key";
    case TxState::kCompleted: return "completed";
    case TxState::kTerminal: return "terminal";
    case TxState::kDead: return "dead";
  }
  return "?";
}

Transaction& TransactionTable::create(ChainId chain, PeerId donor,
                                      PeerId requestor, PeerId payee,
                                      PieceIndex piece, TxId prev,
                                      util::SimTime now) {
  const TxId id = next_id_++;
  Transaction tx;
  tx.id = id;
  tx.chain = chain;
  tx.donor = donor;
  tx.requestor = requestor;
  tx.payee = payee;
  tx.piece = piece;
  tx.prev = prev;
  tx.started = now;
  auto [it, ok] = txs_.emplace(id, tx);
  if (!ok) throw std::logic_error("duplicate tx id");
  index_peer(donor, id);
  index_peer(requestor, id);
  if (payee != net::kNoPeer && payee != donor && payee != requestor)
    index_peer(payee, id);
  if (trace_ != nullptr) {
    trace_->emit({.t = now,
                  .kind = obs::EventKind::kTxOpen,
                  .piece = piece,
                  .a = donor,
                  .b = requestor,
                  .c = payee,
                  .ref = id,
                  .chain = chain});
  }
  return it->second;
}

Transaction* TransactionTable::get(TxId id) {
  const auto it = txs_.find(id);
  return it == txs_.end() ? nullptr : &it->second;
}

const Transaction* TransactionTable::get(TxId id) const {
  const auto it = txs_.find(id);
  return it == txs_.end() ? nullptr : &it->second;
}

void TransactionTable::erase(TxId id) {
  const auto it = txs_.find(id);
  if (it == txs_.end()) return;
  const Transaction& tx = it->second;
  if (trace_ != nullptr) {
    trace_->emit({.t = clock_ ? clock_() : tx.started,
                  .kind = obs::EventKind::kTxClose,
                  .aux = static_cast<std::uint8_t>(tx.state),
                  .piece = tx.piece,
                  .a = tx.donor,
                  .b = tx.requestor,
                  .c = tx.payee,
                  .ref = id,
                  .chain = tx.chain});
  }
  unindex_peer(tx.donor, id);
  unindex_peer(tx.requestor, id);
  if (tx.payee != net::kNoPeer && tx.payee != tx.donor &&
      tx.payee != tx.requestor)
    unindex_peer(tx.payee, id);
  txs_.erase(it);
}

void TransactionTable::set_payee(TxId id, PeerId new_payee) {
  Transaction* tx = get(id);
  if (tx == nullptr || tx->payee == new_payee) return;
  if (tx->payee != net::kNoPeer && tx->payee != tx->donor &&
      tx->payee != tx->requestor)
    unindex_peer(tx->payee, id);
  tx->payee = new_payee;
  if (new_payee != net::kNoPeer && new_payee != tx->donor &&
      new_payee != tx->requestor)
    index_peer(new_payee, id);
}

std::vector<TxId> TransactionTable::involving(PeerId peer) const {
  const auto it = by_peer_.find(peer);
  return it == by_peer_.end() ? std::vector<TxId>{} : it->second;
}

void TransactionTable::index_peer(PeerId p, TxId id) {
  by_peer_[p].push_back(id);
}

void TransactionTable::unindex_peer(PeerId p, TxId id) {
  const auto it = by_peer_.find(p);
  if (it == by_peer_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), id), v.end());
  if (v.empty()) by_peer_.erase(it);
}

}  // namespace tc::core
