#include "src/core/policy.h"

namespace tc::core {

PeerId select_payee(const PayeeQuery& q, util::Rng& rng) {
  // Direct reciprocity: the donor designates itself (§II-B2) whenever the
  // requestor has something it needs.
  if (q.allow_direct && !q.donor_is_seeder && q.donor_needs_requestor) {
    return q.donor;
  }

  // Indirect reciprocity: uniform among qualified neighbors of the donor.
  PeerId chosen = net::kNoPeer;
  std::size_t count = 0;
  for (PeerId n : q.donor_neighbors) {
    if (n == q.requestor || n == q.donor) continue;
    if (!q.payee_ok || !q.payee_ok(n)) continue;
    ++count;
    if (rng.index(count) == 0) chosen = n;  // reservoir pick
  }
  return chosen;
}

std::optional<PieceIndex> select_bootstrap_piece(
    const bt::Bitfield& donor_have, const bt::Bitfield& requestor_claimed,
    const bt::Bitfield& payee_claimed, util::Rng& rng) {
  PieceIndex chosen = net::kNoPiece;
  std::size_t count = 0;
  for (PieceIndex p : requestor_claimed.missing_from(donor_have)) {
    if (payee_claimed.get(p)) continue;
    ++count;
    if (rng.index(count) == 0) chosen = p;
  }
  if (chosen == net::kNoPiece) return std::nullopt;
  return chosen;
}

bool may_opportunistically_seed(std::size_t completed_pieces,
                                std::size_t unmet_obligations) {
  return completed_pieces >= 1 && unmet_obligations == 0;
}

}  // namespace tc::core
