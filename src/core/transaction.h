// T-Chain transactions (paper §II-B, Table I).
//
// A transaction t_j is a triple (Donor D_j, Requestor R_j, Payee P_j): D_j
// uploads an encrypted piece to R_j, who must reciprocate by uploading a
// piece to P_j before D_j releases the decryption key. The reciprocation
// upload *is* transaction t_{j+1} (R_j becomes D_{j+1}, P_j becomes
// R_{j+1}), chaining transactions indefinitely.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/peer_id.h"
#include "src/net/message.h"
#include "src/obs/trace.h"
#include "src/util/units.h"

namespace tc::core {

using net::PeerId;
using net::PieceIndex;
using TxId = std::uint64_t;
using ChainId = std::uint64_t;

enum class TxState : std::uint8_t {
  kUploading,   // encrypted piece in flight D -> R
  kAwaitKey,    // delivered; R owes reciprocation, key withheld
  kCompleted,   // receipt arrived, key released, R decrypted
  kTerminal,    // unencrypted upload (chain termination), no obligation
  kDead,        // aborted: departure, free-riding sink, no payee
};

const char* tx_state_name(TxState s);

struct Transaction {
  TxId id = 0;
  ChainId chain = 0;
  PeerId donor = net::kNoPeer;
  PeerId requestor = net::kNoPeer;
  PeerId payee = net::kNoPeer;  // kNoPeer => unencrypted / terminal upload
  PieceIndex piece = net::kNoPiece;
  TxId prev = 0;  // transaction this upload reciprocates (0 = chain head)
  TxId next = 0;  // reciprocation transaction, once started
  TxState state = TxState::kUploading;
  // Donor departed after delivery; the key is escrowed with the payee, who
  // releases it directly upon reciprocation (§II-B4).
  bool key_escrowed = false;
  // The reciprocation upload (`next`) delivered its piece, so a receipt is
  // owed to this transaction's donor. Lets the per-transaction watchdog
  // tell "receipt lost in transit" (re-send it) from "reciprocation never
  // happened" (re-kick the chain).
  bool next_delivered = false;
  util::SimTime started = 0.0;

  bool encrypted() const { return payee != net::kNoPeer; }
};

// Transaction store with a per-peer role index so departures can find every
// transaction a peer participates in, in O(its transactions).
class TransactionTable {
 public:
  Transaction& create(ChainId chain, PeerId donor, PeerId requestor,
                      PeerId payee, PieceIndex piece, TxId prev,
                      util::SimTime now);

  Transaction* get(TxId id);
  const Transaction* get(TxId id) const;

  // Removes a settled transaction from the table (state must be final).
  void erase(TxId id);

  // Payee reassignment after a departure (§II-B4); keeps the role index
  // consistent.
  void set_payee(TxId id, PeerId new_payee);

  // All live transaction ids in which `peer` plays any role.
  std::vector<TxId> involving(PeerId peer) const;

  std::size_t size() const { return txs_.size(); }
  std::uint64_t created() const { return next_id_ - 1; }

  // Observability hookup: create() then emits kTxOpen and erase() kTxClose
  // (with the final state in aux). `clock` supplies the erase timestamp —
  // a std::function so core stays independent of the sim layer. Null trace
  // (the default) keeps both paths branch-only.
  void set_trace(obs::Trace* trace, std::function<util::SimTime()> clock) {
    trace_ = trace;
    clock_ = std::move(clock);
  }

 private:
  void index_peer(PeerId p, TxId id);
  void unindex_peer(PeerId p, TxId id);

  TxId next_id_ = 1;
  std::unordered_map<TxId, Transaction> txs_;
  std::unordered_map<PeerId, std::vector<TxId>> by_peer_;
  obs::Trace* trace_ = nullptr;
  std::function<util::SimTime()> clock_;
};

}  // namespace tc::core
