#include "src/core/exchange.h"

#include "src/crypto/hmac.h"

namespace tc::core {

util::Bytes derive_mac_key(PeerId a, PeerId b) {
  // Order-independent so both ends derive the same key.
  if (a > b) std::swap(a, b);
  util::ByteWriter w;
  w.str("tchain-mac-key-v1");
  w.u32(a);
  w.u32(b);
  const auto d = crypto::sha256(w.data());
  return util::Bytes(d.begin(), d.end());
}

DonorSession::DonorSession(TxId tx, std::uint64_t chain, PeerId donor,
                           PeerId requestor, PeerId payee, PieceIndex piece,
                           PeerId prev_donor, PieceIndex prev_piece,
                           const util::Bytes& plaintext,
                           const crypto::SymmetricCipher& cipher,
                           crypto::KeySource& keys)
    : key_(keys.next()) {
  offer_.tx = tx;
  offer_.chain = chain;
  offer_.donor = donor;
  offer_.requestor = requestor;
  offer_.payee = payee;
  offer_.piece = piece;
  offer_.prev_donor = prev_donor;
  offer_.prev_piece = prev_piece;
  offer_.ciphertext = cipher.encrypt(key_, plaintext);
}

bool DonorSession::accept_receipt(const net::ReceiptMsg& receipt) {
  if (receipted_) return true;
  if (receipt.reciprocated_tx != offer_.tx) return false;
  if (receipt.payee != offer_.payee) return false;
  if (receipt.requestor != offer_.requestor) return false;
  const auto mac_key = derive_mac_key(offer_.donor, offer_.payee);
  const auto expect = net::receipt_mac(mac_key, receipt.reciprocated_tx,
                                       receipt.payee, receipt.requestor,
                                       receipt.piece);
  if (!crypto::digest_equal(expect, receipt.mac)) return false;
  receipted_ = true;
  return true;
}

net::KeyReleaseMsg DonorSession::key_release() const {
  net::KeyReleaseMsg m;
  m.tx = offer_.tx;
  m.piece = offer_.piece;
  m.key = key_.serialize();
  return m;
}

net::KeyReleaseMsg DonorSession::escrow_for_payee() const {
  // Same payload; routing (to the payee instead of the requestor) is the
  // transport's concern.
  return key_release();
}

RequestorSession::RequestorSession(net::EncryptedPieceMsg msg)
    : msg_(std::move(msg)) {}

std::optional<util::Bytes> RequestorSession::complete(
    const net::KeyReleaseMsg& release, const crypto::SymmetricCipher& cipher,
    const std::optional<crypto::Digest256>& expected_hash) {
  if (release.tx != msg_.tx || release.piece != msg_.piece) return std::nullopt;
  crypto::SymmetricKey key;
  try {
    key = crypto::SymmetricKey::deserialize(release.key);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  util::Bytes plain = cipher.decrypt(key, msg_.ciphertext);
  if (expected_hash) {
    const auto got = crypto::sha256(plain);
    if (!crypto::digest_equal(got, *expected_hash)) return std::nullopt;
  }
  completed_ = true;
  return plain;
}

net::ReceiptMsg PayeeSession::make_receipt(
    const net::EncryptedPieceMsg& reciprocation, PeerId original_donor,
    TxId original_tx) {
  net::ReceiptMsg r;
  r.reciprocated_tx = original_tx;
  r.payee = reciprocation.requestor;  // this payee is the new tx's requestor
  r.requestor = reciprocation.donor;  // who reciprocated
  r.piece = reciprocation.piece;
  const auto mac_key = derive_mac_key(original_donor, r.payee);
  r.mac = net::receipt_mac(mac_key, original_tx, r.payee, r.requestor, r.piece);
  return r;
}

}  // namespace tc::core
