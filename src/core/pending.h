// Flow control / adaptive receiver selection (paper §II-D2).
//
// Each peer locally counts, per neighbor, the encrypted pieces it uploaded
// that have not yet been reciprocated ("pending"). A neighbor at or over
// the cap k is neither selected to receive pieces nor designated as payee
// until its pending count drops below k. Uncooperative neighbors (free-
// riders) accumulate pending pieces and end up banned — with no central
// monitoring or information sharing.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "src/net/peer_id.h"

namespace tc::core {

using net::PeerId;

class PendingTracker {
 public:
  explicit PendingTracker(int cap = 2);

  int cap() const { return cap_; }

  // An encrypted piece to `n` is now awaiting reciprocation.
  void add(PeerId n);
  // `n` reciprocated one piece (or the obligation died with the tx).
  void resolve(PeerId n);
  // Neighbor gone: drop all local history (a whitewasher's fresh identity
  // deliberately starts clean — that is the attack, not a bug here).
  void forget(PeerId n);

  int pending(PeerId n) const;
  // Paper: banned while pending >= k... "more than k" with k = 2 buffered;
  // we use pending < cap as eligibility, i.e. at most `cap` outstanding.
  bool eligible(PeerId n) const { return pending(n) < cap_; }

  std::size_t total_pending() const { return total_; }
  std::size_t tracked_neighbors() const { return counts_.size(); }

 private:
  int cap_;
  std::size_t total_ = 0;
  std::unordered_map<PeerId, int> counts_;
};

}  // namespace tc::core
