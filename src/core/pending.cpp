#include "src/core/pending.h"

#include <stdexcept>

namespace tc::core {

PendingTracker::PendingTracker(int cap) : cap_(cap) {
  if (cap < 1) throw std::invalid_argument("pending cap must be >= 1");
}

void PendingTracker::add(PeerId n) {
  ++counts_[n];
  ++total_;
}

void PendingTracker::resolve(PeerId n) {
  const auto it = counts_.find(n);
  if (it == counts_.end() || it->second == 0) return;  // idempotent
  --it->second;
  --total_;
  if (it->second == 0) counts_.erase(it);
}

void PendingTracker::forget(PeerId n) {
  const auto it = counts_.find(n);
  if (it == counts_.end()) return;
  total_ -= static_cast<std::size_t>(it->second);
  counts_.erase(it);
}

int PendingTracker::pending(PeerId n) const {
  const auto it = counts_.find(n);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace tc::core
