// Pure selection policies of the T-Chain protocol (§II-B2, §II-D1),
// written against callbacks so they are unit-testable without a swarm.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "src/bt/bitfield.h"
#include "src/net/peer_id.h"
#include "src/util/rng.h"

namespace tc::core {

using net::PeerId;
using net::PieceIndex;

// Payee choice for the transaction a donor is about to start.
struct PayeeQuery {
  PeerId donor = net::kNoPeer;
  PeerId requestor = net::kNoPeer;
  // Candidate payees: the *donor's* neighbors (paper: "no such neighbor
  // exists in the donor's (not requestor's) neighbor set").
  std::vector<PeerId> donor_neighbors;
  // Direct reciprocity test: does the requestor possess a completed piece
  // the donor needs?
  bool donor_needs_requestor = false;
  // Donor is a seeder / has the complete file: direct reciprocity is
  // meaningless for it.
  bool donor_is_seeder = false;
  // Ablation switch (DESIGN.md §6).
  bool allow_direct = true;
  // Candidate filter: active, not banned by flow control, and needs at
  // least one piece from the requestor (including the piece in flight).
  std::function<bool(PeerId)> payee_ok;
};

// Returns the donor itself (direct reciprocity), another peer (indirect),
// or kNoPeer — in which case the upload must be unencrypted and the chain
// terminates (§II-B3).
PeerId select_payee(const PayeeQuery& q, util::Rng& rng);

// Newcomer bootstrapping piece (§II-D1): a piece the donor has that BOTH
// the requestor and the payee still need, so the requestor can reciprocate
// by simply forwarding it. Uniformly random among candidates (the one spot
// where T-Chain does not use LRF). `*_claimed` are have ∪ in-flight sets.
std::optional<PieceIndex> select_bootstrap_piece(
    const bt::Bitfield& donor_have, const bt::Bitfield& requestor_claimed,
    const bt::Bitfield& payee_claimed, util::Rng& rng);

// Opportunistic seeding trigger (§II-D3): a leecher may initiate a chain
// iff it has at least one completed piece and no pending (unreciprocated)
// obligations.
bool may_opportunistically_seed(std::size_t completed_pieces,
                                std::size_t unmet_obligations);

}  // namespace tc::core
