// The almost-fair exchange protocol itself, at byte level (Figure 1).
//
// Three session objects mirror the three roles of one transaction:
//   DonorSession     — encrypts the piece under a fresh key, emits the
//                      EncryptedPieceMsg, verifies the payee's receipt,
//                      releases the key;
//   RequestorSession — buffers the ciphertext, decrypts when the key
//                      arrives, verifies the piece hash;
//   PayeeSession     — observes the reciprocation upload and emits the
//                      HMAC-authenticated receipt for the original donor.
//
// The event-driven simulator models these exchanges at metadata level; the
// TCP example (examples/tcp_triangle.cpp) and the integration tests run
// these sessions byte-for-byte.
#pragma once

#include <optional>

#include "src/crypto/cipher.h"
#include "src/crypto/sha256.h"
#include "src/net/message.h"
#include "src/util/bytes.h"

namespace tc::core {

using net::PeerId;
using net::PieceIndex;
using net::TxId;

// Pairwise MAC key for receipt authentication. A deployment would agree on
// this during the handshake (e.g. Diffie-Hellman); for tests and the demo
// we derive it deterministically from the two identities.
util::Bytes derive_mac_key(PeerId a, PeerId b);

class DonorSession {
 public:
  DonorSession(TxId tx, std::uint64_t chain, PeerId donor, PeerId requestor,
               PeerId payee, PieceIndex piece, PeerId prev_donor,
               PieceIndex prev_piece, const util::Bytes& plaintext,
               const crypto::SymmetricCipher& cipher, crypto::KeySource& keys);

  // The message to upload to the requestor.
  const net::EncryptedPieceMsg& offer() const { return offer_; }

  // Validates a receipt claimed to come from the designated payee.
  // On success the donor is willing to release the key.
  bool accept_receipt(const net::ReceiptMsg& receipt);
  bool receipted() const { return receipted_; }

  // §II-B4: the payee left or stopped needing pieces; future receipts must
  // come from (and be MAC'd by) the replacement instead.
  void reassign_payee(PeerId new_payee) { offer_.payee = new_payee; }

  TxId tx() const { return offer_.tx; }
  PeerId payee() const { return offer_.payee; }
  PieceIndex piece() const { return offer_.piece; }

  // Precondition: receipted(). The key-release message for the requestor.
  net::KeyReleaseMsg key_release() const;

  // §II-B4: donor leaving the swarm hands the key to the payee, who will
  // forward it upon reciprocation.
  net::KeyReleaseMsg escrow_for_payee() const;

 private:
  net::EncryptedPieceMsg offer_;
  crypto::SymmetricKey key_;
  bool receipted_ = false;
};

class RequestorSession {
 public:
  explicit RequestorSession(net::EncryptedPieceMsg msg);

  TxId tx() const { return msg_.tx; }
  PeerId donor() const { return msg_.donor; }
  PeerId payee() const { return msg_.payee; }
  PieceIndex piece() const { return msg_.piece; }
  const util::Bytes& ciphertext() const { return msg_.ciphertext; }

  // Attempts to decrypt with the released key. Returns the plaintext, and
  // verifies it against `expected_hash` when provided (the .torrent piece
  // hash); nullopt on tx mismatch or hash mismatch.
  std::optional<util::Bytes> complete(
      const net::KeyReleaseMsg& release, const crypto::SymmetricCipher& cipher,
      const std::optional<crypto::Digest256>& expected_hash = std::nullopt);

  bool completed() const { return completed_; }

 private:
  net::EncryptedPieceMsg msg_;
  bool completed_ = false;
};

class PayeeSession {
 public:
  // The payee saw `reciprocation` arrive (the requestor's upload to it) in
  // payment for transaction `original_tx` by `original_donor`; emit the
  // authenticated receipt for that donor.
  static net::ReceiptMsg make_receipt(const net::EncryptedPieceMsg& reciprocation,
                                      PeerId original_donor, TxId original_tx);
};

}  // namespace tc::core
