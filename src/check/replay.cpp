#include "src/check/replay.h"

#include <array>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tc::check {
namespace {

using obs::EventKind;
using obs::TraceEvent;

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("event csv: line " + std::to_string(line_no) +
                           ": " + why);
}

EventKind parse_kind(const std::string& name, std::size_t line_no) {
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == obs::event_kind_name(kind)) return kind;
  }
  fail(line_no, "unknown event kind '" + name + "'");
}

std::uint64_t parse_u64(const std::string& field, std::size_t line_no) {
  if (field.empty()) fail(line_no, "empty numeric field");
  std::uint64_t v = 0;
  for (const char ch : field) {
    if (ch < '0' || ch > '9') fail(line_no, "non-numeric field '" + field + "'");
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return v;
}

// Empty field = "no peer" / "no piece" sentinel (see write_event_csv).
std::uint32_t parse_id(const std::string& field, std::uint32_t sentinel,
                       std::size_t line_no) {
  if (field.empty()) return sentinel;
  const std::uint64_t v = parse_u64(field, line_no);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    fail(line_no, "id out of range '" + field + "'");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::vector<TraceEvent> read_event_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("event csv: empty input");
  }
  if (line.rfind("t,kind,", 0) != 0) {
    throw std::runtime_error("event csv: missing 't,kind,...' header");
  }

  std::vector<TraceEvent> events;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::array<std::string, 9> f;
    std::size_t n = 0;
    std::string cur;
    for (const char ch : line) {
      if (ch == ',') {
        if (n >= f.size()) fail(line_no, "too many fields");
        f[n++] = cur;
        cur.clear();
      } else if (ch != '\r') {
        cur += ch;
      }
    }
    if (n != f.size() - 1) fail(line_no, "expected 9 fields");
    f[n] = cur;

    TraceEvent e;
    try {
      e.t = std::stod(f[0]);
    } catch (const std::exception&) {
      fail(line_no, "bad timestamp '" + f[0] + "'");
    }
    e.kind = parse_kind(f[1], line_no);
    e.a = parse_id(f[2], net::kNoPeer, line_no);
    e.b = parse_id(f[3], net::kNoPeer, line_no);
    e.c = parse_id(f[4], net::kNoPeer, line_no);
    e.piece = parse_id(f[5], net::kNoPiece, line_no);
    e.ref = parse_u64(f[6], line_no);
    e.chain = parse_u64(f[7], line_no);
    const std::uint64_t aux = parse_u64(f[8], line_no);
    if (aux > 0xff) fail(line_no, "aux out of range '" + f[8] + "'");
    e.aux = static_cast<std::uint8_t>(aux);
    events.push_back(e);
  }
  return events;
}

}  // namespace tc::check
