// Trace-driven protocol invariant checker (paper §3, §5 safety claims).
//
// The Checker consumes the typed obs::TraceEvent stream — online, as an
// obs::EventSink registered on the run's Trace (lossless: sinks observe
// events before the kind mask and the ring), or offline, by replaying a
// ring snapshot or an exported event CSV (src/check/replay.h) — and
// verifies the T-Chain safety catalogue:
//
//  * fair-exchange — no kKeyDelivered before the matching reciprocation
//    delivered a piece, modulo the paper's sanctioned exceptions: gratis
//    settlement when no qualified payee exists (the chain breaks with
//    kNoPayee / is already in teardown when the key settles) and the
//    modeled collusion attack (a colluding requestor obtains keys via
//    false receipts by design, §III-A4);
//  * pending-bound — flow control's per-neighbor cap k (§II-D2): a chain
//    head is never opened toward a requestor at the cap, an indirect payee
//    is never designated while at the cap, and terminal (unencrypted)
//    gifts only go to neighbors with zero pending. Mid-chain reciprocation
//    uploads are exempt: their target is mandated by the chain, not
//    selected;
//  * chain-shape — chains are well-formed: started once, every break
//    carries a cause, no double break, and no transaction is linked into a
//    chain twice (a repeated kChainExtend ref is a forged cycle);
//  * escrow — key conservation: every delivered ciphertext's transaction
//    resolves with its key delivered, explicitly lost (refund path: the
//    requestor may re-fetch), or deliberately withheld from a free-rider;
//    an escrowed key (§II-B4 departure handoff) never silently vanishes at
//    transaction close;
//  * piece-conservation — a piece is granted at most once per peer and
//    only after a matching flow delivered it (no piece out of thin air);
//  * tx-lifecycle — transaction event streams are well-formed: unique
//    opens, no events on unknown or already-closed transactions, and a
//    kCompleted close implies the key was delivered first.
//
// Soundness contract: verifying a lossy stream cannot produce false
// positives. When the producer reports ring drops (note_dropped), the
// report downgrades to UNSOUND — findings are tallied as *possible*
// violations and unknown references count as orphans instead of errors —
// rather than claiming a clean PASS or inventing violations whose
// counter-evidence was overwritten. An online sink never drops, so live
// verification is always sound.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/net/peer_id.h"
#include "src/obs/trace.h"
#include "src/util/units.h"

namespace tc::check {

enum class Invariant : std::uint8_t {
  kFairExchange,
  kPendingBound,
  kChainShape,
  kEscrow,
  kPieceConservation,
  kTxLifecycle,
  kCount_,
};

inline constexpr std::size_t kInvariantCount =
    static_cast<std::size_t>(Invariant::kCount_);

// Kebab-case key, used for RunRecord extras ("check.v.<key>") and reports.
const char* invariant_name(Invariant inv);

enum class Severity : std::uint8_t {
  kWarning,    // suspicious but explainable (e.g. escrow open at run end)
  kViolation,  // a safety property is broken
};

struct Violation {
  Invariant invariant = Invariant::kTxLifecycle;
  Severity severity = Severity::kViolation;
  util::SimTime t = 0.0;            // event timestamp of the detection
  net::PeerId a = net::kNoPeer;     // subject peer (donor / uploader)
  net::PeerId b = net::kNoPeer;     // object peer (requestor / receiver)
  net::PieceIndex piece = net::kNoPiece;
  std::uint64_t ref = 0;            // transaction / flow id
  std::uint64_t chain = 0;
  std::string detail;               // human-readable context
};

struct CheckReport {
  // False once the producer reported dropped events: verification window
  // lost evidence, so findings are only "possible" and a clean result must
  // not be reported as PASS.
  bool sound = true;
  std::uint64_t dropped = 0;  // producer-reported ring drops
  std::uint64_t events = 0;   // events consumed

  std::uint64_t total_violations = 0;  // hard violations (sound stream)
  std::uint64_t possible_violations = 0;  // findings on an unsound stream
  std::uint64_t warnings = 0;
  std::uint64_t orphans = 0;  // unknown refs explained by drops (unsound)
  std::array<std::uint64_t, kInvariantCount> by_class{};

  // First CheckerOptions::max_findings violations/warnings, in stream order.
  std::vector<Violation> findings;

  // "PASS" (sound, no violations), "VIOLATIONS", or "UNSOUND".
  const char* verdict() const;
  bool clean() const { return sound && total_violations == 0; }
};

struct CheckerOptions {
  // Flow-control cap k (§II-D2); mirror bt::SwarmConfig::pending_cap.
  int pending_cap = 2;
  // Violations/warnings kept with full context; the counters keep counting.
  std::size_t max_findings = 64;
};

class Checker : public obs::EventSink {
 public:
  explicit Checker(CheckerOptions opts = {});
  ~Checker() override;

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // Stream input, in emission order.
  void on_event(const obs::TraceEvent& e) override;

  // Declares that `n` events were lost upstream (offline replay of a
  // wrapped ring). Call before finish(); downgrades the report to UNSOUND.
  void note_dropped(std::uint64_t n);

  // End-of-stream checks (open escrows become warnings, never violations —
  // a run that hits its horizon mid-exchange is not a safety failure).
  // Idempotent; returns the final report.
  const CheckReport& finish();

  const CheckReport& report() const;

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps the per-tx/per-chain model out of the header
};

// One-shot offline verification of a replayed stream. `dropped` is the
// producer's drop count (EventRing::dropped() for ring snapshots; pass 0
// for streams known to be complete).
CheckReport check_events(const std::vector<obs::TraceEvent>& events,
                         std::uint64_t dropped = 0,
                         const CheckerOptions& opts = {});

// Human-readable report: verdict, per-class counters, and up to
// `max_findings_shown` findings with peer/tx/time context.
void write_report(std::ostream& os, const CheckReport& report,
                  std::size_t max_findings_shown = 16);

}  // namespace tc::check
