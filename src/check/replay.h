// Offline trace replay: parses the event CSV written by
// obs::write_event_csv back into TraceEvents so exported runs can be
// verified after the fact (the tchain-verify tool, offline tests).
//
// The CSV only holds what survived the ring, so callers must pair the
// stream with the producer's drop count ("events.dropped" in the record
// extras / Trace::snapshot) to keep the soundness contract honest.
#pragma once

#include <istream>
#include <vector>

#include "src/obs/trace.h"

namespace tc::check {

// Parses a `t,kind,a,b,c,piece,ref,chain,aux` CSV (header required) into
// events in file order. Empty a/b/c map to net::kNoPeer, empty piece to
// net::kNoPiece. Throws std::runtime_error naming the offending line on
// malformed input (unknown kind, bad field count, non-numeric field).
std::vector<obs::TraceEvent> read_event_csv(std::istream& in);

}  // namespace tc::check
