#include "src/check/invariants.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/core/transaction.h"

namespace tc::check {

using obs::EventKind;
using obs::TraceEvent;

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kFairExchange: return "fair-exchange";
    case Invariant::kPendingBound: return "pending-bound";
    case Invariant::kChainShape: return "chain-shape";
    case Invariant::kEscrow: return "escrow";
    case Invariant::kPieceConservation: return "piece-conservation";
    case Invariant::kTxLifecycle: return "tx-lifecycle";
    case Invariant::kCount_: break;
  }
  return "?";
}

const char* CheckReport::verdict() const {
  if (!sound) return "UNSOUND";
  return total_violations > 0 ? "VIOLATIONS" : "PASS";
}

namespace {

// (peer, peer) -> 64-bit map key. PeerIds are 32-bit, so this is exact.
std::uint64_t pair_key(net::PeerId a, net::PeerId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

struct Checker::Impl {
  explicit Impl(const CheckerOptions& o) : opts(o) {}

  struct PeerInfo {
    bool freerider = false;
    bool colluder = false;
    bool seeder = false;
    bool active = true;
  };

  struct TxInfo {
    net::PeerId donor = net::kNoPeer;
    net::PeerId requestor = net::kNoPeer;
    net::PeerId payee = net::kNoPeer;
    net::PieceIndex piece = net::kNoPiece;
    std::uint64_t chain = 0;
    util::SimTime opened = 0.0;
    bool encrypted = false;
    bool delivered = false;      // its own ciphertext/piece arrived D -> R
    bool key_delivered = false;
    bool key_lost = false;
    bool escrowed = false;
  };

  struct ChainInfo {
    net::PeerId initiator = net::kNoPeer;
    std::uint32_t extends = 0;
    bool broken = false;
    std::uint8_t cause = 0;
  };

  CheckerOptions opts;
  CheckReport rep;
  bool finished = false;

  std::unordered_map<net::PeerId, PeerInfo> peers;
  std::unordered_map<std::uint64_t, TxInfo> txs;
  std::unordered_set<std::uint64_t> closed_txs;
  std::unordered_map<std::uint64_t, ChainInfo> chains;
  // Transactions already linked into a chain: a second kChainExtend with
  // the same ref is a forged link (the "cycle" mutation).
  std::unordered_set<std::uint64_t> extended_txs;
  // donor -> neighbor -> unreciprocated encrypted pieces (flow control k).
  std::unordered_map<net::PeerId, std::unordered_map<net::PeerId, int>> pending;
  // (uploader, receiver) -> piece -> open transaction ids, FIFO: matches
  // kPieceDelivered / kPieceAborted flow events back to transactions.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<net::PieceIndex,
                                        std::vector<std::uint64_t>>>
      open_uploads;
  // (uploader, receiver) -> pieces ever delivered on that edge.
  std::unordered_map<std::uint64_t, std::unordered_set<net::PieceIndex>>
      delivered;
  // peer -> pieces granted (decrypted / plainly received) at that peer.
  std::unordered_map<net::PeerId, std::unordered_set<net::PieceIndex>> granted;
  // chain -> peer -> latest time that peer delivered a piece as donor
  // within the chain (the reciprocation evidence for fair-exchange).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<net::PeerId, util::SimTime>>
      chain_deliveries;

  // --- Reporting ----------------------------------------------------------

  void record(const Violation& v) {
    if (v.severity == Severity::kWarning) {
      ++rep.warnings;
    } else if (rep.sound) {
      ++rep.total_violations;
      ++rep.by_class[static_cast<std::size_t>(v.invariant)];
    } else {
      ++rep.possible_violations;
      ++rep.by_class[static_cast<std::size_t>(v.invariant)];
    }
    if (rep.findings.size() < opts.max_findings) rep.findings.push_back(v);
  }

  void violate(Invariant inv, const TraceEvent& e, std::string detail) {
    Violation v;
    v.invariant = inv;
    v.t = e.t;
    v.a = e.a;
    v.b = e.b;
    v.piece = e.piece;
    v.ref = e.ref;
    v.chain = e.chain;
    v.detail = std::move(detail);
    record(v);
  }

  // An event referencing a transaction/chain we never saw open. On a sound
  // stream that is a malformed-stream violation; on a lossy stream the
  // open was likely overwritten, so it is only an orphan.
  void unknown_ref(Invariant inv, const TraceEvent& e, const char* what) {
    if (!rep.sound) {
      ++rep.orphans;
      return;
    }
    violate(inv, e, std::string("event references unknown ") + what);
  }

  bool colluder(net::PeerId p) const {
    const auto it = peers.find(p);
    return it != peers.end() && it->second.colluder;
  }

  bool freerider(net::PeerId p) const {
    const auto it = peers.find(p);
    return it != peers.end() && it->second.freerider;
  }

  int pending_of(net::PeerId donor, net::PeerId n) const {
    const auto it = pending.find(donor);
    if (it == pending.end()) return 0;
    const auto jt = it->second.find(n);
    return jt == it->second.end() ? 0 : jt->second;
  }

  // --- Event handlers -----------------------------------------------------

  void on_join(net::PeerId id, std::uint8_t flags) {
    PeerInfo& p = peers[id];
    p.freerider = (flags & obs::kPeerFlagFreerider) != 0;
    p.colluder = (flags & obs::kPeerFlagColluder) != 0;
    p.seeder = (flags & obs::kPeerFlagSeeder) != 0;
    p.active = true;
  }

  void on_gone(net::PeerId id) {
    const auto it = peers.find(id);
    if (it != peers.end()) it->second.active = false;
    // The departing identity's flow-control ledger dies with it.
    pending.erase(id);
  }

  void on_whitewash(net::PeerId old_id, net::PeerId fresh) {
    // Same logical peer, fresh identity: the attack flags carry over, the
    // old identity's donor-side ledger does not (that is the attack).
    PeerInfo info;
    if (const auto it = peers.find(old_id); it != peers.end()) {
      info = it->second;
      it->second.active = false;
    }
    info.active = true;
    pending.erase(old_id);
    peers[fresh] = info;
  }

  void on_tx_open(const TraceEvent& e) {
    if (txs.count(e.ref) != 0 || closed_txs.count(e.ref) != 0) {
      violate(Invariant::kTxLifecycle, e, "duplicate transaction id opened");
      return;
    }

    bool head = false;
    if (e.chain != 0) {
      const auto ct = chains.find(e.chain);
      if (ct == chains.end()) {
        unknown_ref(Invariant::kChainShape, e, "chain (tx-open)");
      } else {
        head = ct->second.extends == 0;
      }
    }

    TxInfo tx;
    tx.donor = e.a;
    tx.requestor = e.b;
    tx.payee = e.c;
    tx.piece = e.piece;
    tx.chain = e.chain;
    tx.opened = e.t;
    tx.encrypted = e.c != net::kNoPeer;

    // Flow control (§II-D2). Chain heads and payee designations are
    // *selections* and must respect the cap; mid-chain reciprocation
    // targets are mandated by the chain and exempt.
    if (tx.encrypted) {
      if (head && pending_of(e.a, e.b) >= opts.pending_cap) {
        violate(Invariant::kPendingBound, e,
                "chain head opened toward a requestor at the pending cap k");
      }
      if (e.c != e.a && pending_of(e.a, e.c) >= opts.pending_cap) {
        violate(Invariant::kPendingBound, e,
                "payee designated while at the pending cap k");
      }
      ++pending[e.a][e.b];
    } else if (pending_of(e.a, e.b) > 0) {
      // Terminal gifts only go to neighbors with nothing outstanding.
      violate(Invariant::kPendingBound, e,
              "unencrypted gift to a neighbor with pending obligations");
    }

    txs.emplace(e.ref, tx);
    open_uploads[pair_key(e.a, e.b)][e.piece].push_back(e.ref);
  }

  void on_tx_close(const TraceEvent& e) {
    const auto it = txs.find(e.ref);
    if (it == txs.end()) {
      if (closed_txs.count(e.ref) != 0) {
        violate(Invariant::kTxLifecycle, e, "transaction closed twice");
      } else {
        unknown_ref(Invariant::kTxLifecycle, e, "transaction (tx-close)");
      }
      return;
    }
    TxInfo& tx = it->second;
    const auto state = static_cast<core::TxState>(e.aux);

    if (state == core::TxState::kCompleted && !tx.key_delivered) {
      violate(Invariant::kTxLifecycle, e,
              "transaction closed completed but its key was never delivered");
    }

    // Key conservation at close. Escrowed keys (§II-B4 handoff) and
    // delivered ciphertexts must resolve: key delivered, key explicitly
    // lost (the refund path — the requestor may re-fetch), or deliberately
    // withheld from a free-riding requestor (§II-D2 sanction).
    if (tx.escrowed && !tx.key_delivered && !tx.key_lost) {
      violate(Invariant::kEscrow, e,
              "escrowed key neither delivered nor refunded at close");
    } else if (tx.encrypted && tx.delivered && !tx.key_delivered &&
               !tx.key_lost && state == core::TxState::kAwaitKey &&
               !freerider(tx.requestor)) {
      violate(Invariant::kEscrow, e,
              "delivered ciphertext closed with key neither delivered nor "
              "lost");
    }

    // Flow-control model: every close path except the free-rider swallow
    // (kAwaitKey close with no key-lost refund) resolves the donor's
    // pending slot.
    if (tx.encrypted) {
      const bool swallowed =
          state == core::TxState::kAwaitKey && !tx.key_lost && !tx.key_delivered;
      if (!swallowed) {
        const auto dt = pending.find(tx.donor);
        if (dt != pending.end()) {
          const auto nt = dt->second.find(tx.requestor);
          if (nt != dt->second.end() && nt->second > 0) --nt->second;
        }
      }
    }

    // Retire any still-unmatched upload of this transaction.
    const auto ut = open_uploads.find(pair_key(tx.donor, tx.requestor));
    if (ut != open_uploads.end()) {
      const auto pt = ut->second.find(tx.piece);
      if (pt != ut->second.end()) {
        auto& v = pt->second;
        v.erase(std::remove(v.begin(), v.end(), e.ref), v.end());
        if (v.empty()) ut->second.erase(pt);
      }
    }

    closed_txs.insert(e.ref);
    txs.erase(it);
  }

  void on_key_escrowed(const TraceEvent& e) {
    const auto it = txs.find(e.ref);
    if (it == txs.end()) {
      unknown_ref(Invariant::kEscrow, e, "transaction (key-escrowed)");
      return;
    }
    if (it->second.escrowed) {
      violate(Invariant::kEscrow, e, "key escrowed twice");
      return;
    }
    it->second.escrowed = true;
  }

  void on_key_delivered(const TraceEvent& e) {
    const auto it = txs.find(e.ref);
    if (it == txs.end()) {
      unknown_ref(Invariant::kFairExchange, e, "transaction (key-delivered)");
      return;
    }
    TxInfo& tx = it->second;
    if (tx.key_delivered) {
      violate(Invariant::kFairExchange, e, "key delivered twice");
      return;
    }
    if (!tx.encrypted) {
      violate(Invariant::kFairExchange, e,
              "key delivered for an unencrypted transaction");
      tx.key_delivered = true;
      return;
    }

    // Fair exchange: the requestor must have reciprocated — delivered a
    // piece as donor within this chain, after this transaction opened —
    // before the key settles. Sanctioned exceptions: the modeled collusion
    // attack (false receipts succeed by design, §III-A4) and gratis
    // settlement once the chain is in teardown (no qualified payee exists;
    // the break — kNoPayee or an earlier failure — precedes the release).
    bool reciprocated = false;
    if (tx.chain != 0) {
      const auto cd = chain_deliveries.find(tx.chain);
      if (cd != chain_deliveries.end()) {
        const auto rt = cd->second.find(tx.requestor);
        reciprocated = rt != cd->second.end() && rt->second >= tx.opened;
      }
    }
    bool settling = false;
    if (tx.chain != 0) {
      const auto ct = chains.find(tx.chain);
      settling = ct != chains.end() && ct->second.broken;
    }
    if (!reciprocated && !settling && !colluder(tx.requestor)) {
      violate(Invariant::kFairExchange, e,
              "key delivered before the matching reciprocation completed");
    }
    tx.key_delivered = true;
  }

  void on_key_lost(const TraceEvent& e) {
    const auto it = txs.find(e.ref);
    if (it != txs.end()) {
      it->second.key_lost = true;
      return;
    }
    // A key-lost after close is the in-flight key-release message dying on
    // the wire (the transaction itself completed) — legitimate.
    if (closed_txs.count(e.ref) == 0) {
      unknown_ref(Invariant::kTxLifecycle, e, "transaction (key-lost)");
    }
  }

  void on_tx_touch(const TraceEvent& e, const char* what) {
    if (txs.count(e.ref) != 0) return;
    if (closed_txs.count(e.ref) != 0) {
      violate(Invariant::kTxLifecycle, e,
              std::string(what) + " event on a closed transaction");
      return;
    }
    unknown_ref(Invariant::kTxLifecycle, e, "transaction");
  }

  void on_chain_start(const TraceEvent& e) {
    if (chains.count(e.chain) != 0) {
      violate(Invariant::kChainShape, e, "chain started twice");
      return;
    }
    ChainInfo c;
    c.initiator = e.a;
    chains.emplace(e.chain, c);
  }

  void on_chain_extend(const TraceEvent& e) {
    const auto it = chains.find(e.chain);
    if (it == chains.end()) {
      unknown_ref(Invariant::kChainShape, e, "chain (chain-extend)");
    } else {
      ++it->second.extends;
    }
    if (e.ref != 0) {
      if (!extended_txs.insert(e.ref).second) {
        violate(Invariant::kChainShape, e,
                "transaction linked into a chain twice (forged cycle)");
      } else if (txs.count(e.ref) == 0) {
        unknown_ref(Invariant::kChainShape, e, "transaction (chain-extend)");
      }
    }
    // A kChainExtend after kChainBreak is NOT flagged: transactions queued
    // behind a broken frontier legitimately keep reciprocating while the
    // chain settles (see protocols/tchain.cpp continue_chain).
  }

  void on_chain_break(const TraceEvent& e) {
    const auto it = chains.find(e.chain);
    if (it == chains.end()) {
      unknown_ref(Invariant::kChainShape, e, "chain (chain-break)");
      return;
    }
    if (e.aux == static_cast<std::uint8_t>(obs::ChainBreakCause::kNone)) {
      violate(Invariant::kChainShape, e, "chain break without a cause");
    }
    if (it->second.broken) {
      violate(Invariant::kChainShape, e, "chain broken twice");
      return;
    }
    it->second.broken = true;
    it->second.cause = e.aux;
  }

  void on_piece_delivered(const TraceEvent& e) {
    delivered[pair_key(e.a, e.b)].insert(e.piece);
    if (std::uint64_t txid = match_upload(e.a, e.b, e.piece); txid != 0) {
      const auto it = txs.find(txid);
      if (it != txs.end()) {
        it->second.delivered = true;
        if (it->second.chain != 0) {
          util::SimTime& last = chain_deliveries[it->second.chain][e.a];
          last = std::max(last, e.t);
        }
      }
    }
  }

  void on_piece_aborted(const TraceEvent& e) {
    // The matching transaction (if any) is torn down right after this
    // event; just unmatch the flow so later deliveries pair correctly.
    (void)match_upload(e.a, e.b, e.piece);
  }

  void on_piece_granted(const TraceEvent& e) {
    // e.a = receiver, e.b = source (see obs::EventKind).
    auto& got = granted[e.a];
    if (!got.insert(e.piece).second) {
      violate(Invariant::kPieceConservation, e,
              "piece granted twice to the same peer");
      return;
    }
    const auto it = delivered.find(pair_key(e.b, e.a));
    if (it == delivered.end() || it->second.count(e.piece) == 0) {
      // On a lossy stream the delivery may have been overwritten.
      if (rep.sound) {
        violate(Invariant::kPieceConservation, e,
                "piece granted without a matching delivery");
      } else {
        ++rep.orphans;
      }
    }
  }

  // Pops the oldest open upload matching (from, to, piece); 0 if none
  // (baseline-protocol flows have no transactions).
  std::uint64_t match_upload(net::PeerId from, net::PeerId to,
                             net::PieceIndex piece) {
    const auto it = open_uploads.find(pair_key(from, to));
    if (it == open_uploads.end()) return 0;
    const auto pt = it->second.find(piece);
    if (pt == it->second.end() || pt->second.empty()) return 0;
    const std::uint64_t txid = pt->second.front();
    pt->second.erase(pt->second.begin());
    if (pt->second.empty()) it->second.erase(pt);
    return txid;
  }

  void consume(const TraceEvent& e) {
    ++rep.events;
    switch (e.kind) {
      case EventKind::kPeerJoin: on_join(e.a, e.aux); break;
      case EventKind::kPeerDepart:
      case EventKind::kPeerCrash: on_gone(e.a); break;
      case EventKind::kPeerWhitewash: on_whitewash(e.a, e.b); break;
      case EventKind::kPieceDelivered: on_piece_delivered(e); break;
      case EventKind::kPieceAborted: on_piece_aborted(e); break;
      case EventKind::kPieceGranted: on_piece_granted(e); break;
      case EventKind::kKeyEscrowed: on_key_escrowed(e); break;
      case EventKind::kKeyDelivered: on_key_delivered(e); break;
      case EventKind::kKeyLost: on_key_lost(e); break;
      case EventKind::kTxOpen: on_tx_open(e); break;
      case EventKind::kTxRetry: on_tx_touch(e, "retry"); break;
      case EventKind::kTxTimeout: on_tx_touch(e, "timeout"); break;
      case EventKind::kTxClose: on_tx_close(e); break;
      case EventKind::kChainStart: on_chain_start(e); break;
      case EventKind::kChainExtend: on_chain_extend(e); break;
      case EventKind::kChainBreak: on_chain_break(e); break;
      case EventKind::kPeerFinish:
      case EventKind::kPieceSent:
      case EventKind::kChoke:
      case EventKind::kUnchoke:
      case EventKind::kFaultControlDrop:
      case EventKind::kFaultControlJitter:
      case EventKind::kFaultOutageBegin:
      case EventKind::kFaultOutageEnd:
      case EventKind::kCensusTick:
      case EventKind::kCount_:
        break;
    }
  }

  void do_finish() {
    if (finished) return;
    finished = true;
    // A run that hits its horizon mid-exchange is not a safety failure:
    // still-open escrows are surfaced as warnings only. Walk ids in sorted
    // order so the findings list is deterministic.
    std::vector<std::uint64_t> open_ids;
    open_ids.reserve(txs.size());
    for (const auto& [id, tx] : txs) open_ids.push_back(id);  // det-ok
    std::sort(open_ids.begin(), open_ids.end());
    for (const std::uint64_t id : open_ids) {
      const TxInfo& tx = txs.at(id);
      if (tx.escrowed && !tx.key_delivered && !tx.key_lost) {
        Violation v;
        v.invariant = Invariant::kEscrow;
        v.severity = Severity::kWarning;
        v.a = tx.donor;
        v.b = tx.requestor;
        v.piece = tx.piece;
        v.ref = id;
        v.chain = tx.chain;
        v.detail = "escrowed key still unresolved at end of stream";
        record(v);
      }
    }
  }
};

Checker::Checker(CheckerOptions opts) : impl_(new Impl(opts)) {}

Checker::~Checker() { delete impl_; }

void Checker::on_event(const TraceEvent& e) { impl_->consume(e); }

void Checker::note_dropped(std::uint64_t n) {
  if (n == 0) return;
  impl_->rep.dropped += n;
  impl_->rep.sound = false;
}

const CheckReport& Checker::finish() {
  impl_->do_finish();
  return impl_->rep;
}

const CheckReport& Checker::report() const { return impl_->rep; }

CheckReport check_events(const std::vector<TraceEvent>& events,
                         std::uint64_t dropped, const CheckerOptions& opts) {
  Checker checker(opts);
  checker.note_dropped(dropped);
  for (const TraceEvent& e : events) checker.on_event(e);
  return checker.finish();
}

void write_report(std::ostream& os, const CheckReport& report,
                  std::size_t max_findings_shown) {
  os << "verdict: " << report.verdict() << "\n"
     << "events: " << report.events << "  dropped: " << report.dropped
     << "\n";
  if (!report.sound) {
    os << "stream is lossy: findings below are POSSIBLE violations only "
          "(counter-evidence may have been overwritten)\n"
       << "possible violations: " << report.possible_violations << "\n"
       << "orphan references: " << report.orphans << "\n";
  } else {
    os << "violations: " << report.total_violations << "\n";
  }
  os << "warnings: " << report.warnings << "\n";
  for (std::size_t c = 0; c < kInvariantCount; ++c) {
    if (report.by_class[c] == 0) continue;
    os << "  " << invariant_name(static_cast<Invariant>(c)) << ": "
       << report.by_class[c] << "\n";
  }
  const std::size_t n = std::min(max_findings_shown, report.findings.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Violation& v = report.findings[i];
    os << "  [" << (v.severity == Severity::kWarning ? "warn" : "VIOLATION")
       << "] t=" << v.t << " " << invariant_name(v.invariant) << ": "
       << v.detail;
    if (v.a != net::kNoPeer) os << " a=" << v.a;
    if (v.b != net::kNoPeer) os << " b=" << v.b;
    if (v.piece != net::kNoPiece) os << " piece=" << v.piece;
    if (v.ref != 0) os << " tx=" << v.ref;
    if (v.chain != 0) os << " chain=" << v.chain;
    os << "\n";
  }
  if (report.findings.size() > n) {
    os << "  ... " << (report.findings.size() - n) << " more finding(s)\n";
  }
}

}  // namespace tc::check
