// Analytic newcomer-bootstrapping dynamics from paper §III-B.
//
// Discrete-time difference equations for the expected number of
// un-bootstrapped peers under (a) a BitTorrent-like protocol that
// optimistically unchokes a random peer with probability delta per slot,
// and (b) T-Chain, where every bootstrapped peer participates in K chains
// per slot and indirect reciprocity designates un-bootstrapped peers as
// payees with probability omega (eqs. 1-6), plus the sufficient conditions
// of Propositions III.1 / III.2.
#pragma once

#include <cstddef>
#include <vector>

namespace tc::model {

struct ModelParams {
  double n = 600;       // swarm size (constant when alpha == beta)
  double alpha = 0.0;   // newcomer arrival rate (per peer per slot)
  double beta = 0.0;    // departure rate
  double delta = 0.2;   // BitTorrent optimistic-unchoke bandwidth share
  double K = 2.0;       // chains per bootstrapped T-Chain peer per slot
  std::size_t M = 100;  // number of file pieces
};

// omega' : probability a bootstrapped peer already has the single piece of
// a partially bootstrapped peer = sum_m p_m * m / M. For uniform p_m,
// omega' = (M+1)/(2M) ~ 0.5.
double omega_prime_uniform(std::size_t M);

// omega'' (eq. 4): probability peer j needs nothing from peer i, both
// bootstrapped, piece counts uniform. ~ log(M)/M for large M.
double omega_double_prime_uniform(std::size_t M);

struct TrajectoryPoint {
  double t;
  double x;  // completely un-bootstrapped
  double y;  // partially bootstrapped (T-Chain only; 0 for BitTorrent)
  double z;  // bootstrapped
};

// Iterates eq. (1) from x(0) = x0 for `steps` slots.
std::vector<TrajectoryPoint> bittorrent_trajectory(const ModelParams& p,
                                                   double x0,
                                                   std::size_t steps);

// Iterates eqs. (2)-(6) from (x0, y0).
std::vector<TrajectoryPoint> tchain_trajectory(const ModelParams& p, double x0,
                                               double y0, std::size_t steps);

// Per-slot bootstrapping rate E[x(t+1)|x(t)] / x(t) at a given state.
double bittorrent_rate(const ModelParams& p, double x);
double tchain_rate(const ModelParams& p, double x, double y);

// Proposition III.1 sufficient condition (eq. 7): short-term, flash crowd.
bool prop31_condition(const ModelParams& p, double xt, double yt, double xb);

// Proposition III.2 sufficient condition (eq. 8): long-term,
// xt + yt <= mu*n un-bootstrapped in T-Chain, xb >= nu*n in BitTorrent.
bool prop32_condition(const ModelParams& p, double mu, double nu);

}  // namespace tc::model
