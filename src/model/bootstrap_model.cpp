#include "src/model/bootstrap_model.h"

#include <cmath>

namespace tc::model {

double omega_prime_uniform(std::size_t M) {
  // sum_{m=1}^{M-1} (1/(M-1)) * m/M = 1/2 exactly; the paper quotes 0.495
  // for M = 100 with a 1/M prior, which this matches to within 1%.
  double s = 0.0;
  for (std::size_t m = 1; m < M; ++m)
    s += static_cast<double>(m) / static_cast<double>(M);
  return s / static_cast<double>(M - 1);
}

double omega_double_prime_uniform(std::size_t M) {
  // Eq. (4): the inner factor (M-mi)! mj! / (M! (mj-mi)!) equals
  // C(mj, mi) / C(M, mi) — the probability that peer i's mi pieces all lie
  // inside peer j's mj pieces. Evaluated with log-gammas for stability.
  const auto log_choose = [](double nn, double kk) {
    return std::lgamma(nn + 1) - std::lgamma(kk + 1) - std::lgamma(nn - kk + 1);
  };
  const double p = 1.0 / static_cast<double>(M - 1);
  double s = 0.0;
  for (std::size_t mj = 1; mj < M; ++mj) {
    for (std::size_t mi = 1; mi <= mj; ++mi) {
      const double lc = log_choose(static_cast<double>(mj), static_cast<double>(mi)) -
                        log_choose(static_cast<double>(M), static_cast<double>(mi));
      s += p * p * std::exp(lc);
    }
  }
  return s;
}

double bittorrent_rate(const ModelParams& p, double x) {
  const double z = p.n - x;
  return (1.0 - 1.0 / p.n) * std::pow(1.0 - p.delta / (p.n - 1.0), z);
}

namespace {

double tchain_omega(const ModelParams& p, double x, double y) {
  const double z = p.n - x - y;
  const double w1 = omega_prime_uniform(p.M);
  const double w2 = omega_double_prime_uniform(p.M);
  return (x + w1 * y + w2 * (z - 1.0)) / (p.n - 1.0);
}

}  // namespace

double tchain_rate(const ModelParams& p, double x, double y) {
  const double z = p.n - x - y;
  const double omega = tchain_omega(p, x, y);
  const double exponent = p.K * omega * z;
  return (1.0 - 1.0 / p.n) * std::pow(1.0 - 1.0 / (p.n - 1.0), exponent);
}

std::vector<TrajectoryPoint> bittorrent_trajectory(const ModelParams& p,
                                                   double x0,
                                                   std::size_t steps) {
  std::vector<TrajectoryPoint> out;
  out.reserve(steps + 1);
  double x = x0;
  for (std::size_t t = 0; t <= steps; ++t) {
    out.push_back({static_cast<double>(t), x, 0.0, p.n - x});
    x = x * (1.0 - p.beta) * bittorrent_rate(p, x) + p.alpha * p.n;
    if (x < 0) x = 0;
  }
  return out;
}

std::vector<TrajectoryPoint> tchain_trajectory(const ModelParams& p, double x0,
                                               double y0, std::size_t steps) {
  std::vector<TrajectoryPoint> out;
  out.reserve(steps + 1);
  double x = x0, y = y0;
  for (std::size_t t = 0; t <= steps; ++t) {
    out.push_back({static_cast<double>(t), x, y, p.n - x - y});
    // Eq. (2): probability an un-bootstrapped peer is bootstrapped this
    // slot; eqs. (5)-(6): x -> y -> z pipeline (a newly chosen newcomer is
    // "partially bootstrapped" one slot before it can reciprocate).
    const double P = 1.0 - tchain_rate(p, x, y);
    const double x_next = p.alpha * p.n + x * (1.0 - p.beta) * (1.0 - P);
    const double y_next = x * (1.0 - p.beta) * P;
    x = x_next;
    y = y_next;
    if (x < 0) x = 0;
    if (y < 0) y = 0;
  }
  return out;
}

bool prop31_condition(const ModelParams& p, double xt, double yt, double xb) {
  const double z = p.n - xt - yt;
  const double w1 = omega_prime_uniform(p.M);
  const double w2 = omega_double_prime_uniform(p.M);
  const double lhs =
      p.K * z * (xt + w1 * yt + w2 * (z - 1.0)) / (p.n - 1.0);
  const double rhs = p.delta * (p.n - xb);
  return lhs >= rhs;
}

bool prop32_condition(const ModelParams& p, double mu, double nu) {
  const double w2 = omega_double_prime_uniform(p.M);
  const double lhs = std::pow(1.0 - p.delta / (p.n - 1.0), p.n * (1.0 - nu));
  const double rhs =
      std::pow(1.0 - 1.0 / (p.n - 1.0), p.K * p.n * (1.0 - mu) * w2);
  return lhs >= rhs;
}

}  // namespace tc::model
