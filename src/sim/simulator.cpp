#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace tc::sim {

Simulator::EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule in the past
  const std::uint64_t id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
  if (heap_.size() > peak_heap_) peak_heap_ = heap_.size();
  return EventId{id};
}

Simulator::EventId Simulator::schedule_in(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // Unknown, already fired, or already cancelled: nothing to do. The heap
  // entry stays behind as a tombstone and is skipped on pop.
  if (!id.valid() || id.id >= next_id_ || done(id.id)) return false;
  mark_done(id.id);
  ++cancelled_pending_;
  ++cancelled_total_;
  return true;
}

Simulator::Entry Simulator::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Entry e = pop_entry();
    if (done(e.id)) {  // tombstone of a cancelled event
      --cancelled_pending_;
      continue;
    }
    assert(e.t >= now_);
    now_ = e.t;
    mark_done(e.id);
    ++processed_;
    e.fn();  // may schedule/cancel freely; `e` is off the heap already
    return true;
  }
  return false;
}

void Simulator::run(SimTime until) {
  while (!heap_.empty()) {
    // Drop tombstones to see the real next event time.
    while (!heap_.empty() && done(heap_.front().id)) {
      pop_entry();
      --cancelled_pending_;
    }
    if (heap_.empty()) break;
    if (heap_.front().t > until) break;
    step();
  }
}

}  // namespace tc::sim
