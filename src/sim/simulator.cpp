#include "src/sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace tc::sim {

Simulator::EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule in the past
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId{id};
}

Simulator::EventId Simulator::schedule_in(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped on pop.
  return callbacks_.erase(id.id) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    assert(e.t >= now_);
    now_ = e.t;
    // Move the callback out before erasing: it may schedule/cancel events.
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    queue_.pop();
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run(SimTime until) {
  while (!queue_.empty()) {
    // Skip tombstones to see the real next event time.
    while (!queue_.empty() && !callbacks_.count(queue_.top().id)) queue_.pop();
    if (queue_.empty()) break;
    if (queue_.top().t > until) break;
    step();
  }
}

}  // namespace tc::sim
