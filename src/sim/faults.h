// Deterministic fault injection for swarm simulations.
//
// A FaultPlan declares which failures a run should suffer — control-message
// loss and delay jitter, mid-download peer churn (graceful leaves and
// abrupt crashes), and transient upload-capacity outages. A FaultInjector
// turns the plan into concrete, reproducible decisions: it draws from its
// own seeded RNG stream (derived from, but independent of, the swarm's),
// so enabling faults never perturbs the swarm's random sequence and two
// runs with the same seed and the same plan fail identically.
//
// Everything defaults to OFF. With a default FaultPlan the injector is
// never consulted and the swarm behaves bit-identically to a build without
// this subsystem.
#pragma once

#include <cstdint>

#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace tc::sim {

struct FaultPlan {
  // --- Control plane (receipts, key releases, reassignment triggers) ------
  double control_loss = 0.0;    // P(message silently dropped), per message
  double control_jitter = 0.0;  // extra delivery delay, uniform in [0, jitter]

  // --- Churn: session durations end in departure ---------------------------
  enum class SessionKind : std::uint8_t {
    kNone,         // peers stay until they finish (the paper's model)
    kExponential,  // memoryless sessions with the given mean
    kLogNormal,    // heavy-tailed sessions (measured P2P shape)
  };
  SessionKind session_kind = SessionKind::kNone;
  double mean_session = 0.0;    // seconds; scale of the session model
  double session_sigma = 1.0;   // log-normal shape (ignored for exponential)
  // Fraction of session ends that are abrupt crashes (no escrow handoff,
  // no goodbye) rather than graceful departures.
  double crash_fraction = 0.5;

  // --- Transient upload outages --------------------------------------------
  double outage_rate = 0.0;           // per-peer outages per second
  double outage_mean_duration = 5.0;  // seconds, exponential

  bool control_faults() const {
    return control_loss > 0.0 || control_jitter > 0.0;
  }
  bool churn() const {
    return session_kind != SessionKind::kNone && mean_session > 0.0;
  }
  bool outages() const { return outage_rate > 0.0; }
  bool enabled() const { return control_faults() || churn() || outages(); }
};

class FaultInjector {
 public:
  // `seed` is the swarm seed; the injector mixes it so its stream is
  // decorrelated from (and independent of) the swarm's own RNG.
  FaultInjector(const FaultPlan& plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  // True if this control message is lost. Draws only when loss is on.
  bool drop_control();
  // Extra delivery delay for a control message. Draws only when jitter is on.
  double control_delay();

  // Exponential gap until a peer's next upload outage, and its length.
  // Only meaningful (and only drawing) when plan().outages().
  double outage_gap();
  double outage_duration();

  // True if a churn session should end in an abrupt crash.
  bool crash_on_exit();

  // Raw stream for callers that sample plan-driven models themselves
  // (e.g. the session-duration model lives in src/trace/arrival.*).
  util::Rng& rng() { return rng_; }

  // Observability hookup (Swarm::enable_obs): injected decisions emit
  // kFaultControlDrop / kFaultControlJitter events stamped with `sim`'s
  // clock. Null trace (the default) keeps every path draw-identical.
  void set_trace(obs::Trace* trace, const Simulator* sim) {
    trace_ = trace;
    sim_ = sim;
  }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  obs::Trace* trace_ = nullptr;
  const Simulator* sim_ = nullptr;
};

}  // namespace tc::sim
