// Fluid bandwidth model.
//
// The paper assumes upload bandwidth is the limiting resource (download
// unconstrained), so each uploader's capacity is shared among its active
// flows — equally by default, or proportionally to per-flow weights (the
// generalization PropShare needs). Flow progress is tracked lazily: each
// uploader settles its flows' remaining bytes only when its flow set
// changes or a completion fires, keeping the model O(flows-per-uploader)
// per change rather than O(total flows).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace tc::sim {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

class BandwidthModel {
 public:
  // Invoked when a flow delivers its last byte. Receives the flow id.
  using CompletionFn = std::function<void(FlowId)>;

  explicit BandwidthModel(Simulator& sim) : sim_(sim) {}

  // Registers (or updates) an uploader's capacity in bytes/second.
  // Capacity 0 is legal (a free-rider's upload pipe): its flows never
  // progress. Changing capacity re-times in-flight flows.
  void set_capacity(NodeId uploader, double bytes_per_sec);
  double capacity(NodeId uploader) const;

  // Starts a flow of `bytes` from `src` to `dst`. `weight` scales this
  // flow's share of src's capacity relative to its siblings (> 0).
  FlowId start_flow(NodeId src, NodeId dst, double bytes,
                    CompletionFn on_complete, double weight = 1.0);

  // Cancels an in-flight flow (no callback). Returns false if unknown
  // (already completed or never existed).
  bool cancel_flow(FlowId id);

  // Re-weights an in-flight flow (PropShare adjusts shares every round).
  bool set_flow_weight(FlowId id, double weight);

  // Cancels all flows from `src` (peer departure).
  void cancel_flows_from(NodeId src);

  std::size_t active_flow_count(NodeId src) const;
  bool flow_active(FlowId id) const { return flow_owner_.count(id) > 0; }

  // Cumulative delivered bytes (completed + settled partial progress).
  double bytes_uploaded(NodeId src) const;
  double bytes_downloaded(NodeId dst) const;

 private:
  struct Flow {
    FlowId id;
    NodeId dst;
    double remaining;
    double weight;
    CompletionFn on_complete;
  };

  struct Uploader {
    double capacity = 0.0;
    double uploaded = 0.0;  // settled cumulative bytes
    SimTime last_settle = 0.0;
    std::vector<Flow> flows;
    Simulator::EventId next_completion;
  };

  // Advances all of u's flows to sim_.now() and fires completions.
  void settle(NodeId src, Uploader& u);
  void reschedule(NodeId src, Uploader& u);
  double total_weight(const Uploader& u) const;

  Simulator& sim_;
  std::unordered_map<NodeId, Uploader> uploaders_;
  std::unordered_map<FlowId, NodeId> flow_owner_;
  std::unordered_map<NodeId, double> downloaded_;
  FlowId next_flow_id_ = 1;
};

}  // namespace tc::sim
