#include "src/sim/faults.h"

namespace tc::sim {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan), rng_([seed] {
        // SplitMix the swarm seed through a fixed offset so the fault
        // stream never collides with the swarm's own Rng(seed) stream.
        std::uint64_t s = seed + 0x7a11c0de5eedull;
        return util::split_mix64(s);
      }()) {}

bool FaultInjector::drop_control() {
  if (plan_.control_loss <= 0.0) return false;
  const bool drop = rng_.bernoulli(plan_.control_loss);
  if (drop && trace_ != nullptr) {
    trace_->emit({sim_->now(), obs::EventKind::kFaultControlDrop});
  }
  return drop;
}

double FaultInjector::control_delay() {
  if (plan_.control_jitter <= 0.0) return 0.0;
  const double delay = rng_.uniform(0.0, plan_.control_jitter);
  if (trace_ != nullptr) {
    trace_->emit({sim_->now(), obs::EventKind::kFaultControlJitter});
    trace_->registry().histogram("faults.control_jitter_s").add(delay);
  }
  return delay;
}

double FaultInjector::outage_gap() { return rng_.exponential(plan_.outage_rate); }

double FaultInjector::outage_duration() {
  if (plan_.outage_mean_duration <= 0.0) return 0.0;
  return rng_.exponential(1.0 / plan_.outage_mean_duration);
}

bool FaultInjector::crash_on_exit() {
  return rng_.bernoulli(plan_.crash_fraction);
}

}  // namespace tc::sim
