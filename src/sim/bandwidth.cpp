#include "src/sim/bandwidth.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tc::sim {

namespace {
// Sub-byte slack for float comparisons when deciding a flow is finished.
constexpr double kEps = 1e-6;
}  // namespace

void BandwidthModel::set_capacity(NodeId uploader, double bytes_per_sec) {
  if (bytes_per_sec < 0) throw std::invalid_argument("negative capacity");
  settle(uploader, uploaders_[uploader]);
  // settle() may fire callbacks that rehash the map; re-find.
  auto& u = uploaders_[uploader];
  u.capacity = bytes_per_sec;
  reschedule(uploader, u);
}

double BandwidthModel::capacity(NodeId uploader) const {
  const auto it = uploaders_.find(uploader);
  return it == uploaders_.end() ? 0.0 : it->second.capacity;
}

double BandwidthModel::total_weight(const Uploader& u) const {
  double w = 0.0;
  for (const auto& f : u.flows) w += f.weight;
  return w;
}

void BandwidthModel::settle(NodeId src, Uploader& u) {
  const SimTime now = sim_.now();
  const double dt = now - u.last_settle;
  u.last_settle = now;
  if (dt > 0 && u.capacity > 0 && !u.flows.empty()) {
    const double w_total = total_weight(u);
    for (auto& f : u.flows) {
      const double delivered =
          std::min(f.remaining, u.capacity * (f.weight / w_total) * dt);
      f.remaining -= delivered;
      u.uploaded += delivered;
      downloaded_[f.dst] += delivered;
    }
  }

  // Extract finished flows, then fire their callbacks with internal state
  // already consistent (callbacks may start or cancel flows reentrantly).
  std::vector<Flow> done;
  for (auto it = u.flows.begin(); it != u.flows.end();) {
    if (it->remaining <= kEps) {
      flow_owner_.erase(it->id);
      done.push_back(std::move(*it));
      it = u.flows.erase(it);
    } else {
      ++it;
    }
  }
  if (!done.empty()) {
    reschedule(src, u);
    // NOTE: `u` may dangle once callbacks mutate uploaders_; don't touch it
    // after this point.
    for (auto& f : done) {
      if (f.on_complete) f.on_complete(f.id);
    }
  }
}

void BandwidthModel::reschedule(NodeId src, Uploader& u) {
  if (u.next_completion.valid()) {
    sim_.cancel(u.next_completion);
    u.next_completion = {};
  }
  if (u.flows.empty() || u.capacity <= 0) return;

  const double w_total = total_weight(u);
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& f : u.flows) {
    const double rate = u.capacity * (f.weight / w_total);
    earliest = std::min(earliest, f.remaining / rate);
  }
  u.next_completion = sim_.schedule_in(earliest, [this, src] {
    auto it = uploaders_.find(src);
    if (it == uploaders_.end()) return;
    it->second.next_completion = {};
    settle(src, it->second);
    auto again = uploaders_.find(src);
    if (again != uploaders_.end() && !again->second.next_completion.valid())
      reschedule(src, again->second);
  });
}

FlowId BandwidthModel::start_flow(NodeId src, NodeId dst, double bytes,
                                  CompletionFn on_complete, double weight) {
  if (weight <= 0) throw std::invalid_argument("flow weight must be positive");
  if (bytes < 0) throw std::invalid_argument("negative flow size");
  const FlowId id = next_flow_id_++;
  auto& u = uploaders_[src];
  settle(src, u);
  // settle() may have fired callbacks that rehashed the map; re-find.
  auto& u2 = uploaders_[src];
  u2.flows.push_back(Flow{id, dst, bytes, weight, std::move(on_complete)});
  flow_owner_[id] = src;
  reschedule(src, u2);
  return id;
}

bool BandwidthModel::cancel_flow(FlowId id) {
  const auto owner = flow_owner_.find(id);
  if (owner == flow_owner_.end()) return false;
  const NodeId src = owner->second;
  auto& u = uploaders_[src];
  settle(src, u);
  auto& u2 = uploaders_[src];
  auto it = std::find_if(u2.flows.begin(), u2.flows.end(),
                         [&](const Flow& f) { return f.id == id; });
  if (it == u2.flows.end()) return false;  // completed during settle
  u2.flows.erase(it);
  flow_owner_.erase(id);
  reschedule(src, u2);
  return true;
}

bool BandwidthModel::set_flow_weight(FlowId id, double weight) {
  if (weight <= 0) throw std::invalid_argument("flow weight must be positive");
  const auto owner = flow_owner_.find(id);
  if (owner == flow_owner_.end()) return false;
  const NodeId src = owner->second;
  auto& u = uploaders_[src];
  settle(src, u);
  auto& u2 = uploaders_[src];
  auto it = std::find_if(u2.flows.begin(), u2.flows.end(),
                         [&](const Flow& f) { return f.id == id; });
  if (it == u2.flows.end()) return false;
  it->weight = weight;
  reschedule(src, u2);
  return true;
}

void BandwidthModel::cancel_flows_from(NodeId src) {
  auto it = uploaders_.find(src);
  if (it == uploaders_.end()) return;
  settle(src, it->second);
  auto again = uploaders_.find(src);
  if (again == uploaders_.end()) return;
  for (const auto& f : again->second.flows) flow_owner_.erase(f.id);
  again->second.flows.clear();
  reschedule(src, again->second);
}

std::size_t BandwidthModel::active_flow_count(NodeId src) const {
  const auto it = uploaders_.find(src);
  return it == uploaders_.end() ? 0 : it->second.flows.size();
}

double BandwidthModel::bytes_uploaded(NodeId src) const {
  const auto it = uploaders_.find(src);
  if (it == uploaders_.end()) return 0.0;
  // Include unsettled progress so metrics are exact at query time.
  const Uploader& u = it->second;
  double total = u.uploaded;
  const double dt = sim_.now() - u.last_settle;
  if (dt > 0 && u.capacity > 0 && !u.flows.empty()) {
    const double w_total = total_weight(u);
    for (const auto& f : u.flows)
      total += std::min(f.remaining, u.capacity * (f.weight / w_total) * dt);
  }
  return total;
}

double BandwidthModel::bytes_downloaded(NodeId dst) const {
  const auto it = downloaded_.find(dst);
  return it == downloaded_.end() ? 0.0 : it->second;
}

}  // namespace tc::sim
