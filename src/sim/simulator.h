// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (stable sequence numbers), so a run is a pure function
// of its seed. The callback lives inside the heap entry itself — there is
// no side map to hash into on every schedule/fire — and cancellation is
// O(1): event ids are sequential, so a flat bitset indexed by id tombstones
// cancelled (or already-fired) events, and tombstoned heap entries are
// skipped on pop. The bitset grows one bit per event ever scheduled
// (~1.2 MiB per 10M events), which is negligible next to the callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/util/units.h"

namespace tc::sim {

using util::SimTime;

class Simulator {
 public:
  struct EventId {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
    bool operator==(const EventId&) const = default;
  };

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute simulated time `t` (>= now).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  // Schedules `fn` after `delay` simulated seconds (clamped to >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  // Returns true if the event existed and was cancelled before firing.
  bool cancel(EventId id);

  // Runs until the queue drains or simulated time would exceed `until`.
  // Events scheduled exactly at `until` still run.
  void run(SimTime until = std::numeric_limits<SimTime>::infinity());

  // Processes a single event; returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const {
    return heap_.size() - cancelled_pending_;
  }
  std::uint64_t events_processed() const { return processed_; }
  // High-water mark of the heap (tombstones included): how deep the event
  // queue ever got. Surfaced as an obs gauge by exp::run_one.
  std::size_t peak_pending() const { return peak_heap_; }
  std::uint64_t cancelled_total() const { return cancelled_total_; }

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    std::function<void()> fn;
  };
  // std::push/pop_heap build a max-heap; "less" = fires later.
  struct FiresLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // A set bit means the event already fired or was cancelled; its heap
  // entry (if still queued) is a tombstone.
  bool done(std::uint64_t id) const {
    const std::uint64_t word = id >> 6;
    return word < done_bits_.size() &&
           (done_bits_[word] >> (id & 63)) & 1u;
  }
  void mark_done(std::uint64_t id) {
    const std::uint64_t word = id >> 6;
    if (word >= done_bits_.size()) done_bits_.resize(word + 1, 0);
    done_bits_[word] |= std::uint64_t{1} << (id & 63);
  }
  Entry pop_entry();

  SimTime now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Entry> heap_;
  std::vector<std::uint64_t> done_bits_;
  std::size_t cancelled_pending_ = 0;  // tombstones still in heap_
  std::size_t peak_heap_ = 0;
  std::uint64_t cancelled_total_ = 0;
};

}  // namespace tc::sim
