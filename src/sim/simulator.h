// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (stable sequence numbers), so a run is a pure function
// of its seed. Cancellation is O(log n) amortized via tombstoning.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/util/units.h"

namespace tc::sim {

using util::SimTime;

class Simulator {
 public:
  struct EventId {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
    bool operator==(const EventId&) const = default;
  };

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute simulated time `t` (>= now).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  // Schedules `fn` after `delay` simulated seconds (clamped to >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  // Returns true if the event existed and was cancelled before firing.
  bool cancel(EventId id);

  // Runs until the queue drains or simulated time would exceed `until`.
  // Events scheduled exactly at `until` still run.
  void run(SimTime until = std::numeric_limits<SimTime>::infinity());

  // Processes a single event; returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return callbacks_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
};

}  // namespace tc::sim
