#include "src/protocols/tchain.h"

#include <algorithm>

#include "src/core/policy.h"
#include "src/util/logging.h"

namespace tc::protocols {

using core::Transaction;
using core::TxState;

TChainProtocol::PeerState& TChainProtocol::state(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) {
    it = peers_.emplace(id, PeerState(swarm_->config().pending_cap)).first;
  }
  return it->second;
}

bool TChainProtocol::is_seeder(PeerId id) const {
  const bt::Peer* p = swarm_->peer(id);
  return p != nullptr && p->seeder;
}

int TChainProtocol::pending_of(PeerId donor, PeerId neighbor) const {
  const auto it = peers_.find(donor);
  return it == peers_.end() ? 0 : it->second.pending.pending(neighbor);
}

void TChainProtocol::on_run_start() {
  if (obs::Trace* tr = swarm_->obs()) {
    txs_.set_trace(tr, [this] { return swarm_->simulator().now(); });
  }
  // Census tick loop for the Figures 10/11 series (replayed offline by
  // obs::ChainView). Scheduled unconditionally so the simulator's event-id
  // sequence — and therefore the run — is identical with tracing off.
  swarm_->simulator().schedule_in(census_period_, [this] { census_loop(); });
}

void TChainProtocol::on_peer_join(PeerId id) {
  state(id);  // materialize
  if (is_seeder(id)) {
    seeder_tick();
    return;
  }
  // Per-leecher opportunistic-seeding / stall-recovery loop (§II-D3).
  swarm_->simulator().schedule_in(swarm_->config().rechoke_period,
                                  [this, id] { opp_loop(id); });
}

void TChainProtocol::on_peer_depart(PeerId id) { handle_exit(id, false); }

void TChainProtocol::on_peer_crash(PeerId id) { handle_exit(id, true); }

void TChainProtocol::handle_exit(PeerId id, bool crashed) {
  // Settle every transaction the departing peer participates in (§II-B4).
  // A graceful donor hands escrowed keys to payees on the way out; a
  // crashed donor takes its keys with it.
  for (const TxId txid : txs_.involving(id)) {
    Transaction* tx = txs_.get(txid);
    if (tx == nullptr) continue;

    if (tx->donor == id) {
      if (!crashed && tx->state == TxState::kAwaitKey &&
          tx->payee != net::kNoPeer && tx->payee != id &&
          swarm_->is_active(tx->payee)) {
        // Donor hands the key to the payee on its way out; the payee will
        // release it upon reciprocation.
        tx->key_escrowed = true;
        ++stats_.keys_escrowed;
        if (obs::Trace* tr = swarm_->obs()) {
          tr->emit({.t = swarm_->simulator().now(),
                    .kind = obs::EventKind::kKeyEscrowed,
                    .piece = tx->piece,
                    .a = tx->donor,
                    .b = tx->requestor,
                    .c = tx->payee,
                    .ref = txid,
                    .chain = tx->chain});
        }
      } else if (tx->state == TxState::kAwaitKey) {
        kill_tx(txid, /*terminate_chain=*/true,
                crashed ? obs::ChainBreakCause::kCrash
                        : obs::ChainBreakCause::kDeparture);
      }
      continue;
    }

    if (tx->requestor == id) {
      // Requestor left before reciprocating / decrypting: obligation dies.
      if (tx->state == TxState::kAwaitKey) {
        kill_tx(txid, true,
                crashed ? obs::ChainBreakCause::kCrash
                        : obs::ChainBreakCause::kDeparture);
      }
      continue;
    }

    if (tx->payee == id && tx->state == TxState::kAwaitKey) {
      // Payee departed before reciprocation: donor designates another
      // (deferred a control-latency so the overlay settles first).
      const TxId fix = txid;
      swarm_->send_control([this, fix] { continue_chain(fix); });
    }
  }
  peers_.erase(id);
}

void TChainProtocol::census_loop() {
  if (obs::Trace* tr = swarm_->obs()) {
    tr->emit({.t = swarm_->simulator().now(),
              .kind = obs::EventKind::kCensusTick});
  }
  swarm_->simulator().schedule_in(census_period_, [this] { census_loop(); });
}

void TChainProtocol::break_chain(ChainId id, obs::ChainBreakCause cause) {
  const bool was_active = chains_.is_active(id);
  chains_.terminate(id, swarm_->simulator().now());
  if (!was_active) return;
  if (obs::Trace* tr = swarm_->obs()) {
    tr->emit({.t = swarm_->simulator().now(),
              .kind = obs::EventKind::kChainBreak,
              .aux = static_cast<std::uint8_t>(cause),
              .chain = id});
  }
}

void TChainProtocol::opp_loop(PeerId id) {
  if (!swarm_->is_active(id)) return;
  opportunistic_tick(id);
  swarm_->simulator().schedule_in(swarm_->config().rechoke_period,
                                  [this, id] { opp_loop(id); });
}

void TChainProtocol::prune_banned_neighbors(PeerId id) {
  // §II-D2: flow control "helps participants identify uncooperative or
  // malfunctioning neighbors". A neighbor at the pending cap is not
  // serviceable in either direction; once the neighbor table is nearly
  // full, drop such neighbors so their slots go to serviceable peers
  // (otherwise large-view free-riders squat on the seeder's connections).
  bt::Peer* p = swarm_->peer(id);
  if (p == nullptr || !p->active) return;
  if (p->neighbors.size() * 5 < swarm_->config().max_neighbors * 4) return;
  PeerState& st = state(id);
  std::vector<PeerId> drop;
  for (PeerId n : p->neighbors) {
    if (!st.pending.eligible(n)) drop.push_back(n);
  }
  for (PeerId n : drop) swarm_->disconnect(id, n);
}

void TChainProtocol::seeder_tick() {
  const PeerId s = swarm_->seeder_id();
  if (!swarm_->is_active(s)) return;
  prune_banned_neighbors(s);
  PeerState& ss = state(s);
  // Feed the swarm as many chains as the seeder's slot budget allows
  // (footnote 3: "the seeder will likely initiate as many chains as
  // possible given its upload capacity").
  std::size_t guard = 0;
  while (ss.active_uploads < swarm_->config().seeder_chain_slots &&
         guard++ < 2 * swarm_->config().seeder_chain_slots) {
    if (!initiate_chain(s, /*by_seeder=*/true)) break;
  }
  swarm_->simulator().schedule_in(2.0, [this] { seeder_tick(); });
}

void TChainProtocol::opportunistic_tick(PeerId id) {
  const bt::Peer* p = swarm_->peer(id);
  if (p == nullptr || !p->active || p->freerider || p->seeder) return;
  prune_banned_neighbors(id);
  PeerState& st = state(id);
  if (!core::may_opportunistically_seed(p->have.count(), st.obligations))
    return;
  if (st.active_uploads > 0) return;  // upload capacity already in use
  if (!swarm_->config().opportunistic_seeding) return;
  initiate_chain(id, /*by_seeder=*/false);
}

bool TChainProtocol::initiate_chain(PeerId donor, bool by_seeder) {
  const bt::Peer* d = swarm_->peer(donor);
  if (d == nullptr || !d->active) return false;
  PeerState& ds = state(donor);

  // Requestor: uniform among neighbors that want something from the donor
  // and are not flow-control banned.
  PeerId requestor = net::kNoPeer;
  std::size_t count = 0;
  for (PeerId n : d->neighbors) {
    const bt::Peer* np = swarm_->peer(n);
    if (np == nullptr || !np->active || np->seeder) continue;
    if (!ds.pending.eligible(n)) continue;
    if (!swarm_->needs_from(n, donor)) continue;
    ++count;
    if (swarm_->rng().index(count) == 0) requestor = n;
  }
  if (requestor == net::kNoPeer) return false;

  const ChainId chain =
      chains_.create(donor, by_seeder, swarm_->simulator().now());
  if (obs::Trace* tr = swarm_->obs()) {
    tr->emit({.t = swarm_->simulator().now(),
              .kind = obs::EventKind::kChainStart,
              .aux = static_cast<std::uint8_t>(by_seeder ? 1 : 0),
              .a = donor,
              .chain = chain});
  }
  if (!start_tx(donor, requestor, /*prev=*/0, chain)) {
    break_chain(chain, obs::ChainBreakCause::kAborted);
    return false;
  }
  return true;
}

PeerId TChainProtocol::choose_payee(PeerId donor, PeerId requestor,
                                    PieceIndex piece) {
  const bt::Peer* d = swarm_->peer(donor);
  const bt::Peer* r = swarm_->peer(requestor);
  if (d == nullptr || r == nullptr) return net::kNoPeer;
  PeerState& ds = state(donor);

  core::PayeeQuery q;
  q.donor = donor;
  q.requestor = requestor;
  q.donor_neighbors = d->neighbors;
  q.donor_is_seeder = d->seeder;
  q.allow_direct = swarm_->config().allow_direct_reciprocity;
  q.donor_needs_requestor = swarm_->needs_from(donor, requestor);
  q.payee_ok = [&](PeerId n) {
    const bt::Peer* np = swarm_->peer(n);
    if (np == nullptr || !np->active || np->seeder) return false;
    if (!ds.pending.eligible(n)) return false;  // adaptive receiver selection
    // Needs >= 1 of the requestor's pieces, *including* the piece about to
    // be uploaded (§II-B2).
    if (swarm_->needs_from(n, requestor)) return true;
    return piece != net::kNoPiece && !np->requested.get(piece);
  };

  const PeerId p = core::select_payee(q, swarm_->rng());
  if (p == donor) {
    ++stats_.direct_payees;
  } else if (p != net::kNoPeer) {
    ++stats_.indirect_payees;
  }
  return p;
}

bool TChainProtocol::start_tx(PeerId donor, PeerId requestor, TxId prev,
                              ChainId chain, PieceIndex forced_piece) {
  bt::Peer* d = swarm_->peer(donor);
  bt::Peer* r = swarm_->peer(requestor);
  if (d == nullptr || r == nullptr || !d->active || !r->active) return false;

  // Piece tentatively selected by the requestor via LRF (§II-B1).
  PieceIndex piece = forced_piece;
  if (piece == net::kNoPiece) {
    const auto sel = swarm_->select_lrf(requestor, donor);
    if (!sel) return false;
    piece = *sel;
  }

  PeerId payee = choose_payee(donor, requestor, piece);

  // Newcomer bootstrapping (§II-D1): requestor has no completed piece, so
  // the donor picks a piece both requestor and payee need; the requestor
  // reciprocates by forwarding it.
  if (payee != net::kNoPeer && payee != donor && forced_piece == net::kNoPiece &&
      r->have.empty()) {
    const bt::Peer* pp = swarm_->peer(payee);
    if (pp != nullptr) {
      const auto boot = core::select_bootstrap_piece(
          d->have, r->requested, pp->requested, swarm_->rng());
      if (boot) piece = *boot;
    }
  }

  // Terminal uploads are altruistic gifts. Adaptive receiver selection
  // (§II-D2) says a neighbor with unreciprocated pending pieces "will be
  // neither selected to receive pieces nor designated as payee" — so a
  // requestor that still owes this donor gets no unencrypted piece, and
  // gifts to strangers are budgeted (this is what keeps endgame chain
  // termination from feeding free-riders). The budget is waived in the
  // tiny-swarm case the paper calls out (§II-B3: a lone leecher simply
  // gets the unencrypted file) and for neighbors that have reciprocated
  // to this donor before.
  if (payee == net::kNoPeer) {
    PeerState& ds = state(donor);
    if (ds.pending.pending(requestor) > 0) return false;
    std::size_t other_leechers = 0;
    for (PeerId n : d->neighbors) {
      const bt::Peer* np = swarm_->peer(n);
      if (np != nullptr && np->active && !np->seeder && n != requestor)
        ++other_leechers;
    }
    const bool sole_neighbor = other_leechers == 0;
    // Newcomers never need gifts — §II-D1 bootstraps them with encrypted
    // pieces — so an unproven stranger asking for unencrypted pieces is
    // indistinguishable from a whitewashed free-rider and gets none.
    if (!sole_neighbor && !proven_.count(requestor)) return false;
    ++ds.gifts[requestor];
  }

  Transaction& tx = txs_.create(chain, donor, requestor, payee, piece, prev,
                                swarm_->simulator().now());
  chains_.extend(chain);
  if (obs::Trace* tr = swarm_->obs()) {
    tr->emit({.t = swarm_->simulator().now(),
              .kind = obs::EventKind::kChainExtend,
              .ref = tx.id,
              .chain = chain});
  }

  PeerState& ds = state(donor);
  ++ds.active_uploads;
  if (tx.encrypted()) {
    ds.pending.add(requestor);
    ++stats_.encrypted_uploads;
  } else {
    ++stats_.terminal_uploads;
  }
  if (prev != 0) {
    if (Transaction* p = txs_.get(prev)) p->next = tx.id;
  }

  const TxId txid = tx.id;
  swarm_->start_upload(donor, requestor, piece, /*weight=*/1.0,
                       [this, txid](PeerId, PeerId, PieceIndex, bool ok) {
                         on_upload_done(txid, ok);
                       });
  return true;
}

void TChainProtocol::on_upload_done(TxId txid, bool ok) {
  Transaction* tx = txs_.get(txid);
  if (tx == nullptr) return;

  if (auto it = peers_.find(tx->donor); it != peers_.end()) {
    if (it->second.active_uploads > 0) --it->second.active_uploads;
    // Idle-triggered opportunistic seeding (§II-D3): an uploader whose pipe
    // just drained re-seeds promptly instead of waiting for the next tick.
    if (it->second.active_uploads == 0) {
      const PeerId donor = tx->donor;
      swarm_->simulator().schedule_in(0.2, [this, donor] {
        if (swarm_->is_active(donor)) opportunistic_tick(donor);
      });
    }
  }

  if (!ok) {
    // One endpoint departed mid-transfer. A chain-head abort kills the
    // chain; a mid-chain abort is either revived by payee reassignment on
    // `prev` below, or `prev` itself was killed by the departure handler.
    const TxId prev = tx->prev;
    kill_tx(txid, /*terminate_chain=*/prev == 0, obs::ChainBreakCause::kAborted);
    if (prev != 0) {
      // This upload was the reciprocation of `prev`; give the previous
      // donor a chance to reassign the payee (§II-B4).
      swarm_->send_control([this, prev] { continue_chain(prev); });
    }
    return;
  }

  if (tx->encrypted()) {
    handle_encrypted_delivery(*tx);
  } else {
    // Terminal (unencrypted) upload: immediate grant, no obligation,
    // chain ends (Fig 1c). It still pays for `prev` if it was owed.
    const TxId prev = tx->prev;
    const ChainId chain = tx->chain;
    swarm_->grant_piece(tx->requestor, tx->piece, tx->donor);
    break_chain(chain, obs::ChainBreakCause::kCompleted);
    if (prev != 0) {
      if (Transaction* pv = txs_.get(prev)) pv->next_delivered = true;
      swarm_->send_control(
          [this, prev] { process_receipt(prev, /*false_receipt=*/false); });
    }
    txs_.erase(txid);
  }
}

void TChainProtocol::handle_encrypted_delivery(Transaction& tx) {
  tx.state = TxState::kAwaitKey;
  ++state(tx.requestor).obligations;
  arm_watchdog(tx.id, 0);
  if (swarm_->metrics().tracing(tx.requestor)) {
    swarm_->metrics().trace_encrypted(tx.requestor, tx.piece,
                                      swarm_->simulator().now());
  }

  // This delivery is also the reciprocation payment for tx.prev: the
  // requestor (payee of prev) reports the receipt to prev's donor.
  if (tx.prev != 0) {
    const TxId prev = tx.prev;
    if (Transaction* pv = txs_.get(prev)) pv->next_delivered = true;
    swarm_->send_control(
        [this, prev] { process_receipt(prev, /*false_receipt=*/false); });
  }

  const bt::Peer* r = swarm_->peer(tx.requestor);
  if (r == nullptr) return;

  if (r->freerider) {
    const bt::Peer* payee = swarm_->peer(tx.payee);
    const bool collusion = swarm_->config().freerider_collude && r->colluder &&
                           payee != nullptr && payee->colluder;
    if (collusion) {
      // §III-A4 / §IV-D: the colluding payee lies to the donor, claiming
      // reciprocation happened; the donor releases the key "for free".
      const TxId id = tx.id;
      ++stats_.false_receipts;
      swarm_->send_control(
          [this, id] { process_receipt(id, /*false_receipt=*/true); });
    } else {
      // The free-rider banks the useless ciphertext and never reciprocates;
      // the donor's pending count against it stays up (the §II-D2 ban), and
      // the chain dies. Crucially, the free-rider keeps advertising the
      // piece as missing — it cannot decrypt it — so it remains a valid
      // payee target for other donors (whose chains will in turn die here,
      // capped by their own pending counters).
      break_chain(tx.chain, obs::ChainBreakCause::kFreeriderSink);
      if (bt::Peer* fr = swarm_->peer(tx.requestor);
          fr != nullptr && !fr->have.get(tx.piece)) {
        fr->requested.clear(tx.piece);
      }
      if (auto it = peers_.find(tx.requestor); it != peers_.end()) {
        if (it->second.obligations > 0) --it->second.obligations;
      }
      txs_.erase(tx.id);  // pending at the donor intentionally NOT resolved
    }
    return;
  }

  // Compliant requestor: immediately continue the chain by reciprocating.
  continue_chain(tx.id);
}

void TChainProtocol::process_receipt(TxId prev_id, bool false_receipt) {
  Transaction* prev = txs_.get(prev_id);
  if (prev == nullptr || prev->state != TxState::kAwaitKey) return;
  ++stats_.receipts;

  // Resolve the donor's flow-control pending slot for this requestor, and
  // remember it as a proven reciprocator (eligible for endgame gifts).
  if (auto it = peers_.find(prev->donor); it != peers_.end()) {
    it->second.pending.resolve(prev->requestor);
  }
  // A receipt marks the requestor as a demonstrated reciprocator. A false
  // (collusion) receipt is indistinguishable, so it "proves" the colluder
  // too — the attack's whole point (§III-A4).
  proven_.insert(prev->requestor);

  const PeerId releaser = prev->key_escrowed ? prev->payee : prev->donor;
  if (!prev->key_escrowed && !swarm_->is_active(prev->donor)) {
    // Donor gone without escrow: key lost; the requestor re-fetches the
    // piece elsewhere.
    kill_tx(prev_id, /*terminate_chain=*/false,
            obs::ChainBreakCause::kDeparture);
    return;
  }
  if (prev->key_escrowed) {
    ++stats_.keys_escrow_released;
    ++swarm_->metrics().resilience().keys_escrow_recovered;
  }
  (void)false_receipt;
  release_key(*prev, releaser);
}

void TChainProtocol::release_key(Transaction& tx, PeerId releaser) {
  (void)releaser;  // latency identical either way in the simulator
  const TxId txid = tx.id;
  const PeerId requestor = tx.requestor;
  const PeerId donor = tx.donor;
  const PieceIndex piece = tx.piece;
  ++stats_.keys_released;
  if (obs::Trace* tr = swarm_->obs()) {
    const util::SimTime now = swarm_->simulator().now();
    tr->emit({.t = now,
              .kind = obs::EventKind::kKeyDelivered,
              .piece = piece,
              .a = donor,
              .b = requestor,
              .ref = txid,
              .chain = tx.chain});
    tr->registry().histogram("tx.lifetime_s").add(now - tx.started);
  }
  if (auto it = peers_.find(requestor); it != peers_.end()) {
    if (it->second.obligations > 0) --it->second.obligations;
  }
  tx.state = TxState::kCompleted;
  txs_.erase(txid);
  swarm_->send_control(
      [this, requestor, piece, donor] {
        if (swarm_->is_active(requestor)) {
          swarm_->grant_piece(requestor, piece, donor);
        }
      },
      /*on_lost=*/[this, requestor, piece, donor, txid] {
        // The key-release message itself was lost. The requestor's wait
        // times out; it abandons the ciphertext and re-requests the piece
        // from another donor.
        ++stats_.keys_lost;
        ++swarm_->metrics().resilience().keys_lost;
        if (obs::Trace* tr = swarm_->obs()) {
          tr->emit({.t = swarm_->simulator().now(),
                    .kind = obs::EventKind::kKeyLost,
                    .piece = piece,
                    .a = donor,
                    .b = requestor,
                    .ref = txid});
        }
        bt::Peer* r = swarm_->peer(requestor);
        if (r != nullptr && r->active && !r->have.get(piece) &&
            r->requested.get(piece)) {
          r->requested.clear(piece);
          ++stats_.piece_refetches;
          ++swarm_->metrics().resilience().piece_refetches;
        }
      });
}

void TChainProtocol::continue_chain(TxId txid) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    Transaction* tx = txs_.get(txid);
    if (tx == nullptr || tx->state != TxState::kAwaitKey) return;
    if (tx->next != 0 && txs_.get(tx->next) != nullptr) return;  // in flight
    if (!swarm_->is_active(tx->requestor)) {
      kill_tx(txid, true, obs::ChainBreakCause::kDeparture);
      return;
    }
    // A free-riding requestor will never reciprocate, whatever payee the
    // donor designates; the donor's pending count against it stays up and
    // the key is never released. (The chain was already terminated when
    // the free-rider swallowed the delivery.)
    if (const bt::Peer* r = swarm_->peer(tx->requestor);
        r != nullptr && r->freerider) {
      return;
    }
    if (!tx->key_escrowed && !swarm_->is_active(tx->donor)) {
      kill_tx(txid, true, obs::ChainBreakCause::kDeparture);
      return;
    }

    if (tx->payee != net::kNoPeer && swarm_->is_active(tx->payee) &&
        try_start_reciprocation(*tx)) {
      return;
    }

    // Payee unusable: the donor designates a replacement (§II-B4). An
    // escrowed key, however, dies with its payee — the departed donor is
    // not around to pick another (§II-B4's key handoff is best-effort).
    if (tx->key_escrowed) {
      kill_tx(txid, true, obs::ChainBreakCause::kDeparture);
      return;
    }
    const PeerId new_payee = choose_payee(tx->donor, tx->requestor, tx->piece);
    if (new_payee == net::kNoPeer || new_payee == tx->payee) {
      settle_free(*tx);
      return;
    }
    ++stats_.payee_reassignments;
    txs_.set_payee(txid, new_payee);
  }
  if (Transaction* tx = txs_.get(txid);
      tx != nullptr && tx->state == TxState::kAwaitKey) {
    settle_free(*tx);
  }
}

bool TChainProtocol::try_start_reciprocation(Transaction& tx) {
  const PeerId r = tx.requestor;  // becomes the next donor
  const PeerId p = tx.payee;      // becomes the next requestor
  if (p == r) return false;

  // Direct-reciprocity special case: payee == previous donor; the piece is
  // whatever the donor (now requestor of the new tx) needs via LRF.
  const bt::Peer* rp = swarm_->peer(r);
  const bt::Peer* pp = swarm_->peer(p);
  if (rp == nullptr || pp == nullptr) return false;

  PieceIndex forced = net::kNoPiece;
  if (!swarm_->select_lrf(p, r).has_value()) {
    // The payee needs nothing among r's completed pieces. Newcomer path:
    // forward the encrypted piece just received (§II-D1).
    if (!pp->requested.get(tx.piece)) {
      forced = tx.piece;
      ++stats_.bootstrap_forwards;
    } else {
      return false;
    }
  }
  return start_tx(r, p, tx.id, tx.chain, forced);
}

void TChainProtocol::settle_free(Transaction& tx) {
  // No qualified payee exists anywhere: the exchange degenerates to an
  // altruistic upload — the donor releases the key and the chain ends
  // (the same situation that makes termination uploads unencrypted).
  ++stats_.free_key_settlements;
  if (auto it = peers_.find(tx.donor); it != peers_.end()) {
    it->second.pending.resolve(tx.requestor);
  }
  break_chain(tx.chain, obs::ChainBreakCause::kNoPayee);
  release_key(tx, tx.donor);
}

void TChainProtocol::kill_tx(TxId txid, bool terminate_chain,
                             obs::ChainBreakCause cause) {
  Transaction* tx = txs_.get(txid);
  if (tx == nullptr) return;
  if (tx->encrypted()) {
    if (auto it = peers_.find(tx->donor); it != peers_.end()) {
      it->second.pending.resolve(tx->requestor);
    }
  }
  if (tx->state == TxState::kAwaitKey) {
    // A delivered ciphertext dies un-keyed: the key is lost to this
    // requestor however the transaction got here (donor crash, departed
    // payee, watchdog giving up).
    ++stats_.keys_lost;
    ++swarm_->metrics().resilience().keys_lost;
    if (obs::Trace* tr = swarm_->obs()) {
      tr->emit({.t = swarm_->simulator().now(),
                .kind = obs::EventKind::kKeyLost,
                .piece = tx->piece,
                .a = tx->donor,
                .b = tx->requestor,
                .ref = txid,
                .chain = tx->chain});
    }
    if (auto it = peers_.find(tx->requestor); it != peers_.end()) {
      if (it->second.obligations > 0) --it->second.obligations;
    }
    // The ciphertext is now useless; allow re-fetching the piece.
    if (bt::Peer* r = swarm_->peer(tx->requestor);
        r != nullptr && !r->have.get(tx->piece)) {
      r->requested.clear(tx->piece);
      if (r->active) {
        ++stats_.piece_refetches;
        ++swarm_->metrics().resilience().piece_refetches;
      }
    }
  }
  if (terminate_chain) break_chain(tx->chain, cause);
  txs_.erase(txid);
}

void TChainProtocol::arm_watchdog(TxId txid, int retries) {
  const double timeout = swarm_->config().tx_timeout;
  if (timeout <= 0.0) return;
  swarm_->simulator().schedule_in(
      timeout, [this, txid, retries] { watchdog_fire(txid, retries); });
}

void TChainProtocol::watchdog_fire(TxId txid, int retries) {
  Transaction* tx = txs_.get(txid);
  if (tx == nullptr || tx->state != TxState::kAwaitKey) return;  // settled

  // Reciprocation upload still in flight: progress, not a stall (a slow or
  // outage-stalled flow either completes or aborts on its own).
  if (tx->next != 0 && txs_.get(tx->next) != nullptr) {
    arm_watchdog(txid, retries);
    return;
  }

  // A free-riding requestor stalling forever is the §II-D2 sanction at
  // work, not a fault to recover from (only collusion leaves such a tx in
  // AwaitKey; the plain free-rider path erased it at swallow time).
  if (const bt::Peer* r = swarm_->peer(tx->requestor);
      r != nullptr && r->freerider) {
    return;
  }

  if (retries < swarm_->config().tx_max_retries) {
    ++stats_.tx_retries;
    if (obs::Trace* tr = swarm_->obs()) {
      tr->emit({.t = swarm_->simulator().now(),
                .kind = obs::EventKind::kTxRetry,
                .aux = static_cast<std::uint8_t>(retries < 255 ? retries : 255),
                .a = tx->donor,
                .b = tx->requestor,
                .ref = txid,
                .chain = tx->chain});
    }
    if (tx->next_delivered) {
      // The reciprocation piece arrived but our receipt evidently did not:
      // the payee re-sends it (receipt retransmission).
      ++stats_.receipts_resent;
      swarm_->send_control(
          [this, txid] { process_receipt(txid, /*false_receipt=*/false); });
    } else {
      // Reciprocation never got going — lost reassignment trigger, payee
      // gone, aborted upload. Re-kick the chain continuation.
      continue_chain(txid);
    }
    arm_watchdog(txid, retries + 1);
    return;
  }

  // Retries exhausted: tear the exchange down. Pending counts resolve, the
  // requestor's claim clears, and the piece is re-requested elsewhere.
  ++stats_.tx_timeouts;
  ++swarm_->metrics().resilience().transactions_timed_out;
  if (obs::Trace* tr = swarm_->obs()) {
    tr->emit({.t = swarm_->simulator().now(),
              .kind = obs::EventKind::kTxTimeout,
              .a = tx->donor,
              .b = tx->requestor,
              .ref = txid,
              .chain = tx->chain});
  }
  kill_tx(txid, /*terminate_chain=*/true, obs::ChainBreakCause::kWatchdog);
}

}  // namespace tc::protocols
