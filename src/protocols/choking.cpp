#include "src/protocols/choking.h"

#include <algorithm>

namespace tc::protocols {

ChokingProtocol::ChokeState& ChokingProtocol::state(PeerId id) {
  return states_[id];
}

double ChokingProtocol::score(const ChokeState& st, PeerId n) const {
  double s = 0.0;
  if (const auto it = st.recv_cur.find(n); it != st.recv_cur.end())
    s += it->second;
  if (const auto it = st.recv_prev.find(n); it != st.recv_prev.end())
    s += it->second;
  return s;
}

std::vector<PeerId> ChokingProtocol::interested_neighbors(PeerId p) const {
  std::vector<PeerId> out;
  const bt::Peer* pp = swarm_->peer(p);
  if (pp == nullptr) return out;
  for (PeerId n : pp->neighbors) {
    const bt::Peer* np = swarm_->peer(n);
    if (np == nullptr || !np->active || np->seeder) continue;
    if (swarm_->needs_from(n, p)) out.push_back(n);
  }
  return out;
}

void ChokingProtocol::on_peer_join(PeerId id) {
  states_[id];  // materialize
  // First rechoke shortly after joining, then every rechoke_period.
  swarm_->simulator().schedule_in(0.1, [this, id] { rechoke_loop(id); });
}

void ChokingProtocol::rechoke_loop(PeerId id) {
  if (!swarm_->is_active(id)) return;
  ++state(id).round;  // optimistic-unchoke rotation follows the timer
  rechoke(id);
  // Contribution windows rotate only on the periodic boundary (scores span
  // the last two rounds), not on event-driven re-chokes.
  ChokeState& st = state(id);
  st.recv_prev = std::move(st.recv_cur);
  st.recv_cur.clear();
  swarm_->simulator().schedule_in(swarm_->config().rechoke_period,
                                  [this, id] { rechoke_loop(id); });
}

void ChokingProtocol::on_peer_depart(PeerId id) { states_.erase(id); }

void ChokingProtocol::on_piece_complete(PeerId peer, PieceIndex, PeerId from) {
  const auto it = states_.find(peer);
  if (it != states_.end()) {
    it->second.recv_cur[from] += static_cast<double>(swarm_->config().piece_bytes);
  }
}

void ChokingProtocol::rechoke(PeerId id) {
  const bt::Peer* p = swarm_->peer(id);
  if (p == nullptr || !p->active) return;
  ChokeState& st = state(id);
  obs::Trace* tr = swarm_->obs();

  // Tracing: snapshot the unchoke set so the recompute can be diffed into
  // kChoke / kUnchoke events. Reads only; never perturbs the run.
  std::vector<PeerId> before;
  if (tr != nullptr) {
    before.reserve(st.unchoked.size());
    for (const auto& [n, w] : st.unchoked) {
      (void)w;
      before.push_back(n);
    }
    std::sort(before.begin(), before.end());
  }

  const bool freerider = p->freerider && !p->seeder;
  if (freerider) {
    // The attack model: contribute nothing.
    st.unchoked.clear();
  } else {
    compute_unchokes(id, st);
  }

  if (tr != nullptr) {
    std::vector<PeerId> after;
    after.reserve(st.unchoked.size());
    for (const auto& [n, w] : st.unchoked) {
      (void)w;
      after.push_back(n);
    }
    std::sort(after.begin(), after.end());
    const util::SimTime now = swarm_->simulator().now();
    std::size_t i = 0, j = 0;  // merge-walk the sorted before/after sets
    while (i < before.size() || j < after.size()) {
      if (j == after.size() || (i < before.size() && before[i] < after[j])) {
        tr->emit({.t = now, .kind = obs::EventKind::kChoke, .a = id,
                  .b = before[i]});
        ++i;
      } else if (i == before.size() || after[j] < before[i]) {
        tr->emit({.t = now, .kind = obs::EventKind::kUnchoke, .a = id,
                  .b = after[j]});
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
  if (freerider) return;

  for (const auto& [n, w] : st.unchoked) {
    (void)w;
    if (!st.uploading.count(n)) try_start_upload(id, n);
  }
}

void ChokingProtocol::try_start_upload(PeerId from, PeerId to) {
  ChokeState& st = state(from);
  const auto un = st.unchoked.find(to);
  if (un == st.unchoked.end()) return;
  if (!swarm_->is_active(to) || !swarm_->is_active(from)) return;
  if (!swarm_->needs_from(to, from)) return;
  const auto piece = swarm_->select_lrf(to, from);
  if (!piece) return;

  st.uploading.insert(to);
  swarm_->start_upload(
      from, to, *piece, un->second,
      [this](PeerId f, PeerId t, PieceIndex pc, bool ok) {
        const auto sit = states_.find(f);
        if (sit != states_.end()) sit->second.uploading.erase(t);
        if (!ok) return;
        swarm_->grant_piece(t, pc, f);
        if (swarm_->is_active(f)) fill_slots(f);
      });
}

void ChokingProtocol::fill_slots(PeerId from) {
  ChokeState& st = state(from);
  for (const auto& [n, w] : st.unchoked) {
    (void)w;
    if (!st.uploading.count(n)) try_start_upload(from, n);
  }
  if (st.uploading.empty()) {
    // Every unchoked neighbor is satisfied or gone: re-choke immediately
    // instead of idling until the next 10-second boundary.
    rechoke(from);
  }
}

// --- Original BitTorrent ----------------------------------------------------

void BitTorrentProtocol::compute_unchokes(PeerId p, ChokeState& st) {
  const bt::Peer* pp = swarm_->peer(p);
  const auto& cfg = swarm_->config();
  std::vector<PeerId> interested = interested_neighbors(p);
  st.unchoked.clear();

  if (pp->seeder) {
    // Seeder: rotate random interested leechers (altruistic).
    swarm_->rng().shuffle(interested);
    const std::size_t take =
        std::min(interested.size(), cfg.unchoke_slots + 1);
    for (std::size_t i = 0; i < take; ++i) st.unchoked[interested[i]] = 1.0;
    return;
  }

  // Top-k contributors by download rate over the last two rounds.
  std::vector<std::pair<double, PeerId>> ranked;
  ranked.reserve(interested.size());
  for (PeerId n : interested)
    ranked.emplace_back(score(st, n), n);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; i < ranked.size() && i < cfg.unchoke_slots; ++i) {
    st.unchoked[ranked[i].second] = 1.0;
  }

  // Optimistic unchoke: random interested choked neighbor, rotated every
  // optimistic_period (= every 3rd rechoke with the defaults).
  const auto rounds_per_opt = static_cast<std::uint64_t>(
      std::max(1.0, cfg.optimistic_period / cfg.rechoke_period));
  if (st.round % rounds_per_opt == 1 || st.optimistic == net::kNoPeer ||
      !swarm_->is_active(st.optimistic)) {
    std::vector<PeerId> choked;
    for (PeerId n : interested)
      if (!st.unchoked.count(n)) choked.push_back(n);
    st.optimistic =
        choked.empty() ? net::kNoPeer : choked[swarm_->rng().index(choked.size())];
  }
  if (st.optimistic != net::kNoPeer) st.unchoked[st.optimistic] = 1.0;
}

// --- PropShare ---------------------------------------------------------------

void PropShareProtocol::compute_unchokes(PeerId p, ChokeState& st) {
  const bt::Peer* pp = swarm_->peer(p);
  const auto& cfg = swarm_->config();
  std::vector<PeerId> interested = interested_neighbors(p);
  st.unchoked.clear();

  if (pp->seeder) {
    swarm_->rng().shuffle(interested);
    const std::size_t take =
        std::min(interested.size(), cfg.unchoke_slots + 1);
    for (std::size_t i = 0; i < take; ++i) st.unchoked[interested[i]] = 1.0;
    return;
  }

  // Bandwidth proportional to last-round contribution [11].
  double total = 0.0;
  std::vector<PeerId> noncontributors;
  for (PeerId n : interested) {
    const double s = score(st, n);
    if (s > 0.0) {
      st.unchoked[n] = s;
      total += s;
    } else {
      noncontributors.push_back(n);
    }
  }

  // ~20% exploration budget (the PropShare paper's newcomer share); with no
  // contributors the whole pipe explores.
  if (!noncontributors.empty()) {
    const PeerId pick =
        noncontributors[swarm_->rng().index(noncontributors.size())];
    st.unchoked[pick] = total > 0.0 ? 0.25 * total : 1.0;
  }
}

// --- Random BitTorrent ---------------------------------------------------------

void RandomBitTorrentProtocol::compute_unchokes(PeerId p, ChokeState& st) {
  const auto& cfg = swarm_->config();
  std::vector<PeerId> interested = interested_neighbors(p);
  st.unchoked.clear();
  swarm_->rng().shuffle(interested);
  const std::size_t take = std::min(interested.size(), cfg.unchoke_slots + 1);
  for (std::size_t i = 0; i < take; ++i) st.unchoked[interested[i]] = 1.0;
  (void)p;
}

}  // namespace tc::protocols
