#include "src/protocols/registry.h"

#include <algorithm>
#include <stdexcept>

#include "src/protocols/choking.h"
#include "src/protocols/fairtorrent.h"
#include "src/protocols/indirect.h"
#include "src/protocols/tchain.h"

namespace tc::protocols {

std::unique_ptr<bt::Protocol> make_protocol(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (n == "bittorrent" || n == "bt") return std::make_unique<BitTorrentProtocol>();
  if (n == "propshare") return std::make_unique<PropShareProtocol>();
  if (n == "fairtorrent") return std::make_unique<FairTorrentProtocol>();
  if (n == "tchain" || n == "t-chain") return std::make_unique<TChainProtocol>();
  if (n == "randombt" || n == "random")
    return std::make_unique<RandomBitTorrentProtocol>();
  if (n == "eigentrust") return std::make_unique<EigenTrustProtocol>();
  if (n == "dandelion") return std::make_unique<DandelionProtocol>();
  throw std::invalid_argument("unknown protocol: " + name);
}

std::vector<std::string> paper_protocols() {
  return {"bittorrent", "propshare", "fairtorrent", "tchain"};
}

std::vector<std::string> table2_protocols() {
  return {"bittorrent", "propshare", "fairtorrent", "tchain", "eigentrust",
          "dandelion"};
}

}  // namespace tc::protocols
