// T-Chain incentive protocol bound to the swarm simulator (paper §II).
//
// Chain lifecycle in the simulator:
//   * the seeder keeps `seeder_chain_slots` chains fed (initiation, Fig 1a);
//   * each delivered encrypted piece obliges its requestor to reciprocate
//     to the designated payee — that upload is the next transaction
//     (continuation, Fig 1b);
//   * the payee's receipt releases the previous donor's key (almost-fair
//     exchange);
//   * a donor that finds no qualified payee uploads unencrypted and the
//     chain terminates (Fig 1c);
//   * newcomer bootstrapping picks a piece requestor AND payee need
//     (§II-D1), flow control bans neighbors with >= k pending pieces
//     (§II-D2), idle leechers opportunistically seed new chains (§II-D3);
//   * free-riders simply never reciprocate; colluders send false receipts
//     for each other (§III-A4).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "src/bt/protocol.h"
#include "src/bt/swarm.h"
#include "src/core/chain_registry.h"
#include "src/core/pending.h"
#include "src/core/transaction.h"

namespace tc::protocols {

using bt::PeerId;
using bt::PieceIndex;
using core::ChainId;
using core::TxId;

class TChainProtocol : public bt::Protocol {
 public:
  std::string name() const override { return "T-Chain"; }
  util::ByteCount default_piece_bytes() const override {
    return 64 * util::kKiB;
  }

  void on_run_start() override;
  void on_peer_join(PeerId id) override;
  void on_peer_depart(PeerId id) override;
  void on_peer_crash(PeerId id) override;

  // --- Introspection for benches/tests -------------------------------------
  const core::ChainRegistry& chains() const { return chains_; }
  core::ChainRegistry& chains() { return chains_; }
  const core::TransactionTable& transactions() const { return txs_; }

  struct Stats {
    std::uint64_t encrypted_uploads = 0;
    std::uint64_t terminal_uploads = 0;   // unencrypted (chain termination)
    std::uint64_t receipts = 0;
    std::uint64_t false_receipts = 0;     // collusion attack
    std::uint64_t keys_released = 0;
    std::uint64_t keys_escrowed = 0;      // donor departed, payee held key
    std::uint64_t keys_escrow_released = 0;  // ... and the payee released it
    std::uint64_t keys_lost = 0;          // AwaitKey died: key never arrived
    std::uint64_t bootstrap_forwards = 0; // newcomer forwarded its pending piece
    std::uint64_t payee_reassignments = 0;
    std::uint64_t free_key_settlements = 0;  // no payee found: key gratis
    std::uint64_t direct_payees = 0;
    std::uint64_t indirect_payees = 0;
    // Per-transaction watchdog (cfg.tx_timeout > 0).
    std::uint64_t tx_retries = 0;         // stalled exchange re-kicked
    std::uint64_t tx_timeouts = 0;        // retries exhausted, tx torn down
    std::uint64_t receipts_resent = 0;    // receipt presumed lost, re-sent
    std::uint64_t piece_refetches = 0;    // abandoned ciphertext re-requested
  };
  const Stats& stats() const { return stats_; }

  int pending_of(PeerId donor, PeerId neighbor) const;

 private:
  struct PeerState {
    core::PendingTracker pending;
    std::size_t obligations = 0;     // encrypted pieces not yet reciprocated
    std::size_t active_uploads = 0;  // flows this peer is sourcing
    // Terminal (unencrypted) gifts handed to each neighbor.
    std::unordered_map<PeerId, int> gifts;
    explicit PeerState(int cap) : pending(cap) {}
  };

  PeerState& state(PeerId id);
  bool is_seeder(PeerId id) const;

  // Chain drivers.
  void census_loop();
  void opp_loop(PeerId id);
  void prune_banned_neighbors(PeerId id);
  void seeder_tick();
  void opportunistic_tick(PeerId id);
  bool initiate_chain(PeerId donor, bool by_seeder);

  // Starts the transaction `donor -> requestor` (reciprocating `prev` when
  // prev != 0). `forced_piece` overrides LRF (bootstrap forward).
  bool start_tx(PeerId donor, PeerId requestor, TxId prev, ChainId chain,
                PieceIndex forced_piece = net::kNoPiece);

  // Payee choice for an upload donor -> requestor of `piece`.
  PeerId choose_payee(PeerId donor, PeerId requestor, PieceIndex piece);

  void on_upload_done(TxId txid, bool ok);
  void handle_encrypted_delivery(core::Transaction& tx);
  void process_receipt(TxId prev_id, bool false_receipt);

  // Shared graceful/crash departure settlement; a crash forfeits the
  // §II-B4 escrow handoff (the donor is not around to hand the key over).
  void handle_exit(PeerId id, bool crashed);

  // Per-transaction watchdog (§II-B4 hardening): armed when a tx enters
  // AwaitKey; re-kicks a stalled exchange (lost receipt / lost
  // reassignment trigger) up to cfg.tx_max_retries times, then tears it
  // down so the requestor can re-fetch the piece elsewhere. Disabled when
  // cfg.tx_timeout == 0.
  void arm_watchdog(TxId txid, int retries);
  void watchdog_fire(TxId txid, int retries);

  // Ensures tx (AwaitKey) eventually gets reciprocated: (re)starts the
  // reciprocation upload, reassigning payees as needed; settles with a
  // gratis key when no payee exists.
  void continue_chain(TxId txid);
  bool try_start_reciprocation(core::Transaction& tx);
  void settle_free(core::Transaction& tx);
  // `cause` labels the kChainBreak event when terminate_chain is true and
  // observability is on; ignored otherwise.
  void kill_tx(TxId txid, bool terminate_chain,
               obs::ChainBreakCause cause = obs::ChainBreakCause::kAborted);
  void release_key(core::Transaction& tx, PeerId releaser);

  // chains_.terminate plus a kChainBreak trace event (first termination
  // only — terminate is idempotent and so is the event).
  void break_chain(ChainId id, obs::ChainBreakCause cause);

  core::TransactionTable txs_;
  core::ChainRegistry chains_;
  std::unordered_map<PeerId, PeerState> peers_;
  // Identities that have been observed reciprocating at least once.
  // Conceptually this is per-donor local history plus what a peer observes
  // as a payee; we pool it for simulation efficiency — the distinction
  // only affects how fast gift eligibility is learned, not who earns it.
  std::unordered_set<PeerId> proven_;
  Stats stats_;
  double census_period_ = 5.0;
};

}  // namespace tc::protocols
