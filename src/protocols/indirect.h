// Indirect-reciprocity baselines from the paper's Table II.
//
// EigenTrust [13]: reputation-based unchoking. Peers accumulate local
// trust from satisfactory downloads; a global trust vector is computed by
// the EigenTrust power iteration over normalized local trust with a
// pre-trusted seeder, and peers unchoke the most-trusted interested
// neighbors, reserving ~10% of slots for zero-trust newcomers (the
// bootstrap allotment the paper notes is "the target of strategic
// free-riders"). Colluders mount the false-praise attack: they report
// maximal local trust for each other.
//
// Dandelion [14]: central-server credit. Every piece delivery is mediated
// by a trusted third party that moves one credit from the downloader to
// the uploader; newcomers receive a fixed initial credit (earned "outside
// the system" per the paper). Cheating is impossible, but whitewashing
// re-mints the initial credit, and the server is the scalability/trust
// cost the paper criticizes.
//
// Both are deliberately faithful-but-compact: the simulator computes the
// EigenTrust iteration and the credit bank centrally, which matches how
// these systems behave once converged.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "src/bt/protocol.h"
#include "src/bt/swarm.h"
#include "src/protocols/choking.h"

namespace tc::protocols {

class EigenTrustProtocol : public ChokingProtocol {
 public:
  std::string name() const override { return "EigenTrust"; }
  util::ByteCount default_piece_bytes() const override {
    return 256 * util::kKiB;
  }

  void on_run_start() override;
  void on_piece_complete(PeerId peer, PieceIndex piece, PeerId from) override;

  // Current global trust of a peer (0 for strangers). Exposed for tests.
  double trust(PeerId id) const;

 protected:
  void compute_unchokes(PeerId p, ChokeState& st) override;

 private:
  void recompute_trust();
  void trust_loop();

  // sat_[i][j]: satisfactory interactions i observed with j (pieces
  // received). Colluders inject false praise here.
  std::unordered_map<PeerId, std::unordered_map<PeerId, double>> sat_;
  std::unordered_map<PeerId, double> global_trust_;
  double trust_period_ = 10.0;
  int power_iterations_ = 12;
};

class DandelionProtocol : public bt::Protocol {
 public:
  std::string name() const override { return "Dandelion"; }
  util::ByteCount default_piece_bytes() const override {
    return 256 * util::kKiB;
  }

  void on_peer_join(PeerId id) override;
  void on_peer_depart(PeerId id) override;

  double credit(PeerId id) const;
  // Initial credit granted to every (apparent) newcomer — the whitewash
  // attack surface.
  static constexpr double kInitialCredit = 4.0;

 private:
  struct State {
    double credit = kInitialCredit;
    std::size_t active_uploads = 0;
  };
  State& state(PeerId id) { return states_[id]; }
  void pump(PeerId id);
  void tick(PeerId id);

  std::unordered_map<PeerId, State> states_;
  std::size_t upload_slots_ = 4;
};

}  // namespace tc::protocols
