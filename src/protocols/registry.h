// Factory for protocols by name — the bench harness and examples use this
// to sweep { BitTorrent, PropShare, FairTorrent, T-Chain, RandomBT }.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/bt/protocol.h"

namespace tc::protocols {

// Names: "bittorrent", "propshare", "fairtorrent", "tchain", "randombt",
// "eigentrust", "dandelion"
// (case-insensitive). Throws std::invalid_argument for unknown names.
std::unique_ptr<bt::Protocol> make_protocol(const std::string& name);

// The paper's four headline protocols, in figure-legend order.
std::vector<std::string> paper_protocols();

// Table II's full cast: the four direct-reciprocity schemes plus the two
// indirect ones (EigenTrust, Dandelion).
std::vector<std::string> table2_protocols();

}  // namespace tc::protocols
