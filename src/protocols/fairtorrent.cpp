#include "src/protocols/fairtorrent.h"

#include <limits>

namespace tc::protocols {

void FairTorrentProtocol::on_peer_join(PeerId id) {
  states_[id];
  swarm_->simulator().schedule_in(0.1, [this, id] { tick(id); });
}

void FairTorrentProtocol::tick(PeerId id) {
  if (!swarm_->is_active(id)) return;
  next_send(id);
  // Periodic retry covers the idle case (nobody interested right now).
  swarm_->simulator().schedule_in(swarm_->config().rechoke_period,
                                  [this, id] { tick(id); });
}

void FairTorrentProtocol::on_peer_depart(PeerId id) { states_.erase(id); }

void FairTorrentProtocol::on_piece_complete(PeerId peer, PieceIndex,
                                            PeerId from) {
  const auto it = states_.find(peer);
  if (it != states_.end()) {
    it->second.deficit[from] -=
        static_cast<double>(swarm_->config().piece_bytes);
  }
}

void FairTorrentProtocol::on_neighbor_added(PeerId a, PeerId b) {
  // A new interested neighbor may unblock an idle sender on either side.
  if (swarm_->is_active(a)) next_send(a);
  if (swarm_->is_active(b)) next_send(b);
}

double FairTorrentProtocol::deficit(PeerId peer, PeerId neighbor) const {
  const auto it = states_.find(peer);
  if (it == states_.end()) return 0.0;
  const auto d = it->second.deficit.find(neighbor);
  return d == it->second.deficit.end() ? 0.0 : d->second;
}

void FairTorrentProtocol::next_send(PeerId id) {
  const bt::Peer* p = swarm_->peer(id);
  if (p == nullptr || !p->active) return;
  if (p->freerider && !p->seeder) return;  // contributes nothing
  FtState& st = state(id);
  if (st.sending) return;

  // Lowest-deficit interested neighbor (ties random).
  PeerId target = net::kNoPeer;
  double best = std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (PeerId n : p->neighbors) {
    const bt::Peer* np = swarm_->peer(n);
    if (np == nullptr || !np->active || np->seeder) continue;
    if (!swarm_->needs_from(n, id)) continue;
    double d = 0.0;
    if (const auto it = st.deficit.find(n); it != st.deficit.end())
      d = it->second;
    if (d < best) {
      best = d;
      target = n;
      ties = 1;
    } else if (d == best) {
      ++ties;
      if (swarm_->rng().index(ties) == 0) target = n;
    }
  }
  if (target == net::kNoPeer) return;

  const auto piece = swarm_->select_lrf(target, id);
  if (!piece) return;

  st.sending = true;
  swarm_->start_upload(
      id, target, *piece, /*weight=*/1.0,
      [this](PeerId f, PeerId t, PieceIndex pc, bool ok) {
        const auto it = states_.find(f);
        if (it != states_.end()) it->second.sending = false;
        if (ok) {
          if (it != states_.end()) {
            it->second.deficit[t] +=
                static_cast<double>(swarm_->config().piece_bytes);
          }
          swarm_->grant_piece(t, pc, f);
        }
        if (swarm_->is_active(f)) next_send(f);
      });
}

}  // namespace tc::protocols
