// Shared machinery for rate-based unchoking protocols (original BitTorrent,
// PropShare, Random BitTorrent): per-round contribution accounting, the
// rechoke timer, and the per-unchoked-neighbor upload loop. Subclasses only
// decide who gets unchoked and with what bandwidth weight.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "src/bt/protocol.h"
#include "src/bt/swarm.h"

namespace tc::protocols {

using bt::PeerId;
using bt::PieceIndex;

class ChokingProtocol : public bt::Protocol {
 public:
  void on_peer_join(PeerId id) override;
  void on_peer_depart(PeerId id) override;
  void on_piece_complete(PeerId peer, PieceIndex piece, PeerId from) override;

 protected:
  struct ChokeState {
    // Bytes received from each neighbor in the current / previous round.
    std::unordered_map<PeerId, double> recv_cur;
    std::unordered_map<PeerId, double> recv_prev;
    // Current unchoke set with per-flow bandwidth weights.
    std::unordered_map<PeerId, double> unchoked;
    // Neighbors to which an upload flow is currently in flight.
    std::unordered_set<PeerId> uploading;
    PeerId optimistic = net::kNoPeer;
    std::uint64_t round = 0;
  };

  // Contribution score: bytes received over the last two rounds (~20 s).
  double score(const ChokeState& st, PeerId n) const;

  // Subclass decides the unchoke set for this round.
  virtual void compute_unchokes(PeerId p, ChokeState& st) = 0;

  // Interested = active, non-seeder neighbor that needs a piece of `p`.
  std::vector<PeerId> interested_neighbors(PeerId p) const;

  ChokeState& state(PeerId id);

  void rechoke(PeerId id);
  void try_start_upload(PeerId from, PeerId to);
  // Keeps the uploader's pipe busy: retries every unchoked neighbor and
  // falls back to an immediate re-choke when all of them are satisfied
  // (event-driven version of mainline's interest-change handling).
  void fill_slots(PeerId from);

 private:
  void rechoke_loop(PeerId id);
  std::unordered_map<PeerId, ChokeState> states_;
};

// Original BitTorrent (§II-A): top-4 contributors by rate + one optimistic
// unchoke rotated every 30 s; the seeder rotates random interested peers.
class BitTorrentProtocol : public ChokingProtocol {
 public:
  std::string name() const override { return "BitTorrent"; }
  util::ByteCount default_piece_bytes() const override {
    return 256 * util::kKiB;
  }

 protected:
  void compute_unchokes(PeerId p, ChokeState& st) override;
};

// PropShare [11]: upload bandwidth split proportionally to last-round
// contributions, with a ~20% exploration budget for newcomers.
class PropShareProtocol : public ChokingProtocol {
 public:
  std::string name() const override { return "PropShare"; }
  util::ByteCount default_piece_bytes() const override {
    return 256 * util::kKiB;
  }

 protected:
  void compute_unchokes(PeerId p, ChokeState& st) override;
};

// Random BitTorrent (§IV-I): all bandwidth goes to random unchokes.
class RandomBitTorrentProtocol : public ChokingProtocol {
 public:
  std::string name() const override { return "RandomBT"; }
  util::ByteCount default_piece_bytes() const override {
    return 256 * util::kKiB;
  }

 protected:
  void compute_unchokes(PeerId p, ChokeState& st) override;
};

}  // namespace tc::protocols
