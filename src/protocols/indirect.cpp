#include "src/protocols/indirect.h"

#include <algorithm>
#include <cmath>

namespace tc::protocols {

// --- EigenTrust ---------------------------------------------------------------

void EigenTrustProtocol::on_run_start() {
  swarm_->simulator().schedule_in(trust_period_, [this] { trust_loop(); });
}

void EigenTrustProtocol::trust_loop() {
  recompute_trust();
  swarm_->simulator().schedule_in(trust_period_, [this] { trust_loop(); });
}

void EigenTrustProtocol::on_piece_complete(PeerId peer, PieceIndex piece,
                                           PeerId from) {
  ChokingProtocol::on_piece_complete(peer, piece, from);
  sat_[peer][from] += 1.0;
}

double EigenTrustProtocol::trust(PeerId id) const {
  const auto it = global_trust_.find(id);
  return it == global_trust_.end() ? 0.0 : it->second;
}

void EigenTrustProtocol::recompute_trust() {
  // t_{k+1} = (1-a) C^T t_k + a p, with pre-trust p concentrated on the
  // seeder and a = 0.15 (the EigenTrust paper's damping against collusion
  // cliques).
  const auto peers = swarm_->active_peers();
  if (peers.empty()) return;
  constexpr double kAlpha = 0.15;
  const PeerId seeder = swarm_->seeder_id();
  const bool collude = swarm_->config().freerider_collude;

  // Normalized local trust rows, with the false-praise attack injected.
  std::unordered_map<PeerId, std::vector<std::pair<PeerId, double>>> rows;
  for (PeerId i : peers) {
    std::vector<std::pair<PeerId, double>> row;
    double total = 0.0;
    const bt::Peer* pi = swarm_->peer(i);
    const bool i_colluder = pi != nullptr && pi->colluder;
    if (const auto it = sat_.find(i); it != sat_.end()) {
      for (const auto& [j, s] : it->second) {
        if (!swarm_->is_active(j)) continue;
        row.emplace_back(j, s);
        total += s;
      }
    }
    if (i_colluder && collude) {
      // False praise: report maximal trust in fellow colluders.
      for (PeerId j : peers) {
        const bt::Peer* pj = swarm_->peer(j);
        if (pj != nullptr && pj->colluder && j != i) {
          row.emplace_back(j, total > 0 ? total : 1.0);
          total += total > 0 ? total : 1.0;
        }
      }
    }
    if (total > 0) {
      for (auto& [j, s] : row) s /= total;
      rows[i] = std::move(row);
    }
  }

  std::unordered_map<PeerId, double> t;
  const double uniform = 1.0 / static_cast<double>(peers.size());
  for (PeerId i : peers) t[i] = uniform;
  for (int iter = 0; iter < power_iterations_; ++iter) {
    std::unordered_map<PeerId, double> next;
    for (PeerId i : peers) {
      const auto it = rows.find(i);
      if (it == rows.end()) continue;
      const double ti = t[i];
      for (const auto& [j, c] : it->second) next[j] += (1 - kAlpha) * c * ti;
    }
    next[seeder] += kAlpha;  // pre-trust mass
    t = std::move(next);
  }
  global_trust_ = std::move(t);
}

void EigenTrustProtocol::compute_unchokes(PeerId p, ChokeState& st) {
  const bt::Peer* pp = swarm_->peer(p);
  const auto& cfg = swarm_->config();
  std::vector<PeerId> interested = interested_neighbors(p);
  st.unchoked.clear();
  if (interested.empty()) return;

  if (pp->seeder) {
    swarm_->rng().shuffle(interested);
    const std::size_t take = std::min(interested.size(), cfg.unchoke_slots + 1);
    for (std::size_t i = 0; i < take; ++i) st.unchoked[interested[i]] = 1.0;
    return;
  }

  // Most-trusted interested neighbors get the regular slots...
  std::vector<std::pair<double, PeerId>> ranked;
  ranked.reserve(interested.size());
  for (PeerId n : interested) ranked.emplace_back(trust(n), n);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; i < ranked.size() && i < cfg.unchoke_slots; ++i) {
    st.unchoked[ranked[i].second] = 1.0;
  }
  // ...and ~10% of resources go to zero-trust newcomers (one slot with a
  // half weight ~= 10% of a 5-slot pipe), EigenTrust's bootstrap allotment.
  std::vector<PeerId> newcomers;
  for (PeerId n : interested) {
    if (trust(n) <= 1e-12 && !st.unchoked.count(n)) newcomers.push_back(n);
  }
  if (!newcomers.empty()) {
    st.unchoked[newcomers[swarm_->rng().index(newcomers.size())]] = 0.5;
  }
}

// --- Dandelion -----------------------------------------------------------------

void DandelionProtocol::on_peer_join(PeerId id) {
  states_[id];  // mint initial credit (the server sees a newcomer)
  swarm_->simulator().schedule_in(0.1, [this, id] { tick(id); });
}

void DandelionProtocol::on_peer_depart(PeerId id) { states_.erase(id); }

double DandelionProtocol::credit(PeerId id) const {
  const auto it = states_.find(id);
  return it == states_.end() ? 0.0 : it->second.credit;
}

void DandelionProtocol::tick(PeerId id) {
  if (!swarm_->is_active(id)) return;
  // Dandelion assumes credit can be "earned by some means outside the
  // scope of the file-sharing system": a broke compliant client tops up a
  // single credit per period. Free-riders, by definition, spend nothing —
  // they live off the per-identity initial mint (and whitewashing).
  if (const bt::Peer* p = swarm_->peer(id);
      p != nullptr && !p->seeder && !p->freerider) {
    State& st = state(id);
    if (st.credit < 1.0) st.credit = 1.0;
  }
  pump(id);
  swarm_->simulator().schedule_in(swarm_->config().rechoke_period,
                                  [this, id] { tick(id); });
}

void DandelionProtocol::pump(PeerId id) {
  const bt::Peer* p = swarm_->peer(id);
  if (p == nullptr || !p->active) return;
  if (p->freerider && !p->seeder) return;  // uploads nothing
  State& st = state(id);
  // The server mints one credit per delivered piece for the uploader and
  // burns one from the downloader — each peer's balance tracks its own
  // contribution surplus (initial + uploaded - downloaded), so finishers
  // leaving cannot drain the economy.
  const bool free_service = false;
  while (st.active_uploads < upload_slots_) {
    PeerId target = net::kNoPeer;
    std::size_t count = 0;
    for (PeerId n : p->neighbors) {
      const bt::Peer* np = swarm_->peer(n);
      if (np == nullptr || !np->active || np->seeder) continue;
      if (!swarm_->needs_from(n, id)) continue;
      if (!free_service && credit(n) < 1.0) continue;  // cannot pay
      ++count;
      if (swarm_->rng().index(count) == 0) target = n;
    }
    if (target == net::kNoPeer) return;
    const auto piece = swarm_->select_lrf(target, id);
    if (!piece) return;

    // Escrow the payment at upload start (server-mediated: no cheating).
    if (!free_service) state(target).credit -= 1.0;
    ++st.active_uploads;
    swarm_->start_upload(
        id, target, *piece, 1.0,
        [this, free_service](PeerId f, PeerId t, PieceIndex pc, bool ok) {
          if (auto it = states_.find(f); it != states_.end()) {
            if (it->second.active_uploads > 0) --it->second.active_uploads;
            if (ok && !free_service) it->second.credit += 1.0;
          }
          if (!ok) {
            // Server refunds an undelivered piece.
            if (!free_service) {
              if (auto it = states_.find(t); it != states_.end())
                it->second.credit += 1.0;
            }
            return;
          }
          swarm_->grant_piece(t, pc, f);
          if (swarm_->is_active(f)) pump(f);
        });
  }
}

}  // namespace tc::protocols
