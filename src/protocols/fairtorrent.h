// FairTorrent [12]: deficit-based distributed fair exchange. Every peer
// tracks, per neighbor, deficit = bytes sent - bytes received, and always
// sends the next piece to the interested neighbor with the lowest deficit.
// No choking, no bandwidth allocation — sends are serial at full rate.
//
// The known weakness the paper exploits (§IV-C): deficits are bound to
// identities, so a whitewashing free-rider re-enters with deficit 0 and
// collects one free piece per identity; seeders cannot be protected at all.
#pragma once

#include <unordered_map>

#include "src/bt/protocol.h"
#include "src/bt/swarm.h"

namespace tc::protocols {

using bt::PeerId;
using bt::PieceIndex;

class FairTorrentProtocol : public bt::Protocol {
 public:
  std::string name() const override { return "FairTorrent"; }
  util::ByteCount default_piece_bytes() const override {
    return 64 * util::kKiB;  // FairTorrent's basic exchange unit (§IV-A)
  }

  void on_peer_join(PeerId id) override;
  void on_peer_depart(PeerId id) override;
  void on_piece_complete(PeerId peer, PieceIndex piece, PeerId from) override;
  void on_neighbor_added(PeerId a, PeerId b) override;

  double deficit(PeerId peer, PeerId neighbor) const;

 private:
  struct FtState {
    std::unordered_map<PeerId, double> deficit;  // sent - received
    bool sending = false;
  };

  FtState& state(PeerId id) { return states_[id]; }
  void next_send(PeerId id);
  void tick(PeerId id);

  std::unordered_map<PeerId, FtState> states_;
};

}  // namespace tc::protocols
