#include "src/analysis/metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/util/units.h"

namespace tc::analysis {

PeerRecord& SwarmMetrics::record(std::uint32_t id) {
  const auto it = index_.find(id);
  if (it != index_.end()) return records_[it->second];
  index_[id] = records_.size();
  records_.emplace_back();
  records_.back().id = id;
  return records_.back();
}

const PeerRecord* SwarmMetrics::find(std::uint32_t id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &records_[it->second];
}

void SwarmMetrics::rekey(std::uint32_t old_id, std::uint32_t new_id) {
  const auto it = index_.find(old_id);
  if (it == index_.end()) throw std::invalid_argument("rekey: unknown peer");
  const std::size_t slot = it->second;
  index_.erase(it);
  index_[new_id] = slot;
  records_[slot].id = new_id;
  ++records_[slot].whitewash_count;
  const auto tl = timelines_.find(old_id);
  if (tl != timelines_.end()) {
    timelines_[new_id] = std::move(tl->second);
    timelines_.erase(old_id);
  }
}

std::vector<const PeerRecord*> SwarmMetrics::all() const {
  std::vector<const PeerRecord*> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(&r);
  return out;
}

void SwarmMetrics::enable_piece_trace(std::uint32_t id) { timelines_[id]; }

bool SwarmMetrics::tracing(std::uint32_t id) const {
  return timelines_.count(id) > 0;
}

void SwarmMetrics::trace_encrypted(std::uint32_t id, std::uint32_t piece,
                                   SimTime t) {
  const auto it = timelines_.find(id);
  if (it != timelines_.end()) it->second.encrypted_received.emplace_back(t, piece);
}

void SwarmMetrics::trace_completed(std::uint32_t id, std::uint32_t piece,
                                   SimTime t) {
  const auto it = timelines_.find(id);
  if (it != timelines_.end()) it->second.completed.emplace_back(t, piece);
}

const PieceTimeline* SwarmMetrics::timeline(std::uint32_t id) const {
  const auto it = timelines_.find(id);
  return it == timelines_.end() ? nullptr : &it->second;
}

bool SwarmMetrics::matches(const PeerRecord& r, PeerFilter f) const {
  if (r.seeder) return false;
  switch (f) {
    case PeerFilter::kCompliant: return !r.freerider;
    case PeerFilter::kFreeRiders: return r.freerider;
    case PeerFilter::kAll: return true;
  }
  return false;
}

util::Distribution SwarmMetrics::completion_times(PeerFilter f) const {
  util::Distribution d;
  for (const auto& r : records_) {
    if (matches(r, f) && r.finished()) d.add(r.completion_time());
  }
  return d;
}

std::size_t SwarmMetrics::unfinished_count(PeerFilter f) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (matches(r, f) && !r.finished()) ++n;
  }
  return n;
}

double SwarmMetrics::mean_uplink_utilization(PeerFilter f,
                                             SimTime end_time) const {
  util::RunningStats s;
  for (const auto& r : records_) {
    if (!matches(r, f)) continue;
    SimTime leave = r.finished() ? r.finish_time
                  : (r.depart_time >= 0 ? r.depart_time : end_time);
    const double dwell = leave - r.join_time;
    if (dwell <= 0 || r.upload_kbps <= 0) continue;
    const double cap_bytes = util::kbps_to_bytes_per_sec(r.upload_kbps) * dwell;
    s.add(std::min(1.0, r.bytes_uploaded / cap_bytes));
  }
  return s.mean();
}

util::Distribution SwarmMetrics::fairness_factors(std::size_t last_n) const {
  // Paper: fairness factor of the last N compliant leechers to finish.
  std::vector<const PeerRecord*> finished;
  for (const auto& r : records_) {
    if (matches(r, PeerFilter::kCompliant) && r.finished())
      finished.push_back(&r);
  }
  std::sort(finished.begin(), finished.end(),
            [](const PeerRecord* a, const PeerRecord* b) {
              return a->finish_time < b->finish_time;
            });
  if (last_n > 0 && finished.size() > last_n)
    finished.erase(finished.begin(),
                   finished.end() - static_cast<std::ptrdiff_t>(last_n));

  util::Distribution d;
  for (const auto* r : finished) {
    const double up = static_cast<double>(r->pieces_uploaded);
    const double down = static_cast<double>(r->pieces_downloaded);
    d.add(up > 0 ? down / up : std::numeric_limits<double>::infinity());
  }
  return d;
}

double SwarmMetrics::mean_download_throughput(SimTime horizon) const {
  util::RunningStats s;
  for (const auto& r : records_) {
    if (!matches(r, PeerFilter::kCompliant)) continue;
    if (r.join_time >= horizon) continue;
    SimTime leave = r.finished() ? r.finish_time
                  : (r.depart_time >= 0 ? r.depart_time : horizon);
    leave = std::min(leave, horizon);
    const double dwell = leave - r.join_time;
    if (dwell <= 0) continue;
    s.add(r.bytes_downloaded / dwell);
  }
  return s.mean();
}

double optimal_completion_time(double file_bytes, double seed_bytes_per_sec,
                               const std::vector<double>& leecher_bytes_per_sec) {
  if (seed_bytes_per_sec <= 0) throw std::invalid_argument("seed rate <= 0");
  double total = seed_bytes_per_sec;
  for (double u : leecher_bytes_per_sec) total += u;
  const double n = static_cast<double>(leecher_bytes_per_sec.size());
  return std::max(file_bytes / seed_bytes_per_sec, n * file_bytes / total);
}

}  // namespace tc::analysis
