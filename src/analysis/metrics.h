// Per-peer measurement records and the aggregate statistics the paper's
// figures report: average download completion time, uplink utilization,
// fairness factors (downloaded/uploaded pieces), throughput, and per-piece
// arrival timelines (Figure 5).
//
// A "logical peer" keeps one record across whitewashing identity changes,
// so a whitewashing free-rider's completion time spans its whole life.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/util/stats.h"
#include "src/util/units.h"

namespace tc::analysis {

using util::SimTime;

struct PeerRecord {
  std::uint32_t id = 0;          // current identity
  bool seeder = false;
  bool freerider = false;
  bool colluder = false;
  double upload_kbps = 0.0;
  SimTime join_time = 0.0;
  SimTime finish_time = -1.0;    // < 0: never finished
  SimTime depart_time = -1.0;    // < 0: still present at end
  std::int64_t pieces_uploaded = 0;
  std::int64_t pieces_downloaded = 0;
  double bytes_uploaded = 0.0;
  double bytes_downloaded = 0.0;
  int whitewash_count = 0;

  bool finished() const { return finish_time >= 0.0; }
  double completion_time() const { return finish_time - join_time; }
};

// (time, piece) samples for the two series of Figure 5.
struct PieceTimeline {
  std::vector<std::pair<SimTime, std::uint32_t>> encrypted_received;
  std::vector<std::pair<SimTime, std::uint32_t>> completed;  // key received
};

// Aggregate resilience counters: how much injected failure a run absorbed
// (src/sim/faults.*) and what recovering from it cost. Swarm-level fields
// are filled by the swarm; transaction-level ones by the protocol.
struct ResilienceStats {
  // Injected failure events.
  std::uint64_t crashes = 0;            // abrupt exits, no escrow handoff
  std::uint64_t churn_departures = 0;   // graceful mid-download leaves
  std::uint64_t control_sent = 0;       // control-plane messages attempted
  std::uint64_t control_dropped = 0;    // ... of which silently lost
  std::uint64_t upload_outages = 0;     // transient zero-capacity intervals
  // Recovery outcomes.
  std::uint64_t transactions_timed_out = 0;  // watchdog gave up on a tx
  std::uint64_t keys_lost = 0;               // ciphertext abandoned, no key
  std::uint64_t keys_escrow_recovered = 0;   // escrowed key reached requestor
  std::uint64_t piece_refetches = 0;         // piece re-requested elsewhere
};

class SwarmMetrics {
 public:
  // Creates the record on first touch.
  PeerRecord& record(std::uint32_t id);
  const PeerRecord* find(std::uint32_t id) const;

  // Whitewash: the logical peer previously known as old_id continues as
  // new_id (same record).
  void rekey(std::uint32_t old_id, std::uint32_t new_id);

  std::vector<const PeerRecord*> all() const;

  ResilienceStats& resilience() { return resilience_; }
  const ResilienceStats& resilience() const { return resilience_; }

  // --- Figure 5 support -------------------------------------------------
  void enable_piece_trace(std::uint32_t id);
  bool tracing(std::uint32_t id) const;
  void trace_encrypted(std::uint32_t id, std::uint32_t piece, SimTime t);
  void trace_completed(std::uint32_t id, std::uint32_t piece, SimTime t);
  const PieceTimeline* timeline(std::uint32_t id) const;

  // --- Aggregates ---------------------------------------------------------
  enum class PeerFilter { kCompliant, kFreeRiders, kAll };

  // Completion times of finished leechers matching the filter.
  util::Distribution completion_times(PeerFilter f) const;

  // Leechers matching the filter that never finished.
  std::size_t unfinished_count(PeerFilter f) const;

  // Mean uplink utilization (0..1) over each leecher's residence time;
  // `end_time` bounds residence for peers still present.
  double mean_uplink_utilization(PeerFilter f, SimTime end_time) const;

  // Fairness factor per finished compliant leecher: pieces downloaded /
  // pieces uploaded (peers that uploaded nothing map to +inf, which the
  // caller's CDF clamps). `last_n` keeps only the last-n finishers
  // (paper: last 500); 0 = everyone.
  util::Distribution fairness_factors(std::size_t last_n) const;

  // Mean download throughput (bytes/s) of compliant leechers over their
  // residence in [0, horizon] (Figure 13).
  double mean_download_throughput(SimTime horizon) const;

 private:
  bool matches(const PeerRecord& r, PeerFilter f) const;

  std::unordered_map<std::uint32_t, std::size_t> index_;  // id -> slot
  std::vector<PeerRecord> records_;
  std::unordered_map<std::uint32_t, PieceTimeline> timelines_;
  ResilienceStats resilience_;
};

// Kumar/Ross-style lower bound on mean completion time for a homogeneous
// flash crowd (the "Optimal" line of Figure 3):
//   T* = max( F/u_seed , N*F / (u_seed + sum_i u_i) )
// with downloads unconstrained.
double optimal_completion_time(double file_bytes, double seed_bytes_per_sec,
                               const std::vector<double>& leecher_bytes_per_sec);

}  // namespace tc::analysis
